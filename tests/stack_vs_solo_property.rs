//! Property test: the one-pass stack-simulation engine
//! (`mlc::core::SoloMissSweep`) must produce miss counts *identical* to
//! direct per-size functional simulation (`mlc::sim::solo::solo_stats`)
//! — across randomized traces, every swept size, every associativity,
//! and arbitrary warm-up boundaries. No external property-testing crate:
//! a seeded xorshift generator drives randomized rounds in-tree.

use mlc::cache::{ByteSize, CacheConfig};
use mlc::core::SoloMissSweep;
use mlc::sim::{solo, LevelCacheConfig};
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::{AccessKind, Address, TraceRecord};

/// Minimal xorshift64* PRNG so rounds are reproducible without pulling
/// in a dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random trace with clustered locality: a handful of hot regions plus
/// uniform noise, mixing ifetches, loads and stores.
fn random_trace(seed: u64, n: usize) -> Vec<TraceRecord> {
    let mut rng = Rng(seed | 1);
    let regions: Vec<u64> = (0..8).map(|_| rng.below(1 << 22) << 6).collect();
    (0..n)
        .map(|_| {
            let kind = match rng.below(10) {
                0..=5 => AccessKind::InstructionFetch,
                6..=7 => AccessKind::Read,
                _ => AccessKind::Write,
            };
            let addr = if rng.below(4) > 0 {
                // Hot region: small offset around a cluster base.
                regions[rng.below(8) as usize] + rng.below(4096)
            } else {
                rng.below(1 << 26)
            };
            TraceRecord::new(kind, Address::new(addr))
        })
        .collect()
}

fn solo_read_misses(
    size: ByteSize,
    block: u64,
    ways: u32,
    trace: &[TraceRecord],
    warmup: usize,
) -> u64 {
    let config = CacheConfig::builder()
        .total(size)
        .block_bytes(block)
        .ways(ways)
        .build()
        .expect("valid solo config");
    solo::solo_stats(
        LevelCacheConfig::Unified(config),
        trace.iter().copied(),
        warmup,
    )
    .read_misses()
}

/// Sizes from `min_sets` sets upward at the given geometry.
fn ladder(block: u64, ways: u32, doublings: u32) -> Vec<ByteSize> {
    (0..doublings)
        .map(|i| ByteSize::new(block * u64::from(ways) * (1 << i) * 16))
        .collect()
}

#[test]
fn stack_sweep_equals_solo_sim_across_randomized_rounds() {
    for round in 0u64..6 {
        let seed = 0xA5A5 + round * 977;
        let trace = random_trace(seed, 30_000);
        let warmup = (round as usize) * 4_000; // includes 0 and > len/2 cases
        for &(block, ways) in &[(16u64, 1u32), (32, 1), (32, 2), (64, 4), (32, 8)] {
            let sizes = ladder(block, ways, 6);
            let sweep = SoloMissSweep::run(block, ways, &sizes, &trace, warmup);
            for (i, &size) in sizes.iter().enumerate() {
                assert_eq!(
                    sweep.read_misses(i),
                    solo_read_misses(size, block, ways, &trace, warmup),
                    "round {round}: {ways}-way, {block}B blocks at {size}, warmup {warmup}"
                );
            }
        }
    }
}

#[test]
fn stack_sweep_equals_solo_sim_on_workload_presets() {
    for (preset, seed) in [(Preset::Vms1, 3u64), (Preset::Mips3, 8)] {
        let trace = MultiProgramGenerator::new(preset.config(seed))
            .expect("valid preset")
            .generate_records(50_000);
        for ways in [1u32, 2] {
            let sizes = ladder(32, ways, 8);
            let sweep = SoloMissSweep::run(32, ways, &sizes, &trace, 12_500);
            for (i, &size) in sizes.iter().enumerate() {
                assert_eq!(
                    sweep.read_misses(i),
                    solo_read_misses(size, 32, ways, &trace, 12_500),
                    "{preset:?} {ways}-way at {size}"
                );
            }
        }
    }
}

/// Read-reference counts are shared across sizes and match the solo
/// simulator's accounting (reads = ifetches + loads, writes excluded).
#[test]
fn read_reference_accounting_matches() {
    let trace = random_trace(0xBEEF, 20_000);
    let reads = trace.iter().filter(|r| r.kind.is_read()).count() as u64;
    let sweep = SoloMissSweep::run(32, 1, &ladder(32, 1, 3), &trace, 0);
    assert_eq!(sweep.read_references(), reads);
}
