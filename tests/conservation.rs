//! Write-conservation tests: every dirty block eventually reaches main
//! memory, exactly once per dirtying epoch, through buffers and levels.

use mlc::cache::{ByteSize, CacheConfig};
use mlc::sim::machine::{base_machine, single_level};
use mlc::sim::HierarchySim;
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::TraceRecord;

fn small_cache(bytes: u64, block: u64) -> CacheConfig {
    CacheConfig::builder()
        .total(ByteSize::new(bytes))
        .block_bytes(block)
        .build()
        .unwrap()
}

#[test]
fn single_level_exact_conservation() {
    // 4 distinct blocks stored to, in a cache big enough to hold them:
    // nothing drains during the run; flush_all writes each exactly once.
    let config = single_level(small_cache(256, 16), 1, 10.0, 1.0);
    let mut sim = HierarchySim::new(config).unwrap();
    for addr in [0x00u64, 0x10, 0x20, 0x30, 0x00, 0x10] {
        sim.step(TraceRecord::write(addr));
    }
    assert_eq!(sim.result().memory.writes, 0);
    sim.flush_all();
    assert_eq!(sim.result().memory.writes, 4);
}

#[test]
fn conflict_evictions_plus_flush_conserve_writes() {
    // Direct-mapped 64B cache, 16B blocks: 0x0 / 0x40 / 0x80 all map to
    // set 0. Each store misses and evicts the previous dirty block.
    let config = single_level(small_cache(64, 16), 1, 10.0, 1.0);
    let mut sim = HierarchySim::new(config).unwrap();
    for addr in [0x00u64, 0x40, 0x80, 0x00, 0x40, 0x80] {
        sim.step(TraceRecord::write(addr));
    }
    sim.flush_all();
    // 6 stores, 6 dirtying epochs (each store misses and re-dirties):
    // 5 evictions during the run + 1 final flush = 6 memory writes.
    assert_eq!(sim.result().memory.writes, 6);
    assert_eq!(sim.result().levels[0].cache.writebacks, 5);
}

#[test]
fn two_level_flush_cascades_through_l2() {
    let mut sim = HierarchySim::new(base_machine()).unwrap();
    // Dirty three distinct D-blocks that stay resident in both levels.
    for addr in [0x1_0000u64, 0x2_0000, 0x3_0000] {
        sim.step(TraceRecord::write(addr));
    }
    assert_eq!(sim.result().memory.writes, 0, "nothing drained yet");
    sim.flush_all();
    let r = sim.result();
    // Each dirty L1 block flushes into L2 (dirtying it); each dirty L2
    // block then flushes to memory. L2 blocks are 32B and the three
    // stores touch three distinct L2 blocks.
    assert_eq!(r.memory.writes, 3, "{r:#?}");
}

#[test]
fn reads_never_write_memory() {
    let mut sim = HierarchySim::new(base_machine()).unwrap();
    let mut gen = MultiProgramGenerator::new(Preset::Mips1.config(2)).unwrap();
    let records: Vec<TraceRecord> = gen
        .generate_records(100_000)
        .into_iter()
        .filter(|r| !r.kind.is_write())
        .collect();
    sim.run(records);
    sim.flush_all();
    let r = sim.result();
    assert_eq!(r.memory.writes, 0, "read-only trace must never write");
    assert_eq!(r.levels[0].cache.writebacks, 0);
    assert_eq!(r.levels[1].cache.writebacks, 0);
}

#[test]
fn buffers_are_empty_after_drain_all() {
    let mut sim = HierarchySim::new(base_machine()).unwrap();
    let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(5)).unwrap();
    sim.run(gen.generate_records(200_000));
    sim.drain_all_buffers();
    let r = sim.result();
    for level in &r.levels {
        assert_eq!(
            level.write_buffer.enqueued, level.write_buffer.drained,
            "{}: buffer must fully drain",
            level.name
        );
    }
}

#[test]
fn flush_all_leaves_no_dirty_state() {
    let mut sim = HierarchySim::new(base_machine()).unwrap();
    let mut gen = MultiProgramGenerator::new(Preset::Vms2.config(7)).unwrap();
    sim.run(gen.generate_records(150_000));
    sim.flush_all();
    let before = sim.result().memory.writes;
    // A second flush finds nothing to write.
    sim.flush_all();
    assert_eq!(sim.result().memory.writes, before);
}
