//! Cross-validation of the three independent miss-ratio machineries:
//! the functional cache simulator, one-pass stack-distance analysis, and
//! the 3C classification built on both.

use mlc::cache::{ByteSize, CacheConfig};
use mlc::core::classify_misses;
use mlc::sim::{solo, LevelCacheConfig};
use mlc::trace::stackdist::lru_stack_distances;
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::TraceRecord;

fn trace(n: usize) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(Preset::Mips3.config(11))
        .expect("valid preset")
        .generate_records(n)
}

/// A fully associative LRU cache simulated functionally must agree
/// *exactly* with the stack-distance histogram at every capacity.
#[test]
fn stack_distance_matches_fully_associative_simulation() {
    let records = trace(120_000);
    let block = 32u64;
    let hist = lru_stack_distances(records.iter().copied(), block);
    for blocks in [32u64, 128, 512, 2048] {
        let config = CacheConfig::builder()
            .total(ByteSize::new(blocks * block))
            .block_bytes(block)
            .ways(u32::try_from(blocks).unwrap())
            .build()
            .unwrap();
        let stats = solo::solo_stats(
            LevelCacheConfig::Unified(config),
            records.iter().copied(),
            0,
        );
        assert_eq!(
            stats.total_misses(),
            hist.misses_at(blocks),
            "capacity {blocks} blocks"
        );
    }
}

/// Direct-mapped caches can only be worse than fully associative LRU on
/// these workloads (no anti-LRU pathologies in the generators), so the
/// 3C conflict component is the exact gap.
#[test]
fn three_c_ties_cache_to_histogram() {
    let records = trace(100_000);
    for kib in [16u64, 64, 256] {
        let config = CacheConfig::builder()
            .total(ByteSize::kib(kib))
            .block_bytes(32)
            .build()
            .unwrap();
        let c = classify_misses(config, &records);
        assert_eq!(
            c.compulsory + c.capacity + c.conflict,
            c.total_misses,
            "{kib}KB: components must sum exactly when conflict >= 0"
        );
        let stats = solo::solo_stats(
            LevelCacheConfig::Unified(config),
            records.iter().copied(),
            0,
        );
        assert_eq!(c.total_misses, stats.total_misses(), "{kib}KB");
    }
}

/// Associativity erodes the conflict component (up to a small tolerance:
/// set-partitioned LRU is not strictly dominated by fully associative
/// LRU, so a few residual "conflict" misses can persist) while the
/// compulsory component stays fixed.
#[test]
fn associativity_erodes_conflict_component() {
    let records = trace(100_000);
    let mut prev_conflict = u64::MAX;
    let mut compulsory = None;
    for ways in [1u32, 2, 4, 8] {
        let config = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .ways(ways)
            .build()
            .unwrap();
        let c = classify_misses(config, &records);
        let slack = c.total_misses / 100; // 1% of misses
        assert!(
            c.conflict <= prev_conflict.saturating_add(slack),
            "{ways}-way conflict {} > previous {prev_conflict} (+{slack})",
            c.conflict
        );
        prev_conflict = prev_conflict.min(c.conflict);
        match compulsory {
            None => compulsory = Some(c.compulsory),
            Some(v) => assert_eq!(v, c.compulsory, "compulsory is organisation-independent"),
        }
    }
    // By 8-way, conflicts are a negligible share.
    assert!(prev_conflict < records.len() as u64 / 1000);
}

/// The all-associativity histogram agrees exactly with the functional
/// cache at every associativity of a fixed set count.
#[test]
fn associativity_histogram_matches_cache() {
    use mlc::trace::stackdist::associativity_histogram;
    let records = trace(80_000);
    let sets = 512u64;
    let block = 32u64;
    let hist = associativity_histogram(records.iter().copied(), sets, block);
    for ways in [1u32, 2, 4, 8] {
        let config = CacheConfig::builder()
            .total(ByteSize::new(sets * u64::from(ways) * block))
            .block_bytes(block)
            .ways(ways)
            .build()
            .unwrap();
        let stats = solo::solo_stats(
            LevelCacheConfig::Unified(config),
            records.iter().copied(),
            0,
        );
        assert_eq!(
            stats.total_misses(),
            hist.misses_at(u64::from(ways)),
            "{ways}-way"
        );
    }
}

/// The histogram's miss-ratio curve bounds every real organisation of
/// equal capacity from below (Mattson inclusion property for LRU).
#[test]
fn fully_associative_lower_bounds_direct_mapped() {
    let records = trace(100_000);
    let hist = lru_stack_distances(records.iter().copied(), 32);
    for kib in [8u64, 32, 128, 512] {
        let config = CacheConfig::builder()
            .total(ByteSize::kib(kib))
            .block_bytes(32)
            .build()
            .unwrap();
        let stats = solo::solo_stats(
            LevelCacheConfig::Unified(config),
            records.iter().copied(),
            0,
        );
        let fa = hist.misses_at(ByteSize::kib(kib).get() / 32);
        assert!(
            stats.total_misses() >= fa,
            "{kib}KB: DM {} < FA {fa}",
            stats.total_misses()
        );
    }
}
