//! End-to-end integration tests spanning all workspace crates: synthetic
//! workloads → timed hierarchy simulation → analytical models.

use mlc::cache::{ByteSize, CacheConfig};
use mlc::core::ExecutionTimeModel;
use mlc::sim::machine::{base_machine, single_level, BaseMachine};
use mlc::sim::{simulate, simulate_with_warmup, solo, LevelCacheConfig};
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::TraceRecord;

fn preset_trace(preset: Preset, n: usize, seed: u64) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(preset.config(seed))
        .expect("presets are valid")
        .generate_records(n)
}

#[test]
fn all_presets_run_clean_on_base_machine() {
    for preset in Preset::ALL {
        let trace = preset_trace(preset, 60_000, 1);
        let result = simulate(base_machine(), trace).expect("base machine is valid");
        let name = preset.name();
        assert!(result.instructions > 0, "{name}");
        assert!(result.cpi().unwrap() >= 1.0, "{name}");
        for idx in 0..result.levels.len() {
            let local = result.local_read_miss_ratio(idx).unwrap();
            let global = result.global_read_miss_ratio(idx).unwrap();
            assert!((0.0..=1.0).contains(&local), "{name} level {idx}");
            assert!(local >= global - 1e-12, "{name} level {idx}");
        }
    }
}

#[test]
fn determinism_across_runs_and_presets() {
    for preset in [Preset::Vms3, Preset::Mips4] {
        let t1 = preset_trace(preset, 40_000, 9);
        let t2 = preset_trace(preset, 40_000, 9);
        assert_eq!(t1, t2, "trace generation must be deterministic");
        let r1 = simulate(base_machine(), t1).unwrap();
        let r2 = simulate(base_machine(), t2).unwrap();
        assert_eq!(r1, r2, "simulation must be deterministic");
    }
}

/// The paper's §3 independence result: once the L2 is much larger than
/// the L1, the L2 *global* miss ratio matches its *solo* miss ratio,
/// while the *local* ratio is far larger.
#[test]
fn global_miss_ratio_matches_solo_for_large_l2() {
    let trace = preset_trace(Preset::Vms1, 2_000_000, 4);
    let warmup = trace.len() / 2;
    let config = BaseMachine::new()
        .l2_total(ByteSize::kib(256))
        .build()
        .unwrap();
    let l2_config = match config.levels[1].cache {
        LevelCacheConfig::Unified(c) => c,
        _ => unreachable!(),
    };
    let result = simulate_with_warmup(config, trace.iter().copied(), warmup).unwrap();
    let global = result.global_read_miss_ratio(1).unwrap();
    let local = result.local_read_miss_ratio(1).unwrap();
    let solo = solo::solo_read_miss_ratio(
        LevelCacheConfig::Unified(l2_config),
        trace.iter().copied(),
        warmup,
    )
    .unwrap();

    assert!(
        (global - solo).abs() / solo < 0.25,
        "global {global} should approximate solo {solo} (L2 = 64x L1)"
    );
    assert!(
        local > 3.0 * global,
        "local {local} should far exceed global {global}"
    );
}

/// The filtering effect: the L1 removes most references from the L2's
/// input stream without removing many of its misses.
#[test]
fn l1_filters_references_not_misses() {
    let trace = preset_trace(Preset::Mips1, 1_000_000, 6);
    let warmup = trace.len() / 2;
    let with_l1 = simulate_with_warmup(base_machine(), trace.iter().copied(), warmup).unwrap();

    let l2_refs = with_l1.levels[1].cache.read_references();
    let cpu_reads = with_l1.cpu_reads;
    assert!(
        (l2_refs as f64) < 0.25 * cpu_reads as f64,
        "L1 should filter >75% of reads: {l2_refs} of {cpu_reads}"
    );

    // Misses, in contrast, survive: solo misses of the same L2 over the
    // full CPU stream are comparable to the hierarchy's L2 misses.
    let l2_config = CacheConfig::builder()
        .total(ByteSize::kib(512))
        .block_bytes(32)
        .build()
        .unwrap();
    let solo_stats = solo::solo_stats(
        LevelCacheConfig::Unified(l2_config),
        trace.iter().copied(),
        warmup,
    );
    let hier_misses = with_l1.levels[1].cache.read_misses() as f64;
    let solo_misses = solo_stats.read_misses() as f64;
    assert!(
        (hier_misses - solo_misses).abs() / solo_misses < 0.35,
        "L2 misses with L1 ({hier_misses}) ~ solo misses ({solo_misses})"
    );
}

/// The motivation of the paper (§1): a two-level hierarchy beats the
/// best realistic single-level cache built from the same technology.
#[test]
fn two_level_beats_single_level() {
    let trace = preset_trace(Preset::Vms2, 1_000_000, 8);
    let warmup = trace.len() / 2;
    let two_level = simulate_with_warmup(base_machine(), trace.iter().copied(), warmup).unwrap();

    // The single-level alternative: a big cache must be off-chip and
    // slow (3 cycles); a small fast one (1 cycle) misses to memory far
    // too often. Try both extremes of the single-level space.
    let mut best_single = u64::MAX;
    for (kib, cycles) in [(4u64, 1u64), (64, 2), (512, 3), (2048, 4)] {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(kib))
            .block_bytes(32)
            .build()
            .unwrap();
        let config = single_level(cache, cycles, 10.0, 1.0);
        let r = simulate_with_warmup(config, trace.iter().copied(), warmup).unwrap();
        best_single = best_single.min(r.total_cycles);
    }
    assert!(
        two_level.total_cycles < best_single,
        "two-level {} should beat best single-level {}",
        two_level.total_cycles,
        best_single
    );
}

/// Equation 1 predicts the simulator's cycle count to first order.
#[test]
fn equation_one_tracks_simulation() {
    let trace = preset_trace(Preset::Ultrix, 600_000, 12);
    let result = simulate_with_warmup(base_machine(), trace, 150_000).unwrap();
    let model = ExecutionTimeModel::from_sim(&result, 1.0, 3.0, 27.0).unwrap();
    let err = model.relative_error(&result).unwrap();
    assert!(err.abs() < 0.35, "Equation 1 error {err}");
}

#[test]
fn warmup_only_affects_statistics_not_state() {
    let trace = preset_trace(Preset::Mips3, 200_000, 14);
    let full = simulate(base_machine(), trace.iter().copied()).unwrap();
    let warm = simulate_with_warmup(base_machine(), trace.iter().copied(), 50_000).unwrap();
    // The warm window counts fewer references but the machine went
    // through the identical state trajectory: total cycles of the warm
    // window plus the discarded prefix equals the full run.
    assert!(warm.total_cycles < full.total_cycles);
    assert!(warm.instructions < full.instructions);
    let prefix = simulate(
        base_machine(),
        trace.iter().copied().take(50_000).collect::<Vec<_>>(),
    )
    .unwrap();
    assert_eq!(prefix.total_cycles + warm.total_cycles, full.total_cycles);
}

#[test]
fn three_level_hierarchy_end_to_end() {
    use mlc::sim::LevelConfig;

    let mut config = base_machine();
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(4))
        .block_bytes(64)
        .ways(2)
        .build()
        .unwrap();
    config
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 8));
    let trace = preset_trace(Preset::Vms3, 400_000, 21);
    let r = simulate(config, trace).unwrap();
    assert_eq!(r.levels.len(), 3);
    // Reference counts must shrink monotonically down the hierarchy.
    let refs: Vec<u64> = r.levels.iter().map(|l| l.cache.read_references()).collect();
    assert!(refs[0] > refs[1] && refs[1] > refs[2], "{refs:?}");
    // Global miss ratios shrink downstream too.
    let g: Vec<f64> = (0..3)
        .map(|i| r.global_read_miss_ratio(i).unwrap())
        .collect();
    assert!(g[0] > g[1] && g[1] >= g[2], "{g:?}");
}

#[test]
fn trace_files_simulate_identically_to_memory() {
    use std::io::Cursor;

    let trace = preset_trace(Preset::Mips2, 50_000, 30);
    let mut din_bytes = Vec::new();
    mlc::trace::din::write_din(&mut din_bytes, trace.iter().copied()).unwrap();
    let from_din = mlc::trace::din::read_din(Cursor::new(&din_bytes)).unwrap();

    let mut bin_bytes = Vec::new();
    mlc::trace::binary::write_binary(&mut bin_bytes, &trace).unwrap();
    let from_bin = mlc::trace::binary::read_binary(Cursor::new(&bin_bytes)).unwrap();

    let direct = simulate(base_machine(), trace).unwrap();
    let via_din = simulate(base_machine(), from_din).unwrap();
    let via_bin = simulate(base_machine(), from_bin).unwrap();
    assert_eq!(direct, via_din);
    assert_eq!(direct, via_bin);
}

/// Larger L1s lower the L1 miss ratio by roughly the paper's ~28% per
/// doubling, and never raise it.
#[test]
fn l1_scaling_lowers_miss_ratio() {
    let trace = preset_trace(Preset::Vms1, 1_500_000, 33);
    let warmup = trace.len() / 2;
    let mut prev = f64::INFINITY;
    for kib in [4u64, 8, 16, 32] {
        let config = BaseMachine::new()
            .l1_total(ByteSize::kib(kib))
            .build()
            .unwrap();
        let r = simulate_with_warmup(config, trace.iter().copied(), warmup).unwrap();
        let m = r.global_read_miss_ratio(0).unwrap();
        assert!(m < prev, "L1 {kib}KB: {m} !< {prev}");
        if prev.is_finite() {
            let factor = m / prev;
            assert!(
                (0.5..0.95).contains(&factor),
                "L1 doubling factor {factor} out of plausible range"
            );
        }
        prev = m;
    }
}
