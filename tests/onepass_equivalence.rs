//! The acceptance gate of the one-pass sweep engine: on the paper's base
//! machine, `Explorer::l2_grid` under the one-pass engine must reproduce
//! the exhaustive engine cycle-exact — same total-execution-cycle matrix,
//! bit-identical miss ratios — on a 4-size × 4-cycle-time grid.

use mlc::cache::ByteSize;
use mlc::core::{size_ladder, verify_grids, Explorer, SweepEngine};
use mlc::sim::machine::BaseMachine;
use mlc::trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc::trace::TraceRecord;

fn trace(preset: Preset, seed: u64, n: usize) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(preset.config(seed))
        .expect("valid preset")
        .generate_records(n)
}

#[test]
fn l2_grid_onepass_matches_exhaustive_on_base_machine() {
    let records = trace(Preset::Vms1, 42, 120_000);
    let explorer = Explorer::new(&records, 30_000);
    let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(256)); // 4 sizes
    let cycles: Vec<u64> = vec![1, 2, 4, 7]; // 4 cycle times
    assert_eq!(sizes.len(), 4);

    let base = BaseMachine::new();
    let exhaustive = explorer.l2_grid_with(SweepEngine::Exhaustive, &base, &sizes, &cycles, 1);
    let onepass = explorer.l2_grid_with(SweepEngine::OnePass, &base, &sizes, &cycles, 1);

    verify_grids(&exhaustive, &onepass)
        .unwrap_or_else(|d| panic!("one-pass engine diverged from exhaustive: {d}"));
    // The default engine is the one-pass path: the public entry point
    // must give the exact same grid.
    let default = explorer.l2_grid(&base, &sizes, &cycles, 1);
    assert_eq!(default, onepass);
}

#[test]
fn engines_agree_on_associative_l2_and_slow_memory() {
    let records = trace(Preset::Mips1, 9, 80_000);
    let explorer = Explorer::new(&records, 20_000);
    let sizes = size_ladder(ByteSize::kib(64), ByteSize::kib(128));
    let cycles: Vec<u64> = vec![2, 5];
    let mut base = BaseMachine::new();
    base.l2_ways(4).memory_scale(2.0);
    let exhaustive = explorer.l2_grid_with(SweepEngine::Exhaustive, &base, &sizes, &cycles, 4);
    let onepass = explorer.l2_grid_with(SweepEngine::OnePass, &base, &sizes, &cycles, 4);
    verify_grids(&exhaustive, &onepass)
        .unwrap_or_else(|d| panic!("engines diverged off the base point: {d}"));
}

/// The miss-ratio curve's solo column (now computed by the stack engine
/// on eligible organisations) must agree with the hierarchy runs'
/// invariants: solo, local and global all in [0, 1], local >= global.
#[test]
fn miss_ratio_curve_solo_column_is_consistent() {
    let records = trace(Preset::Mips2, 5, 100_000);
    let explorer = Explorer::new(&records, 25_000);
    let sizes = size_ladder(ByteSize::kib(16), ByteSize::kib(128));
    let curve = explorer.miss_ratio_curve(&BaseMachine::new(), &sizes);
    assert_eq!(curve.len(), sizes.len());
    for p in &curve {
        assert!(
            p.solo > 0.0 && p.solo <= 1.0,
            "solo out of range at {}",
            p.size
        );
        assert!(p.local >= p.global - 1e-12);
    }
    // Solo ratios fall with size on a real workload.
    assert!(curve.last().unwrap().solo < curve[0].solo);
}
