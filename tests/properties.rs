//! Property-based tests over the core data structures and simulator
//! invariants, using proptest.

use proptest::prelude::*;

use mlc::cache::{ByteSize, Cache, CacheConfig, Replacement};
use mlc::sim::machine::BaseMachine;
use mlc::sim::simulate;
use mlc::trace::synth::{RankedList, StackDepthDistribution, Xoshiro};
use mlc::trace::{binary, din, AccessKind, Address, TraceRecord};

// ---------------------------------------------------------------------
// Trace formats
// ---------------------------------------------------------------------

fn arb_kind() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        Just(AccessKind::InstructionFetch),
        Just(AccessKind::Read),
        Just(AccessKind::Write),
    ]
}

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    (arb_kind(), any::<u64>()).prop_map(|(k, a)| TraceRecord::new(k, Address::new(a)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn din_round_trips(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        din::write_din(&mut buf, records.iter().copied()).unwrap();
        prop_assert_eq!(din::read_din(buf.as_slice()).unwrap(), records);
    }

    #[test]
    fn binary_round_trips(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        binary::write_binary(&mut buf, &records).unwrap();
        prop_assert_eq!(binary::read_binary(buf.as_slice()).unwrap(), records);
    }
}

// ---------------------------------------------------------------------
// Cache vs naive reference model
// ---------------------------------------------------------------------

/// A deliberately simple set-associative LRU cache: vectors of
/// most-recently-used-first block lists per set.
struct NaiveLru {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block_bytes: u64,
}

impl NaiveLru {
    fn new(total: u64, block: u64, ways: usize) -> Self {
        let sets = (total / block) as usize / ways;
        NaiveLru {
            sets: vec![Vec::new(); sets],
            ways,
            block_bytes: block,
        }
    }

    /// Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.block_bytes;
        let set = (block % self.sets.len() as u64) as usize;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&b| b == block) {
            list.remove(pos);
            list.insert(0, block);
            true
        } else {
            list.insert(0, block);
            list.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cache_matches_naive_lru_model(
        ways_log in 0u32..3,
        sets_log in 0u32..4,
        addrs in prop::collection::vec(0u64..0x4000, 1..400),
    ) {
        let ways = 1u32 << ways_log;
        let block = 16u64;
        let total = block * u64::from(ways) * (1u64 << sets_log);
        let config = CacheConfig::builder()
            .total(ByteSize::new(total))
            .block_bytes(block)
            .ways(ways)
            .replacement(Replacement::Lru)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        let mut model = NaiveLru::new(total, block, ways as usize);
        for &addr in &addrs {
            let got = cache.access(Address::new(addr), AccessKind::Read).hit;
            let want = model.access(addr);
            prop_assert_eq!(got, want, "divergence at addr {:#x}", addr);
        }
    }

    #[test]
    fn dirty_blocks_writeback_exactly_once(
        addrs in prop::collection::vec(0u64..0x1000, 1..300),
    ) {
        // Every dirty eviction plus every final dirty line accounts for
        // exactly one write epoch; totals must balance.
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        let mut writebacks = 0u64;
        for &addr in &addrs {
            let res = cache.access(Address::new(addr), AccessKind::Write);
            writebacks += res.writebacks().count() as u64;
        }
        let final_dirty = cache.flush_dirty().len() as u64;
        // Each store either dirtied an already-dirty resident block (no
        // new epoch) or began a new epoch; epochs = writebacks + final
        // dirty lines, and every epoch stems from at least one store.
        prop_assert!(writebacks + final_dirty <= addrs.len() as u64);
        prop_assert!(final_dirty > 0 || writebacks > 0);
        prop_assert_eq!(cache.stats().writebacks, writebacks);
    }
}

// ---------------------------------------------------------------------
// RankedList vs Vec model
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranked_list_matches_vec_model(ops in prop::collection::vec((0u8..4, any::<u16>()), 0..400)) {
        let mut list = RankedList::new(7);
        let mut model: Vec<u16> = Vec::new();
        for (op, val) in ops {
            match op {
                0 => {
                    list.push_front(val);
                    model.insert(0, val);
                }
                1 if !model.is_empty() => {
                    let r = (val as usize) % model.len();
                    let v = model.remove(r);
                    model.insert(0, v);
                    prop_assert_eq!(list.move_to_front(r).copied(), Some(v));
                }
                2 if !model.is_empty() => {
                    let r = (val as usize) % model.len();
                    prop_assert_eq!(list.remove(r), Some(model.remove(r)));
                }
                _ => {
                    if !model.is_empty() {
                        let r = (val as usize) % model.len();
                        prop_assert_eq!(list.get(r), Some(&model[r]));
                    }
                }
            }
            prop_assert_eq!(list.len(), model.len());
        }
        let collected: Vec<u16> = list.iter().copied().collect();
        prop_assert_eq!(collected, model);
    }
}

// ---------------------------------------------------------------------
// Stack-distance distribution
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn survival_is_monotone_and_bounded(
        theta in 0.1f64..2.0,
        scale in 0.5f64..100.0,
        d in 0u64..1_000_000,
    ) {
        let dist = StackDepthDistribution::new(theta, scale);
        let s = dist.survival(d);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(dist.survival(d + 1) <= s + 1e-15);
        prop_assert!(dist.survival(0) >= 1.0 - 1e-12);
    }

    #[test]
    fn samples_are_reproducible(theta in 0.2f64..1.5, seed in any::<u64>()) {
        let dist = StackDepthDistribution::new(theta, 4.0);
        let mut a = Xoshiro::seed_from_u64(seed);
        let mut b = Xoshiro::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }
}

// ---------------------------------------------------------------------
// Stack-distance analysis vs naive LRU
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stack_distances_match_naive_lru(
        blocks in prop::collection::vec(0u64..64, 1..500),
        capacity in 1u64..32,
    ) {
        use mlc::trace::stackdist::lru_stack_distances;
        let trace: Vec<TraceRecord> =
            blocks.iter().map(|&b| TraceRecord::read(b * 32)).collect();
        let hist = lru_stack_distances(trace.iter().copied(), 32);
        let mut lru: Vec<u64> = Vec::new();
        let mut misses = 0u64;
        for &b in &blocks {
            if let Some(pos) = lru.iter().position(|&x| x == b) {
                lru.remove(pos);
            } else {
                misses += 1;
            }
            lru.insert(0, b);
            lru.truncate(capacity as usize);
        }
        prop_assert_eq!(hist.misses_at(capacity), misses);
        prop_assert_eq!(hist.total(), blocks.len() as u64);
    }

    #[test]
    fn stack_distance_curve_monotone(
        blocks in prop::collection::vec(0u64..256, 1..400),
    ) {
        use mlc::trace::stackdist::lru_stack_distances;
        let trace: Vec<TraceRecord> =
            blocks.iter().map(|&b| TraceRecord::read(b * 32)).collect();
        let hist = lru_stack_distances(trace, 32);
        let mut prev = u64::MAX;
        for cap in 1..300u64 {
            let m = hist.misses_at(cap);
            prop_assert!(m <= prev);
            prev = m;
        }
        // Beyond the footprint, only cold misses remain.
        prop_assert_eq!(hist.misses_at(300), hist.cold_misses());
    }
}

// ---------------------------------------------------------------------
// Simulator timing invariants
// ---------------------------------------------------------------------

fn small_trace(seed: u64, n: usize) -> Vec<TraceRecord> {
    use mlc::trace::synth::{MultiProgramConfig, MultiProgramGenerator, ProcessConfig};
    let config = MultiProgramConfig::homogeneous(2, ProcessConfig::default(), seed);
    MultiProgramGenerator::new(config)
        .expect("valid")
        .generate_records(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn slower_l2_never_runs_faster(seed in 0u64..1000, c1 in 1u64..10, dc in 1u64..5) {
        let trace = small_trace(seed, 6_000);
        let fast = simulate(
            BaseMachine::new().l2_cycles(c1).build().unwrap(),
            trace.iter().copied(),
        ).unwrap();
        let slow = simulate(
            BaseMachine::new().l2_cycles(c1 + dc).build().unwrap(),
            trace.iter().copied(),
        ).unwrap();
        prop_assert!(slow.total_cycles >= fast.total_cycles);
    }

    #[test]
    fn miss_counts_independent_of_l2_cycle_time(seed in 0u64..1000, c in 1u64..12) {
        let trace = small_trace(seed, 6_000);
        let a = simulate(
            BaseMachine::new().l2_cycles(c).build().unwrap(),
            trace.iter().copied(),
        ).unwrap();
        let b = simulate(
            BaseMachine::new().l2_cycles(1).build().unwrap(),
            trace.iter().copied(),
        ).unwrap();
        for (la, lb) in a.levels.iter().zip(b.levels.iter()) {
            prop_assert_eq!(la.cache.read_misses(), lb.cache.read_misses());
            prop_assert_eq!(la.cache.write_misses(), lb.cache.write_misses());
            prop_assert_eq!(la.cache.writebacks, lb.cache.writebacks);
        }
    }

    #[test]
    fn total_cycles_at_least_instructions(seed in 0u64..1000) {
        let trace = small_trace(seed, 4_000);
        let r = simulate(BaseMachine::new().build().unwrap(), trace).unwrap();
        prop_assert!(r.total_cycles >= r.instructions);
        prop_assert!(r.cpu_reads == r.instructions + r.loads);
    }
}

// ---------------------------------------------------------------------
// Geometry invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn geometry_index_tag_round_trip(
        total_log in 6u32..22,
        block_log in 2u32..7,
        ways_log in 0u32..4,
        addr in any::<u64>(),
    ) {
        prop_assume!(block_log + ways_log < total_log);
        let geom = mlc::cache::CacheGeometry::new(
            ByteSize::new(1 << total_log),
            1 << block_log,
            1 << ways_log,
        ).unwrap();
        let a = Address::new(addr);
        let set = geom.set_index(a);
        prop_assert!(set < geom.sets());
        prop_assert_eq!(geom.block_address(set, geom.tag(a)), geom.block_base(a));
    }
}
