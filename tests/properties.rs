//! Property-based tests over the core data structures and simulator
//! invariants.
//!
//! These use a small hand-rolled harness rather than an external
//! property-testing crate: each property runs over a fixed number of
//! deterministic xoshiro256++ seeds, so failures are reproducible by
//! construction and the workspace stays dependency-free.

use mlc::cache::{ByteSize, Cache, CacheConfig, Replacement};
use mlc::sim::machine::BaseMachine;
use mlc::sim::simulate;
use mlc::trace::synth::{RankedList, StackDepthDistribution, Xoshiro};
use mlc::trace::{binary, din, AccessKind, Address, TraceRecord};

/// Runs `f` once per case with an independently seeded generator,
/// reporting the failing case number before propagating the panic.
fn check(cases: u64, f: impl Fn(&mut Xoshiro) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = 0x9E3779B97F4A7C15u64.wrapping_mul(case + 1);
        let outcome = std::panic::catch_unwind(|| {
            let mut rng = Xoshiro::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(payload) = outcome {
            eprintln!("property failed on case {case} (xoshiro seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Uniform integer in `[lo, hi)`.
fn range(rng: &mut Xoshiro, lo: u64, hi: u64) -> u64 {
    lo + rng.next_below(hi - lo)
}

/// Uniform float in `[lo, hi)`.
fn frange(rng: &mut Xoshiro, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn rand_kind(rng: &mut Xoshiro) -> AccessKind {
    match rng.next_below(3) {
        0 => AccessKind::InstructionFetch,
        1 => AccessKind::Read,
        _ => AccessKind::Write,
    }
}

fn rand_records(rng: &mut Xoshiro, max_len: u64) -> Vec<TraceRecord> {
    let len = rng.next_below(max_len);
    (0..len)
        .map(|_| TraceRecord::new(rand_kind(rng), Address::new(rng.next_u64())))
        .collect()
}

// ---------------------------------------------------------------------
// Trace formats
// ---------------------------------------------------------------------

#[test]
fn din_round_trips() {
    check(64, |rng| {
        let records = rand_records(rng, 200);
        let mut buf = Vec::new();
        din::write_din(&mut buf, records.iter().copied()).unwrap();
        assert_eq!(din::read_din(buf.as_slice()).unwrap(), records);
    });
}

#[test]
fn binary_round_trips() {
    check(64, |rng| {
        let records = rand_records(rng, 200);
        let mut buf = Vec::new();
        binary::write_binary(&mut buf, &records).unwrap();
        assert_eq!(binary::read_binary(buf.as_slice()).unwrap(), records);
    });
}

// ---------------------------------------------------------------------
// Cache vs naive reference model
// ---------------------------------------------------------------------

/// A deliberately simple set-associative LRU cache: vectors of
/// most-recently-used-first block lists per set.
struct NaiveLru {
    sets: Vec<Vec<u64>>,
    ways: usize,
    block_bytes: u64,
}

impl NaiveLru {
    fn new(total: u64, block: u64, ways: usize) -> Self {
        let sets = (total / block) as usize / ways;
        NaiveLru {
            sets: vec![Vec::new(); sets],
            ways,
            block_bytes: block,
        }
    }

    /// Returns whether the access hit.
    fn access(&mut self, addr: u64) -> bool {
        let block = addr / self.block_bytes;
        let set = (block % self.sets.len() as u64) as usize;
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&b| b == block) {
            list.remove(pos);
            list.insert(0, block);
            true
        } else {
            list.insert(0, block);
            list.truncate(self.ways);
            false
        }
    }
}

#[test]
fn cache_matches_naive_lru_model() {
    check(48, |rng| {
        let ways = 1u32 << range(rng, 0, 3);
        let block = 16u64;
        let total = block * u64::from(ways) * (1u64 << range(rng, 0, 4));
        let addrs: Vec<u64> = (0..range(rng, 1, 400))
            .map(|_| rng.next_below(0x4000))
            .collect();
        let config = CacheConfig::builder()
            .total(ByteSize::new(total))
            .block_bytes(block)
            .ways(ways)
            .replacement(Replacement::Lru)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        let mut model = NaiveLru::new(total, block, ways as usize);
        for &addr in &addrs {
            let got = cache.access(Address::new(addr), AccessKind::Read).hit;
            let want = model.access(addr);
            assert_eq!(got, want, "divergence at addr {addr:#x}");
        }
    });
}

#[test]
fn dirty_blocks_writeback_exactly_once() {
    check(48, |rng| {
        // Every dirty eviction plus every final dirty line accounts for
        // exactly one write epoch; totals must balance.
        let addrs: Vec<u64> = (0..range(rng, 1, 300))
            .map(|_| rng.next_below(0x1000))
            .collect();
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .build()
            .unwrap();
        let mut cache = Cache::new(config);
        let mut writebacks = 0u64;
        for &addr in &addrs {
            let res = cache.access(Address::new(addr), AccessKind::Write);
            writebacks += res.writebacks().count() as u64;
        }
        let final_dirty = cache.flush_dirty().len() as u64;
        // Each store either dirtied an already-dirty resident block (no
        // new epoch) or began a new epoch; epochs = writebacks + final
        // dirty lines, and every epoch stems from at least one store.
        assert!(writebacks + final_dirty <= addrs.len() as u64);
        assert!(final_dirty > 0 || writebacks > 0);
        assert_eq!(cache.stats().writebacks, writebacks);
    });
}

// ---------------------------------------------------------------------
// RankedList vs Vec model
// ---------------------------------------------------------------------

#[test]
fn ranked_list_matches_vec_model() {
    check(64, |rng| {
        let ops: Vec<(u8, u16)> = (0..range(rng, 0, 400))
            .map(|_| (rng.next_below(4) as u8, rng.next_u64() as u16))
            .collect();
        let mut list = RankedList::new(7);
        let mut model: Vec<u16> = Vec::new();
        for (op, val) in ops {
            match op {
                0 => {
                    list.push_front(val);
                    model.insert(0, val);
                }
                1 if !model.is_empty() => {
                    let r = (val as usize) % model.len();
                    let v = model.remove(r);
                    model.insert(0, v);
                    assert_eq!(list.move_to_front(r).copied(), Some(v));
                }
                2 if !model.is_empty() => {
                    let r = (val as usize) % model.len();
                    assert_eq!(list.remove(r), Some(model.remove(r)));
                }
                _ => {
                    if !model.is_empty() {
                        let r = (val as usize) % model.len();
                        assert_eq!(list.get(r), Some(&model[r]));
                    }
                }
            }
            assert_eq!(list.len(), model.len());
        }
        let collected: Vec<u16> = list.iter().copied().collect();
        assert_eq!(collected, model);
    });
}

// ---------------------------------------------------------------------
// Stack-distance distribution
// ---------------------------------------------------------------------

#[test]
fn survival_is_monotone_and_bounded() {
    check(64, |rng| {
        let theta = frange(rng, 0.1, 2.0);
        let scale = frange(rng, 0.5, 100.0);
        let d = rng.next_below(1_000_000);
        let dist = StackDepthDistribution::new(theta, scale);
        let s = dist.survival(d);
        assert!((0.0..=1.0).contains(&s));
        assert!(dist.survival(d + 1) <= s + 1e-15);
        assert!(dist.survival(0) >= 1.0 - 1e-12);
    });
}

#[test]
fn samples_are_reproducible() {
    check(64, |rng| {
        let theta = frange(rng, 0.2, 1.5);
        let seed = rng.next_u64();
        let dist = StackDepthDistribution::new(theta, 4.0);
        let mut a = Xoshiro::seed_from_u64(seed);
        let mut b = Xoshiro::seed_from_u64(seed);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    });
}

// ---------------------------------------------------------------------
// Stack-distance analysis vs naive LRU
// ---------------------------------------------------------------------

#[test]
fn stack_distances_match_naive_lru() {
    check(48, |rng| {
        use mlc::trace::stackdist::lru_stack_distances;
        let blocks: Vec<u64> = (0..range(rng, 1, 500))
            .map(|_| rng.next_below(64))
            .collect();
        let capacity = range(rng, 1, 32);
        let trace: Vec<TraceRecord> = blocks.iter().map(|&b| TraceRecord::read(b * 32)).collect();
        let hist = lru_stack_distances(trace.iter().copied(), 32);
        let mut lru: Vec<u64> = Vec::new();
        let mut misses = 0u64;
        for &b in &blocks {
            if let Some(pos) = lru.iter().position(|&x| x == b) {
                lru.remove(pos);
            } else {
                misses += 1;
            }
            lru.insert(0, b);
            lru.truncate(capacity as usize);
        }
        assert_eq!(hist.misses_at(capacity), misses);
        assert_eq!(hist.total(), blocks.len() as u64);
    });
}

#[test]
fn stack_distance_curve_monotone() {
    check(48, |rng| {
        use mlc::trace::stackdist::lru_stack_distances;
        let blocks: Vec<u64> = (0..range(rng, 1, 400))
            .map(|_| rng.next_below(256))
            .collect();
        let trace: Vec<TraceRecord> = blocks.iter().map(|&b| TraceRecord::read(b * 32)).collect();
        let hist = lru_stack_distances(trace, 32);
        let mut prev = u64::MAX;
        for cap in 1..300u64 {
            let m = hist.misses_at(cap);
            assert!(m <= prev);
            prev = m;
        }
        // Beyond the footprint, only cold misses remain.
        assert_eq!(hist.misses_at(300), hist.cold_misses());
    });
}

// ---------------------------------------------------------------------
// Simulator timing invariants
// ---------------------------------------------------------------------

fn small_trace(seed: u64, n: usize) -> Vec<TraceRecord> {
    use mlc::trace::synth::{MultiProgramConfig, MultiProgramGenerator, ProcessConfig};
    let config = MultiProgramConfig::homogeneous(2, ProcessConfig::default(), seed);
    MultiProgramGenerator::new(config)
        .expect("valid")
        .generate_records(n)
}

#[test]
fn slower_l2_never_runs_faster() {
    check(12, |rng| {
        let seed = rng.next_below(1000);
        let c1 = range(rng, 1, 10);
        let dc = range(rng, 1, 5);
        let trace = small_trace(seed, 6_000);
        let fast = simulate(
            BaseMachine::new().l2_cycles(c1).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        let slow = simulate(
            BaseMachine::new().l2_cycles(c1 + dc).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        assert!(slow.total_cycles >= fast.total_cycles);
    });
}

#[test]
fn miss_counts_independent_of_l2_cycle_time() {
    check(12, |rng| {
        let seed = rng.next_below(1000);
        let c = range(rng, 1, 12);
        let trace = small_trace(seed, 6_000);
        let a = simulate(
            BaseMachine::new().l2_cycles(c).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        let b = simulate(
            BaseMachine::new().l2_cycles(1).build().unwrap(),
            trace.iter().copied(),
        )
        .unwrap();
        for (la, lb) in a.levels.iter().zip(b.levels.iter()) {
            assert_eq!(la.cache.read_misses(), lb.cache.read_misses());
            assert_eq!(la.cache.write_misses(), lb.cache.write_misses());
            assert_eq!(la.cache.writebacks, lb.cache.writebacks);
        }
    });
}

#[test]
fn total_cycles_at_least_instructions() {
    check(12, |rng| {
        let seed = rng.next_below(1000);
        let trace = small_trace(seed, 4_000);
        let r = simulate(BaseMachine::new().build().unwrap(), trace).unwrap();
        assert!(r.total_cycles >= r.instructions);
        assert!(r.cpu_reads == r.instructions + r.loads);
    });
}

// ---------------------------------------------------------------------
// Geometry invariants
// ---------------------------------------------------------------------

#[test]
fn geometry_index_tag_round_trip() {
    check(128, |rng| {
        let total_log = range(rng, 6, 22) as u32;
        let block_log = range(rng, 2, 7) as u32;
        let ways_log = range(rng, 0, 4) as u32;
        if block_log + ways_log >= total_log {
            return;
        }
        let geom = mlc::cache::CacheGeometry::new(
            ByteSize::new(1 << total_log),
            1 << block_log,
            1 << ways_log,
        )
        .unwrap();
        let a = Address::new(rng.next_u64());
        let set = geom.set_index(a);
        assert!(set < geom.sets());
        assert_eq!(geom.block_address(set, geom.tag(a)), geom.block_base(a));
    });
}
