//! Cross-crate integration of the `mlc-obs` observability layer: the
//! observed simulation drivers must not perturb results, the metrics
//! they feed must be deterministic in structure, and the manifest's
//! non-timing content must be a pure function of the run's inputs.

use mlc_cache::ByteSize;
use mlc_core::{size_ladder, Explorer};
use mlc_obs::{digest_records_hex, Metrics, Progress, RunManifest};
use mlc_sim::machine::{base_machine, BaseMachine};
use mlc_sim::{simulate_with_warmup, simulate_with_warmup_observed};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

fn preset_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(Preset::Vms1.config(seed))
        .expect("valid preset")
        .generate_records(n)
}

#[test]
fn observation_is_invisible_to_simulation_results() {
    let trace = preset_trace(60_000, 21);
    let metrics = Metrics::enabled();
    let observed = simulate_with_warmup_observed(base_machine(), &trace, 15_000, &metrics).unwrap();
    let plain = simulate_with_warmup(base_machine(), trace.iter().copied(), 15_000).unwrap();
    assert_eq!(observed.total_cycles, plain.total_cycles);
    assert_eq!(observed.instructions, plain.instructions);
    assert_eq!(observed.read_stall_cycles, plain.read_stall_cycles);
    assert_eq!(observed.write_stall_cycles, plain.write_stall_cycles);

    // The counters agree with the result they were derived from.
    let snap = metrics.snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing {name}"))
            .1
    };
    assert_eq!(get("sim.instructions"), plain.instructions);
    assert_eq!(get("sim.memory.reads"), plain.memory.reads);
}

#[test]
fn grid_results_are_identical_with_and_without_observation() {
    let trace = preset_trace(50_000, 33);
    let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
    let cycles = vec![1, 3];
    let base = BaseMachine::new();

    let bare = Explorer::new(&trace, 12_500).l2_grid(&base, &sizes, &cycles, 1);
    let metrics = Metrics::enabled();
    let progress = Progress::disabled();
    let watched = Explorer::new(&trace, 12_500)
        .with_metrics(&metrics)
        .with_progress(&progress)
        .l2_grid(&base, &sizes, &cycles, 1);
    assert_eq!(bare, watched, "observation must not change the grid");
    assert_eq!(progress.done(), (sizes.len() * cycles.len()) as u64);
}

#[test]
fn metrics_key_structure_is_deterministic_across_runs() {
    // Parallel workers record in nondeterministic order; the exported
    // key sequence must not depend on that.
    let trace = preset_trace(40_000, 8);
    let sizes = size_ladder(ByteSize::kib(16), ByteSize::kib(128));
    let keys = |m: &Metrics| {
        let snap = m.snapshot();
        (
            snap.counters
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
            snap.phases
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
        )
    };
    let run = || {
        let metrics = Metrics::enabled();
        Explorer::new(&trace, 10_000)
            .with_metrics(&metrics)
            .l2_grid(&BaseMachine::new(), &sizes, &[1, 2, 3], 1);
        keys(&metrics)
    };
    let (counters_a, phases_a) = run();
    let (counters_b, phases_b) = run();
    assert_eq!(counters_a, counters_b);
    assert_eq!(phases_a, phases_b);
    assert!(phases_a.iter().any(|k| k.starts_with("grid.size.")));
}

#[test]
fn manifest_non_timing_fields_reproduce_from_identical_inputs() {
    let trace = preset_trace(10_000, 55);
    let build = |phase_ms: u64| {
        let metrics = Metrics::enabled();
        metrics.record_phase("read_trace", std::time::Duration::from_millis(phase_ms));
        let mut m = RunManifest::new("mlc-sweep", "0.1.0");
        m.command([
            "--trace".into(),
            "t.mlcz".into(),
            "--sizes".into(),
            "16K:64K".into(),
        ]);
        m.trace(
            "t.mlcz",
            trace.len() as u64,
            2_500,
            &digest_records_hex(&trace),
        );
        m.engine("onepass");
        m.param("l2_ways", 1u64);
        m.set_timings(&metrics.snapshot());
        m.to_json()
    };
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("_ms\""))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    let a = build(3);
    let b = build(9);
    assert_eq!(strip(&a), strip(&b));
    assert_ne!(a, b, "timing values must be the only difference");
}

#[test]
fn trace_digest_is_content_sensitive_and_format_insensitive() {
    let trace = preset_trace(5_000, 77);
    let same = trace.clone();
    assert_eq!(digest_records_hex(&trace), digest_records_hex(&same));

    let mut mutated = trace.clone();
    mutated[2_500] = TraceRecord::write(mutated[2_500].addr.get() ^ 0x40);
    assert_ne!(digest_records_hex(&trace), digest_records_hex(&mutated));

    // The digest hashes records, not bytes: a round-trip through each
    // on-disk format leaves it unchanged.
    let mut fixed = Vec::new();
    mlc_trace::binary::write_binary(&mut fixed, &trace).unwrap();
    let from_fixed = mlc_trace::binary::read_binary(fixed.as_slice()).unwrap();
    let mut compressed = Vec::new();
    mlc_trace::binary::write_compressed(&mut compressed, &trace).unwrap();
    let from_compressed = mlc_trace::binary::read_binary(compressed.as_slice()).unwrap();
    assert_eq!(digest_records_hex(&from_fixed), digest_records_hex(&trace));
    assert_eq!(
        digest_records_hex(&from_compressed),
        digest_records_hex(&trace)
    );
}
