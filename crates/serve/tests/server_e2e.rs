//! End-to-end server behaviour with real (synthetic) traces and real
//! sweeps: cold compute, tier promotion across restarts, single-flight
//! deduplication, and kill-then-recover resumption — all asserting
//! bit-identical grids via the wire encoding.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlc_core::DesignGrid;
use mlc_obs::{digest_records_hex, JournalHeader, JournalRow, JournalWriter};
use mlc_serve::{
    default_loader, grid_to_json, job_key, key_stem, DiskStore, JobEvent, JobSpec, JobStatus,
    Server, ServerConfig, SubmitOutcome, SubmitRequest, Tier,
};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlc_serve_e2e_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_trace(dir: &Path, n: usize) -> PathBuf {
    let records = MultiProgramGenerator::new(Preset::Mips2.config(7))
        .expect("valid preset")
        .generate_records(n);
    let path = dir.join("trace.din");
    let file = std::fs::File::create(&path).unwrap();
    mlc_trace::din::write_din(file, records.iter().copied()).unwrap();
    path
}

fn request(trace: &Path) -> SubmitRequest {
    SubmitRequest {
        trace: trace.to_path_buf(),
        l1_bytes: 4096,
        ways: 1,
        sizes: vec![16384, 32768],
        cycles: vec![1, 4],
        engine: "onepass".into(),
        warmup_frac: 0.25,
        wait: true,
        deadline_ms: 0,
        trace_id: String::new(),
    }
}

fn server(root: &Path, row_delay: Duration) -> Arc<Server> {
    let mut config = ServerConfig::new(root);
    config.row_delay = row_delay;
    Server::new(config, default_loader()).unwrap()
}

/// Follows a submission's event stream to its terminal grid.
fn drain(events: &std::sync::mpsc::Receiver<JobEvent>) -> Arc<DesignGrid> {
    loop {
        match events.recv().expect("job must terminate") {
            JobEvent::Progress { .. } => {}
            JobEvent::Done(done) => return done.result.expect("job must succeed"),
        }
    }
}

fn grid_bits(grid: &DesignGrid) -> String {
    grid_to_json(grid).to_string_compact()
}

#[test]
fn cold_compute_then_cache_hits_are_bit_identical() {
    let root = temp_root("cold");
    let trace = write_trace(&root, 20_000);
    let server = server(&root.join("store"), Duration::ZERO);

    let cold = match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => {
            assert!(!sub.coalesced);
            assert_eq!(sub.rows_total, 2);
            assert_eq!(sub.rows_resumed, 0);
            drain(&sub.events)
        }
        SubmitOutcome::Cached { .. } => panic!("empty store cannot hit"),
    };
    assert_eq!(server.stats().jobs_computed, 1);
    assert_eq!(server.stats().disk_entries, 1);

    // Same submission again: memory tier, bit-identical.
    match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Cached { grid, tier, .. } => {
            assert_eq!(tier, Tier::Memory);
            assert_eq!(grid_bits(&cold), grid_bits(&grid));
        }
        SubmitOutcome::Running(_) => panic!("completed job must be cached"),
    }
    assert_eq!(server.stats().jobs_computed, 1, "no second simulation");

    // A fresh server over the same store: disk tier first, then memory.
    let restarted = self::server(&root.join("store"), Duration::ZERO);
    match restarted.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Cached {
            grid, tier, key, ..
        } => {
            assert_eq!(tier, Tier::Disk);
            assert_eq!(grid_bits(&cold), grid_bits(&grid));
            assert_eq!(restarted.status(&key), JobStatus::CachedMemory);
        }
        SubmitOutcome::Running(_) => panic!("committed result must survive restart"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn identical_inflight_submissions_coalesce_to_one_simulation() {
    let root = temp_root("single_flight");
    let trace = write_trace(&root, 20_000);
    // The row delay keeps the leader in flight while the follower submits.
    let server = server(&root.join("store"), Duration::from_millis(300));

    let leader = match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => sub,
        SubmitOutcome::Cached { .. } => panic!("empty store cannot hit"),
    };
    let follower = match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => sub,
        SubmitOutcome::Cached { .. } => panic!("leader still in flight"),
    };
    assert!(!leader.coalesced);
    assert!(
        follower.coalesced,
        "identical in-flight submission must attach"
    );
    assert_eq!(leader.key, follower.key);

    let a = drain(&leader.events);
    let b = drain(&follower.events);
    assert_eq!(
        grid_bits(&a),
        grid_bits(&b),
        "subscribers must agree bitwise"
    );
    let stats = server.stats();
    assert_eq!(stats.jobs_computed, 1, "single-flight: one simulation");
    assert_eq!(stats.jobs_coalesced, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn recovery_resumes_interrupted_job_bit_identically() {
    let root = temp_root("recover");
    let trace = write_trace(&root, 20_000);

    // Reference: the uninterrupted answer.
    let ref_server = server(&root.join("ref_store"), Duration::ZERO);
    let reference = match ref_server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => drain(&sub.events),
        SubmitOutcome::Cached { .. } => panic!("empty store cannot hit"),
    };

    // Fabricate the exact on-disk state a `kill -9` after the first
    // committed row leaves behind: spec sidecar + journal with row 0.
    // (An in-process "crash" can't actually kill the worker thread, so
    // building the spool directly is the deterministic equivalent; the
    // ci.sh smoke kills a real daemon.) The header must be byte-for-
    // byte what a live submission derives, so build it the same way.
    let crash_root = root.join("crash_store");
    let records = default_loader()(&trace, "").unwrap();
    let req = request(&trace);
    let header = JournalHeader {
        trace_digest: digest_records_hex(&records),
        engine: req.engine.clone(),
        l1_bytes: req.l1_bytes,
        warmup: (records.len() as f64 * req.warmup_frac) as u64,
        ways: req.ways,
        sizes: req.sizes.clone(),
        cycles: req.cycles.clone(),
        trace_id: Some("trc-e2e-crash".into()),
    };
    let key = job_key(&header);
    let stem = key_stem(&key).unwrap();
    let disk = DiskStore::open(&crash_root).unwrap();
    disk.write_job_spec(
        stem,
        &JobSpec {
            key: key.clone(),
            trace: trace.clone(),
        },
    )
    .unwrap();
    let mut writer = JournalWriter::create(&disk.job_journal_path(stem), &header).unwrap();
    writer
        .append_row(&JournalRow {
            row: 0,
            total: reference.total[0].clone(),
            l2_local: reference.l2_local[0],
            l2_global: reference.l2_global[0],
            m_l1_global: reference.m_l1_global,
            cpu_cycle_ns: reference.cpu_cycle_ns,
        })
        .unwrap();
    drop(writer);

    // Restart over the spool. recover() must resume the journal rather
    // than recompute from scratch, and must converge on the same bits.
    let restarted = server(&crash_root, Duration::ZERO);
    let report = restarted.recover();
    assert_eq!(
        report.resumed,
        vec![key.clone()],
        "errors: {:?}",
        report.errors
    );
    assert_eq!(restarted.stats().jobs_recovered, 1);

    let deadline = Instant::now() + Duration::from_secs(60);
    let resumed = loop {
        if let Some((grid, _)) = restarted.fetch(&key) {
            break grid;
        }
        assert!(Instant::now() < deadline, "resumed job never finished");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(
        grid_bits(&reference),
        grid_bits(&resumed),
        "resumed sweep must be bit-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// The tracing tentpole, end to end: one trace id follows a submission
/// through the ack, a coalesced follower's stream, the committed
/// journal header, and the Perfetto span export.
#[test]
fn trace_id_follows_the_job_through_events_journal_and_spans() {
    let root = temp_root("trace_ctx");
    let trace = write_trace(&root, 20_000);
    let mut config = ServerConfig::new(root.join("store"));
    config.row_delay = Duration::from_millis(300);
    config.span_retention = 4096;
    let server = Server::new(config, default_loader()).unwrap();

    let leader_id = "trc-e2e-leader";
    let mut req = request(&trace);
    req.trace_id = leader_id.into();
    let leader = match server.submit(&req).unwrap() {
        SubmitOutcome::Running(sub) => sub,
        SubmitOutcome::Cached { .. } => panic!("empty store cannot hit"),
    };
    assert_eq!(leader.trace_id, leader_id, "ack echoes the caller's id");

    // A follower with no context of its own inherits the running
    // job's id; one with its own context keeps it.
    let follower = match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => sub,
        SubmitOutcome::Cached { .. } => panic!("leader still in flight"),
    };
    assert!(follower.coalesced);
    assert_eq!(
        follower.trace_id, leader_id,
        "bare follower adopts the job's trace id"
    );
    let mut tagged = request(&trace);
    tagged.trace_id = "trc-e2e-follower".into();
    let tagged = match server.submit(&tagged).unwrap() {
        SubmitOutcome::Running(sub) => sub,
        SubmitOutcome::Cached { .. } => panic!("leader still in flight"),
    };
    assert_eq!(tagged.trace_id, "trc-e2e-follower");

    let key = leader.key.clone();
    drain(&leader.events);
    drain(&follower.events);
    drain(&tagged.events);

    // The committed journal header carries the submitter's id.
    let stem = key_stem(&key).unwrap();
    let store = DiskStore::open(&root.join("store")).unwrap();
    let journal = mlc_obs::read_journal(&store.cache_path(stem)).unwrap();
    assert_eq!(journal.header.trace_id.as_deref(), Some(leader_id));

    // The retained spans cover the job's lifecycle under the same id,
    // and the Perfetto export names it.
    let spans = server.telemetry().retained_spans();
    let stages: Vec<_> = spans
        .iter()
        .filter(|s| s.trace_id == leader_id)
        .map(|s| s.stage)
        .collect();
    for stage in [
        mlc_obs::Stage::Admission,
        mlc_obs::Stage::Key,
        mlc_obs::Stage::MemLookup,
        mlc_obs::Stage::DiskLookup,
        mlc_obs::Stage::Simulate,
        mlc_obs::Stage::JournalCommit,
        mlc_obs::Stage::Evict,
    ] {
        assert!(
            stages.contains(&stage),
            "leader id must label {stage:?}; got {stages:?}"
        );
    }
    let mut perfetto = Vec::new();
    mlc_obs::write_span_chrome_trace(&mut perfetto, &spans).unwrap();
    let perfetto = String::from_utf8(perfetto).unwrap();
    assert!(perfetto.contains(leader_id), "Perfetto export names the id");
    assert!(perfetto.contains("mlc-serve-spans/1"));

    // Invalid ids are rejected as such, not minted over.
    let mut bad = request(&trace);
    bad.trace_id = "no spaces allowed".into();
    assert!(matches!(
        server.submit(&bad),
        Err(mlc_serve::SubmitError::Invalid(_))
    ));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_keys_and_invalid_submissions_answer_cleanly() {
    let root = temp_root("unknown");
    let trace = write_trace(&root, 4_000);
    let server = server(&root.join("store"), Duration::ZERO);

    let bogus = "fnv1a64:00000000000000aa";
    assert_eq!(server.status(bogus), JobStatus::Unknown);
    assert!(server.fetch(bogus).is_none());

    let mut bad_engine = request(&trace);
    bad_engine.engine = "warp".into();
    assert!(server.submit(&bad_engine).is_err());

    let mut empty_grid = request(&trace);
    empty_grid.sizes.clear();
    assert!(server.submit(&empty_grid).is_err());

    let mut missing_trace = request(&trace);
    missing_trace.trace = root.join("no_such.din");
    assert!(server.submit(&missing_trace).is_err());
    let _ = std::fs::remove_dir_all(&root);
}
