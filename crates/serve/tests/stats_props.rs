//! Properties of the sharded span recorder under concurrency: span ids
//! never collide, every span lands in exactly the shard its id maps
//! to, and the read-side aggregation conserves every sample.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlc_obs::Stage;
use mlc_serve::{shard_of, ServerStats, STATS_SHARDS};

/// Eight "jobs" record spans concurrently, each under its own trace id
/// and its own mix of stages. Afterwards the retained spans are the
/// oracle: replaying `shard_of(span_id)` over them must reproduce the
/// per-shard per-stage counts exactly — no span was lost, duplicated,
/// or filed in another job's shard slot.
#[test]
fn concurrent_jobs_never_interleave_span_ids_across_shards() {
    const JOBS: usize = 8;
    const SPANS_PER_JOB: usize = 400;
    let stats = Arc::new(ServerStats::new(JOBS * SPANS_PER_JOB));
    let threads: Vec<_> = (0..JOBS)
        .map(|j| {
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                let t0 = Instant::now() - Duration::from_micros(j as u64);
                for i in 0..SPANS_PER_JOB {
                    // Each job cycles the stages in its own order, so
                    // shards see a concurrent mix of every stage.
                    let stage = Stage::ALL[(i + j) % Stage::COUNT];
                    stats.record_span(stage, &format!("trc-job-{j}"), t0);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let total = (JOBS * SPANS_PER_JOB) as u64;
    assert_eq!(stats.spans_recorded(), total);
    let spans = stats.retained_spans();
    assert_eq!(spans.len() as u64, total, "retention saw every span");

    // Ids are unique across all concurrent jobs.
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len() as u64, total, "span ids never collide");

    // Replay the shard function over the retained spans and demand the
    // recorder's per-shard per-stage counters match exactly.
    let mut expected: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    for span in &spans {
        *expected
            .entry((shard_of(span.span_id), span.stage.index()))
            .or_default() += 1;
    }
    for shard in 0..STATS_SHARDS {
        for &stage in &Stage::ALL {
            let want = expected.get(&(shard, stage.index())).copied().unwrap_or(0);
            assert_eq!(
                stats.shard_stage_count(shard, stage),
                want,
                "shard {shard} stage {stage:?}: every span sits in exactly \
                 the shard its id maps to"
            );
        }
    }

    // Aggregation conserves: per-stage histograms sum to the total.
    let summed: u64 = Stage::ALL
        .iter()
        .map(|&s| stats.stage_histogram(s).count())
        .sum();
    assert_eq!(summed, total, "no sample lost or double-counted on read");
}
