//! Disk-tier eviction invariants: the committed tier never exceeds its
//! byte budget (beyond a single over-budget artifact), eviction is
//! LRU-by-mtime oldest-first, in-flight spool entries are never
//! touched, the just-committed entry survives its own commit, the
//! janitor clears exactly the kill-9 leftovers — and a cache rebuilt
//! after eviction still answers **bit-identically** from recompute
//! (sim-vs-cache oracle, in the style of the sim-vs-bounds tests).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, SystemTime};

use mlc_obs::{JournalHeader, JournalRow, JournalWriter};
use mlc_serve::{
    default_loader, grid_to_json, job_key, key_stem, DiskStore, FaultInjector, JobEvent, JobSpec,
    Server, ServerConfig, SubmitOutcome, SubmitRequest,
};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlc_serve_evict_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn header(tag: u64) -> JournalHeader {
    JournalHeader {
        trace_digest: format!("fnv1a64:{tag:016x}"),
        engine: "onepass".into(),
        l1_bytes: 4096,
        warmup: 1000,
        ways: 1,
        sizes: vec![16384, 32768],
        cycles: vec![1, 4],
        trace_id: None,
    }
}

fn rows() -> Vec<JournalRow> {
    vec![
        JournalRow {
            row: 0,
            total: vec![100, 200],
            l2_local: 0.25,
            l2_global: 0.5,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
        JournalRow {
            row: 1,
            total: vec![90, 180],
            l2_local: 0.125,
            l2_global: 0.0625,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
    ]
}

/// Spools a complete journal (plus spec) for `header` into `jobs/`, as
/// a finished-but-uncommitted job would leave it. Returns the key.
fn spool_entry(store: &DiskStore, header: &JournalHeader) -> String {
    let key = job_key(header);
    let stem = key_stem(&key).unwrap();
    store
        .write_job_spec(
            stem,
            &JobSpec {
                key: key.clone(),
                trace: PathBuf::from("/nonexistent/trace.din"),
            },
        )
        .unwrap();
    let mut w = JournalWriter::create(&store.job_journal_path(stem), header).unwrap();
    for row in rows() {
        w.append_row(&row).unwrap();
    }
    key
}

/// Spools and commits an entry; returns its key.
fn commit_entry(store: &DiskStore, header: &JournalHeader) -> String {
    let key = spool_entry(store, header);
    store.commit(key_stem(&key).unwrap()).unwrap();
    key
}

/// Pins a committed entry's mtime to a chosen point in the past, so the
/// LRU order is deterministic regardless of test speed.
fn set_age(store: &DiskStore, key: &str, age: Duration) {
    let path = store.cache_path(key_stem(key).unwrap());
    let file = fs::OpenOptions::new().append(true).open(path).unwrap();
    file.set_times(fs::FileTimes::new().set_modified(SystemTime::now() - age))
        .unwrap();
}

#[test]
fn budget_is_enforced_after_every_commit() {
    let root = temp_root("budget");
    // Learn the artifact size first, so the budget is in entry units.
    let probe = DiskStore::open(&root.join("probe")).unwrap();
    commit_entry(&probe, &header(0));
    let entry_bytes = probe.disk_bytes();
    assert!(entry_bytes > 0);

    // Budget of three entries; commit eight.
    let budget = 3 * entry_bytes + entry_bytes / 2;
    let store =
        DiskStore::open_with(&root.join("store"), Some(budget), FaultInjector::none()).unwrap();
    for tag in 1..=8 {
        let key = commit_entry(&store, &header(tag));
        assert!(
            store.disk_bytes() <= budget,
            "after commit {tag}: {} bytes exceeds the {budget} budget",
            store.disk_bytes()
        );
        assert!(
            store.cache_path(key_stem(&key).unwrap()).exists(),
            "a commit must never evict the entry it just created"
        );
    }
    let (evicted, evicted_bytes) = store.eviction_totals();
    assert_eq!(evicted, 5, "8 committed, 3 fit");
    assert_eq!(evicted_bytes, 5 * entry_bytes);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn eviction_is_lru_oldest_first_and_skips_the_spool() {
    let root = temp_root("lru");
    let probe = DiskStore::open(&root.join("probe")).unwrap();
    commit_entry(&probe, &header(0));
    let entry_bytes = probe.disk_bytes();

    let budget = 2 * entry_bytes + entry_bytes / 2;
    let store =
        DiskStore::open_with(&root.join("store"), Some(budget), FaultInjector::none()).unwrap();
    // An in-flight job sits in the spool throughout.
    let inflight = spool_entry(&store, &header(99));
    let inflight_journal = store.job_journal_path(key_stem(&inflight).unwrap());

    let old = commit_entry(&store, &header(1));
    let mid = commit_entry(&store, &header(2));
    set_age(&store, &old, Duration::from_secs(3600));
    set_age(&store, &mid, Duration::from_secs(60));
    // Third commit overflows the budget; the 1-hour-old entry must go.
    let new = commit_entry(&store, &header(3));

    let exists = |key: &str| store.cache_path(key_stem(key).unwrap()).exists();
    assert!(!exists(&old), "LRU eviction must take the oldest entry");
    assert!(exists(&mid));
    assert!(exists(&new));
    assert!(
        inflight_journal.exists(),
        "eviction must never touch in-flight spool entries"
    );
    assert!(store.disk_bytes() <= budget);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn loading_marks_an_entry_recently_used() {
    let root = temp_root("touch");
    let probe = DiskStore::open(&root.join("probe")).unwrap();
    commit_entry(&probe, &header(0));
    let entry_bytes = probe.disk_bytes();

    let budget = 2 * entry_bytes + entry_bytes / 2;
    let store =
        DiskStore::open_with(&root.join("store"), Some(budget), FaultInjector::none()).unwrap();
    let a = commit_entry(&store, &header(1));
    let b = commit_entry(&store, &header(2));
    set_age(&store, &a, Duration::from_secs(3600));
    set_age(&store, &b, Duration::from_secs(60));
    // A hit on the older entry promotes it: now B is least recent.
    assert!(store.load(&a).is_some());
    let _ = commit_entry(&store, &header(3));

    let exists = |key: &str| store.cache_path(key_stem(key).unwrap()).exists();
    assert!(exists(&a), "a loaded entry was just used; it must survive");
    assert!(!exists(&b), "the untouched entry is now the LRU victim");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn single_entry_larger_than_budget_is_kept() {
    let root = temp_root("giant");
    let store = DiskStore::open_with(&root, Some(16), FaultInjector::none()).unwrap();
    let key = commit_entry(&store, &header(1));
    assert!(
        store.cache_path(key_stem(&key).unwrap()).exists(),
        "the budget bounds the steady state, not a single artifact"
    );
    // The next commit replaces it: the older giant is evictable now.
    let key2 = commit_entry(&store, &header(2));
    assert!(store.cache_path(key_stem(&key2).unwrap()).exists());
    assert_eq!(store.disk_entries(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn janitor_removes_exactly_the_kill9_leftovers() {
    let root = temp_root("janitor");
    let store = DiskStore::open(&root).unwrap();
    // A healthy in-flight pair: journal + spec. Must survive.
    let live = spool_entry(&store, &header(7));
    let live_stem = key_stem(&live).unwrap();
    // An interrupted spec write: a stranded temp file.
    let tmp = root.join("jobs").join("0000000000000abc.job.4242.tmp");
    fs::write(&tmp, "{\"partial\":").unwrap();
    // A journal whose spec sidecar never landed: unresumable.
    let orphan = root.join("jobs").join("00000000000000ff.jsonl");
    fs::write(&orphan, "bogus journal bytes\n").unwrap();

    assert_eq!(store.janitor(), 2);
    assert!(!tmp.exists());
    assert!(!orphan.exists());
    assert!(store.job_journal_path(live_stem).exists());
    assert!(store.job_spec_path(live_stem).exists());
    assert_eq!(store.orphans_removed(), 2);
    // Idempotent: a second sweep finds nothing.
    assert_eq!(store.janitor(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

// ---- the recompute oracle: eviction must cost time, never bits ----

fn write_trace(dir: &Path, n: usize) -> PathBuf {
    let records = MultiProgramGenerator::new(Preset::Mips2.config(7))
        .expect("valid preset")
        .generate_records(n);
    let path = dir.join("trace.din");
    let file = std::fs::File::create(&path).unwrap();
    mlc_trace::din::write_din(file, records.iter().copied()).unwrap();
    path
}

fn request(trace: &Path, sizes: Vec<u64>) -> SubmitRequest {
    SubmitRequest {
        trace: trace.to_path_buf(),
        l1_bytes: 4096,
        ways: 1,
        sizes,
        cycles: vec![1, 4],
        engine: "onepass".into(),
        warmup_frac: 0.25,
        wait: true,
        deadline_ms: 0,
        trace_id: String::new(),
    }
}

fn run_to_grid(server: &Arc<Server>, req: &SubmitRequest) -> (Arc<mlc_core::DesignGrid>, bool) {
    match server.submit(req).unwrap() {
        SubmitOutcome::Running(sub) => loop {
            match sub.events.recv().expect("job must terminate") {
                JobEvent::Progress { .. } => {}
                JobEvent::Done(done) => return (done.result.expect("job must succeed"), false),
            }
        },
        SubmitOutcome::Cached { grid, .. } => (grid, true),
    }
}

#[test]
fn recompute_after_eviction_is_bit_identical() {
    let root = temp_root("oracle");
    let trace = write_trace(&root, 20_000);
    let req_a = request(&trace, vec![16384, 32768]);
    let req_b = request(&trace, vec![65536, 131072]);

    // Reference pass, unbudgeted: learn A's bits and entry size.
    let mut config = ServerConfig::new(root.join("ref_store"));
    config.mem_entries = 8;
    let reference = Server::new(config, default_loader()).unwrap();
    let (grid_a, _) = run_to_grid(&reference, &req_a);
    let bits_a = grid_to_json(&grid_a).to_string_compact();
    let entry_bytes = reference.stats().disk_bytes;
    assert!(entry_bytes > 0);

    // Budgeted store: room for one entry only, so B's commit evicts A.
    let store_root = root.join("store");
    let mut config = ServerConfig::new(&store_root);
    config.disk_budget = Some(entry_bytes + entry_bytes / 2);
    let server = Server::new(config, default_loader()).unwrap();
    let (grid_first, cached) = run_to_grid(&server, &req_a);
    assert!(!cached);
    assert_eq!(grid_to_json(&grid_first).to_string_compact(), bits_a);
    let _ = run_to_grid(&server, &req_b);
    let stats = server.stats();
    assert_eq!(stats.disk_entries, 1, "B's commit must evict A");
    assert_eq!(stats.disk_evictions, 1);
    assert!(stats.disk_bytes <= entry_bytes + entry_bytes / 2);

    // A fresh server over the evicted store (cold memory tier): the
    // same submission recomputes — and must reproduce A bit for bit.
    let mut config = ServerConfig::new(&store_root);
    config.disk_budget = Some(entry_bytes + entry_bytes / 2);
    let rebuilt = Server::new(config, default_loader()).unwrap();
    let (grid_again, cached) = run_to_grid(&rebuilt, &req_a);
    assert!(!cached, "A was evicted; this must be a recompute");
    assert_eq!(
        grid_to_json(&grid_again).to_string_compact(),
        bits_a,
        "eviction must cost recompute time, never bits"
    );
    let _ = std::fs::remove_dir_all(&root);
}
