//! Chaos-harness end-to-end tests: injected disk faults, deadlines,
//! admission control, and abusive peers — the daemon must degrade with
//! typed answers and heal to bit-identical results, never hang or die.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlc_serve::{
    default_loader, grid_to_json, FaultInjector, JobEvent, Server, ServerConfig, SubmitError,
    SubmitOutcome, SubmitRequest,
};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlc_serve_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_trace(dir: &Path, n: usize) -> PathBuf {
    let records = MultiProgramGenerator::new(Preset::Mips2.config(7))
        .expect("valid preset")
        .generate_records(n);
    let path = dir.join("trace.din");
    let file = std::fs::File::create(&path).unwrap();
    mlc_trace::din::write_din(file, records.iter().copied()).unwrap();
    path
}

fn request(trace: &Path) -> SubmitRequest {
    SubmitRequest {
        trace: trace.to_path_buf(),
        l1_bytes: 4096,
        ways: 1,
        sizes: vec![16384, 32768],
        cycles: vec![1, 4],
        engine: "onepass".into(),
        warmup_frac: 0.25,
        wait: true,
        deadline_ms: 0,
        trace_id: String::new(),
    }
}

/// Follows a submission to its terminal result.
fn drain(sub: &mlc_serve::Submission) -> Result<Arc<mlc_core::DesignGrid>, mlc_serve::JobError> {
    loop {
        match sub.events.recv().expect("job must terminate") {
            JobEvent::Progress { .. } => {}
            JobEvent::Done(done) => return done.result,
        }
    }
}

fn bits(grid: &mlc_core::DesignGrid) -> String {
    grid_to_json(grid).to_string_compact()
}

#[test]
fn enospc_mid_journal_is_retryable_and_heals() {
    let root = temp_root("enospc");
    let trace = write_trace(&root, 20_000);

    // Clean reference bits.
    let reference = Server::new(ServerConfig::new(root.join("ref")), default_loader()).unwrap();
    let SubmitOutcome::Running(sub) = reference.submit(&request(&trace)).unwrap() else {
        panic!("empty store cannot hit");
    };
    let want = bits(&drain(&sub).unwrap());

    // One journal append fails as ENOSPC, then the disk "clears".
    let chaos = FaultInjector::none();
    chaos.arm_journal_enospc(1);
    let mut config = ServerConfig::new(root.join("store"));
    config.chaos = Arc::clone(&chaos);
    let server = Server::new(config, default_loader()).unwrap();

    let SubmitOutcome::Running(sub) = server.submit(&request(&trace)).unwrap() else {
        panic!("empty store cannot hit");
    };
    let err = drain(&sub).expect_err("injected ENOSPC must fail the job");
    assert!(err.retryable, "a full disk is transient: {err}");
    assert!(err.message.contains("journal write failed"), "{err}");
    assert_eq!(chaos.injected(), 1);

    // The idempotent retry resumes the surviving row and converges.
    let SubmitOutcome::Running(sub) = server.submit(&request(&trace)).unwrap() else {
        panic!("failed job must not be cached");
    };
    assert_eq!(sub.rows_resumed, 1, "the successful row was journalled");
    assert_eq!(
        bits(&drain(&sub).unwrap()),
        want,
        "healed result must match"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_commit_rename_is_retryable_and_resumes_without_recompute() {
    let root = temp_root("torn");
    let trace = write_trace(&root, 20_000);
    let chaos = FaultInjector::none();
    chaos.arm_commit_fail(1);
    let mut config = ServerConfig::new(root.join("store"));
    config.chaos = Arc::clone(&chaos);
    let server = Server::new(config, default_loader()).unwrap();

    let SubmitOutcome::Running(sub) = server.submit(&request(&trace)).unwrap() else {
        panic!("empty store cannot hit");
    };
    let err = drain(&sub).expect_err("injected torn rename must fail the commit");
    assert!(err.retryable, "{err}");
    assert!(err.message.contains("cache commit failed"), "{err}");
    assert_eq!(server.stats().jobs_computed, 0);

    // The complete journal is still in the spool: the retry replays all
    // rows (no recompute) and commits.
    let SubmitOutcome::Running(sub) = server.submit(&request(&trace)).unwrap() else {
        panic!("failed commit must not look cached");
    };
    assert_eq!(sub.rows_resumed, 2, "every row was journalled already");
    assert!(drain(&sub).is_ok());
    assert_eq!(server.stats().disk_entries, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn full_job_table_sheds_with_a_typed_overload() {
    let root = temp_root("shed");
    let trace = write_trace(&root, 20_000);
    let mut config = ServerConfig::new(root.join("store"));
    config.max_jobs = 1;
    config.row_delay = Duration::from_millis(300);
    let server = Server::new(config, default_loader()).unwrap();

    let SubmitOutcome::Running(leader) = server.submit(&request(&trace)).unwrap() else {
        panic!("empty store cannot hit");
    };
    // A *different* job (other grid) cannot coalesce and must be shed.
    let mut other = request(&trace);
    other.sizes = vec![65536, 131072];
    match server.submit(&other) {
        Err(SubmitError::Overloaded(reason)) => assert!(reason.contains("job table full")),
        other => panic!("expected overloaded, got {other:?}"),
    }
    // An *identical* submission coalesces for free even at the cap.
    match server.submit(&request(&trace)).unwrap() {
        SubmitOutcome::Running(sub) => assert!(sub.coalesced),
        SubmitOutcome::Cached { .. } => {} // leader finished already: also fine
    }
    assert_eq!(server.stats().jobs_shed, 1);
    assert!(drain(&leader).is_ok());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn draining_server_sheds_new_submissions() {
    let root = temp_root("drainshed");
    let trace = write_trace(&root, 20_000);
    let server = Server::new(ServerConfig::new(root.join("store")), default_loader()).unwrap();
    server.shutdown();
    match server.submit(&request(&trace)) {
        Err(SubmitError::Overloaded(reason)) => assert!(reason.contains("draining")),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert!(server.drain(Duration::from_secs(1)), "no jobs: drains now");
    let _ = std::fs::remove_dir_all(&root);
}

// ---- socket-level chaos: deadlines, slow clients, handler caps ----

struct NetFixture {
    server: Arc<Server>,
    socket: PathBuf,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl NetFixture {
    fn start(root: &Path, mut config: ServerConfig) -> NetFixture {
        config.store_root = root.join("store");
        let server = Server::new(config, default_loader()).unwrap();
        let socket = root.join("serve.sock");
        let thread = {
            let server = Arc::clone(&server);
            let socket = socket.clone();
            std::thread::spawn(move || mlc_serve::net::serve(server, &socket, "test"))
        };
        // Wait for the listener to bind.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "daemon never bound its socket");
            std::thread::sleep(Duration::from_millis(10));
        }
        NetFixture {
            server,
            socket,
            thread: Some(thread),
        }
    }

    fn connect(
        &self,
    ) -> (
        std::os::unix::net::UnixStream,
        BufReader<std::os::unix::net::UnixStream>,
    ) {
        let stream = std::os::unix::net::UnixStream::connect(&self.socket).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    fn stop(mut self) {
        self.server.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn read_event(reader: &mut BufReader<std::os::unix::net::UnixStream>) -> mlc_serve::Event {
    let mut line = String::new();
    assert!(
        reader.read_line(&mut line).unwrap() > 0,
        "connection closed"
    );
    mlc_serve::Event::parse(line.trim_end()).unwrap()
}

fn expect_hello(reader: &mut BufReader<std::os::unix::net::UnixStream>) {
    match read_event(reader) {
        mlc_serve::Event::Hello { .. } => {}
        other => panic!("expected hello, got {other:?}"),
    }
}

#[test]
fn deadline_answers_timeout_and_the_job_still_lands_in_cache() {
    let root = temp_root("deadline");
    let trace = write_trace(&root, 20_000);
    let mut config = ServerConfig::new(&root); // store_root overwritten by fixture
    config.row_delay = Duration::from_millis(400);
    let fixture = NetFixture::start(&root, config);

    let (mut stream, mut reader) = fixture.connect();
    expect_hello(&mut reader);
    let mut req = request(&trace);
    req.deadline_ms = 120; // two 400ms rows cannot finish in time
    let mut line = mlc_serve::Request::Submit(req).to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();

    let key = match read_event(&mut reader) {
        mlc_serve::Event::Accepted { key, .. } => key,
        other => panic!("expected accepted, got {other:?}"),
    };
    // Progress may or may not arrive first; the terminal answer within
    // the deadline window must be `timeout`.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match read_event(&mut reader) {
            mlc_serve::Event::Progress { .. } => {}
            mlc_serve::Event::Timeout { key: k } => {
                assert_eq!(k, key);
                break;
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(Instant::now() < deadline);
    }
    assert!(fixture.server.stats().jobs_timeout >= 1);

    // The deadline bounded the response, not the computation: the job
    // finishes and an idempotent refetch (same connection!) serves it.
    let fetch_deadline = Instant::now() + Duration::from_secs(60);
    let grid = loop {
        let mut line = mlc_serve::Request::Fetch { key: key.clone() }.to_line();
        line.push('\n');
        stream.write_all(line.as_bytes()).unwrap();
        match read_event(&mut reader) {
            mlc_serve::Event::Done { grid, .. } => break grid,
            mlc_serve::Event::Error {
                retryable: false, ..
            } => {
                // "no completed result" yet: keep polling.
                assert!(Instant::now() < fetch_deadline, "job never landed");
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("expected done/error, got {other:?}"),
        }
    };
    assert_eq!(grid.sizes.len(), 2);
    fixture.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn half_line_staller_is_reaped_at_the_io_timeout() {
    let root = temp_root("staller");
    let mut config = ServerConfig::new(&root);
    config.io_timeout = Some(Duration::from_millis(200));
    let fixture = NetFixture::start(&root, config);

    let (mut stream, mut reader) = fixture.connect();
    expect_hello(&mut reader);
    // Half a request, then silence: the daemon must reap us, not wait.
    stream.write_all(b"{\"op\":\"pi").unwrap();
    let mut rest = String::new();
    let start = Instant::now();
    let n = reader.read_line(&mut rest).unwrap();
    assert_eq!(n, 0, "server must close the stalled connection");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "reap must happen at the timeout, not eventually"
    );

    // The daemon itself is fine afterwards.
    let (mut stream, mut reader) = fixture.connect();
    expect_hello(&mut reader);
    let mut line = mlc_serve::Request::Ping.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    match read_event(&mut reader) {
        mlc_serve::Event::Pong { .. } => {}
        other => panic!("expected pong, got {other:?}"),
    }
    fixture.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn over_cap_connections_get_a_typed_overloaded_rejection() {
    let root = temp_root("overcap");
    let mut config = ServerConfig::new(&root);
    config.max_handlers = 1;
    config.io_timeout = Some(Duration::from_millis(500));
    let fixture = NetFixture::start(&root, config);

    // First connection occupies the only handler slot.
    let (_held_stream, mut held_reader) = fixture.connect();
    expect_hello(&mut held_reader);

    // Second connection must be rejected with `overloaded`, not queued.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_s, mut reader) = fixture.connect();
        match read_event(&mut reader) {
            mlc_serve::Event::Overloaded { reason } => {
                assert!(reason.contains("handler pool full"));
                break;
            }
            // The held handler may have been reaped already (its read
            // timed out); then we *became* the one handler. Retry until
            // we observe a rejection or give up.
            mlc_serve::Event::Hello { .. } => {
                assert!(
                    Instant::now() < deadline,
                    "never saw an overloaded rejection"
                );
            }
            other => panic!("expected overloaded or hello, got {other:?}"),
        }
    }
    assert!(fixture.server.stats().jobs_shed >= 1);
    fixture.stop();
    let _ = std::fs::remove_dir_all(&root);
}
