//! Result-cache properties: hit-at-any-level, disk→memory backfill,
//! LRU bounds, and self-verifying (self-healing) disk loads.
//!
//! These tests fabricate committed cache entries directly with the
//! journal writer — the on-disk artifact *is* a completed
//! `mlc-journal/1` file, so the cache must accept exactly what a sweep
//! would have produced and reject everything else.

use std::path::PathBuf;
use std::sync::Arc;

use mlc_obs::{JournalHeader, JournalRow, JournalWriter};
use mlc_serve::{grid_to_json, job_key, key_stem, DiskStore, MemoryLru, ResultCache, Tier};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlc_serve_cache_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn header(tag: u64) -> JournalHeader {
    JournalHeader {
        trace_digest: format!("fnv1a64:{tag:016x}"),
        engine: "onepass".into(),
        l1_bytes: 4096,
        warmup: 1000,
        ways: 1,
        sizes: vec![16384, 32768],
        cycles: vec![1, 4],
        trace_id: None,
    }
}

fn rows() -> Vec<JournalRow> {
    vec![
        JournalRow {
            row: 0,
            total: vec![100, 200],
            l2_local: 0.25,
            l2_global: f64::NAN,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
        JournalRow {
            row: 1,
            total: vec![90, 180],
            l2_local: 0.125,
            l2_global: 0.0625,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
    ]
}

/// Writes a complete committed entry for `header` and returns its key.
fn commit_entry(store: &DiskStore, header: &JournalHeader) -> String {
    let key = job_key(header);
    let path = store.cache_path(key_stem(&key).unwrap());
    let mut w = JournalWriter::create(&path, header).unwrap();
    for row in rows() {
        w.append_row(&row).unwrap();
    }
    key
}

#[test]
fn disk_hit_backfills_memory() {
    let root = temp_root("backfill");
    let cache = ResultCache::new(DiskStore::open(&root).unwrap(), 4);
    let key = commit_entry(cache.disk(), &header(1));

    assert_eq!(cache.mem_entries(), 0);
    let (grid, tier) = cache.lookup(&key).expect("committed entry must hit");
    assert_eq!(tier, Tier::Disk);
    assert_eq!(cache.mem_entries(), 1, "disk hit must backfill memory");
    // NaN miss ratios survive the journal round trip bit-exactly.
    assert!(grid.l2_local[0].to_bits() == 0.25f64.to_bits() && grid.l2_global[0].is_nan());
    assert_eq!(grid.total, vec![vec![100, 200], vec![90, 180]]);

    let (grid2, tier2) = cache.lookup(&key).unwrap();
    assert_eq!(tier2, Tier::Memory, "second lookup must hit the fast tier");
    assert_eq!(
        grid_to_json(&grid).to_string_compact(),
        grid_to_json(&grid2).to_string_compact(),
        "tiers must answer bit-identically"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn memory_tier_stays_within_its_bound() {
    let root = temp_root("lru");
    let cache = ResultCache::new(DiskStore::open(&root).unwrap(), 1);
    let key_a = commit_entry(cache.disk(), &header(0xa));
    let key_b = commit_entry(cache.disk(), &header(0xb));
    assert_ne!(key_a, key_b);
    assert_eq!(cache.disk_entries(), 2);

    assert_eq!(cache.lookup(&key_a).unwrap().1, Tier::Disk);
    assert_eq!(cache.lookup(&key_b).unwrap().1, Tier::Disk);
    assert_eq!(cache.mem_entries(), 1, "LRU must evict down to capacity");
    // A was evicted from memory but is still safe on disk.
    assert_eq!(cache.lookup(&key_a).unwrap().1, Tier::Disk);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupt_disk_entry_is_evicted_not_served() {
    let root = temp_root("corrupt");
    let cache = ResultCache::new(DiskStore::open(&root).unwrap(), 4);
    let key = commit_entry(cache.disk(), &header(2));
    let path = cache.disk().cache_path(key_stem(&key).unwrap());
    let mut bytes = std::fs::read(&path).unwrap();
    let idx = bytes.len() - 12;
    bytes[idx] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    assert!(
        cache.lookup(&key).is_none(),
        "corruption must not be served"
    );
    assert!(!path.exists(), "bad entry must self-evict");
    assert_eq!(cache.disk_entries(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn misfiled_entry_fails_key_verification() {
    let root = temp_root("misfiled");
    let cache = ResultCache::new(DiskStore::open(&root).unwrap(), 4);
    // A perfectly valid journal... filed under some other job's name.
    let h = header(3);
    let wrong_key = job_key(&header(4));
    let path = cache.disk().cache_path(key_stem(&wrong_key).unwrap());
    let mut w = JournalWriter::create(&path, &h).unwrap();
    for row in rows() {
        w.append_row(&row).unwrap();
    }
    drop(w);

    assert!(
        cache.lookup(&wrong_key).is_none(),
        "key re-derivation must reject a misfiled entry"
    );
    assert!(!path.exists());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn incomplete_entry_is_a_miss() {
    let root = temp_root("incomplete");
    let cache = ResultCache::new(DiskStore::open(&root).unwrap(), 4);
    let h = header(5);
    let key = job_key(&h);
    let path = cache.disk().cache_path(key_stem(&key).unwrap());
    let mut w = JournalWriter::create(&path, &h).unwrap();
    w.append_row(&rows()[0]).unwrap(); // row 1 missing
    drop(w);

    assert!(
        cache.lookup(&key).is_none(),
        "a committed entry must cover every grid row"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn lru_eviction_order_is_recency() {
    let grid = |tag: u64| {
        Arc::new(mlc_core::DesignGrid {
            sizes: vec![mlc_cache::ByteSize::kib(16)],
            cycles: vec![1],
            ways: 1,
            total: vec![vec![tag]],
            l2_local: vec![0.5],
            l2_global: vec![0.25],
            m_l1_global: 0.1,
            cpu_cycle_ns: 10.0,
        })
    };
    let mut lru = MemoryLru::new(3);
    for (k, t) in [("a", 1), ("b", 2), ("c", 3)] {
        lru.put(k, grid(t));
    }
    assert!(lru.get("a").is_some()); // a is now MRU; b is LRU
    lru.put("d", grid(4));
    assert!(lru.get("b").is_none(), "least-recently-used must go first");
    assert_eq!(lru.len(), 3);
}
