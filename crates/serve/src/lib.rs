//! Sweep-as-a-service for the `mlc` workspace.
//!
//! The paper's design-space grids (§3-§5) are expensive to compute and
//! perfectly reusable: the result is a pure function of the trace
//! *content* and the resolved sweep parameters. This crate turns that
//! purity into a daemon:
//!
//! * [`Server`] accepts `(machine description, trace, grid)` sweep jobs
//!   and answers repeat queries from a **content-addressed result
//!   cache** — the key ([`job_key`]) digests the trace content and
//!   every resolved parameter, so a hit is *provably* the same
//!   computation, bit-for-bit.
//! * The cache is **two-tier** in the sccache mold ([`ResultCache`]): a
//!   bounded in-memory LRU over an on-disk store ([`DiskStore`]) whose
//!   artifacts are the crash-consistent `mlc-journal/1` files the
//!   sweeps themselves write. A hit at any level answers immediately;
//!   disk hits are backfilled into memory.
//! * Identical in-flight submissions are **deduplicated**
//!   (single-flight): N clients asking for the same grid cost one
//!   simulation, and every subscriber receives the same bit-identical
//!   result.
//! * A `kill -9` at any instant is recoverable: on restart,
//!   [`Server::recover`] scans the spool and resumes interrupted
//!   sweeps from their journals, exactly like `mlc-sweep --resume`.
//! * The wire protocol ([`proto`], `mlc-serve/1`) is newline-delimited
//!   JSON over a Unix domain socket ([`net`], Unix-only; the library
//!   core is portable).
//! * The daemon **degrades, never hangs**: per-job deadlines and
//!   per-connection I/O timeouts, a bounded job table and handler pool
//!   with typed `overloaded` shedding, a byte-budgeted disk tier with
//!   LRU eviction ([`DiskStore`]), and a fault injector
//!   ([`FaultInjector`]) that drives the chaos tests proving all of it.
//! * Every request is **observable**: a trace id follows each
//!   submission through events, journal headers, and lifecycle spans
//!   ([`stats`], lock-free sharded recording), surfaced as a versioned
//!   `mlc-stats/1` telemetry document and a Perfetto-loadable span
//!   timeline.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod chaos;
pub mod key;
#[cfg(unix)]
pub mod net;
pub mod proto;
pub mod server;
pub mod stats;
pub mod store;

pub use cache::{MemoryLru, ResultCache, Tier};
pub use chaos::FaultInjector;
pub use key::{job_key, key_stem, KEY_SCHEMA};
pub use proto::{
    grid_from_json, grid_to_json, Event, Request, Source, Stats, SubmitRequest, PROTO, STATS_SCHEMA,
};
pub use server::{
    default_loader, JobDone, JobError, JobEvent, JobStatus, RecoveryReport, Server, ServerConfig,
    Submission, SubmitError, SubmitOutcome, TraceLoader,
};
pub use stats::{shard_of, ServerStats, STATS_SHARDS};
pub use store::{
    grid_from_journal, rows_from_journal, DiskStore, EvictReport, JobSpec, JOB_SPEC_SCHEMA,
};
