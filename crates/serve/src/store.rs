//! The on-disk tier: a content-addressed store of completed sweep
//! journals, plus the spool of in-flight ones.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/cache/<stem>.jsonl   completed, committed results
//! <root>/jobs/<stem>.jsonl    in-flight journals (crash-consistent)
//! <root>/jobs/<stem>.job      job spec sidecar (trace path)
//! ```
//!
//! `<stem>` is the 16-hex-digit body of the job key
//! ([`crate::key::key_stem`]). The cached artifact **is** the
//! `mlc-journal/1` file the sweep wrote: committing a result is a
//! single atomic `rename` from `jobs/` to `cache/`, followed by
//! directory fsyncs on both sides ([`mlc_obs::sync_dir_of`]) — the same
//! discipline the journal itself uses, so a crash at any instant leaves
//! either a resumable spool entry or a complete cache entry, never a
//! half-result.
//!
//! Loads are self-verifying: the key is re-derived from the journal
//! header stored inside the entry and must match the name it was filed
//! under, and the journal must cover every grid row. An entry failing
//! either check (or its integrity checksums) is evicted and treated as
//! a miss — the cache heals itself by recomputing.
//!
//! ## The byte budget
//!
//! A store opened with a budget ([`DiskStore::open_with`]) applies the
//! same size-budget + LRU discipline to its own artifacts that the
//! paper's hierarchy analysis applies to caches: every commit runs an
//! eviction pass that removes the **least-recently-used** committed
//! entries (by file mtime, which [`DiskStore::load`] bumps on every
//! hit — atime is unreliable under `relatime`/`noatime` mounts) until
//! the tier fits. Three classes of entry are never evicted: in-flight
//! jobs (they live in `jobs/`, which eviction never touches), the entry
//! the running commit just created, and entries pinned mid-read by a
//! concurrent load. A single artifact larger than the whole budget is
//! kept — the budget bounds the steady state, not one result.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use mlc_cache::ByteSize;
use mlc_core::{DesignGrid, GridRow};
use mlc_obs::json::JsonValue;
use mlc_obs::{read_journal, sync_dir_of, Journal};

use crate::chaos::FaultInjector;
use crate::key::{job_key, key_stem};

/// Schema tag of the job spec sidecar.
pub const JOB_SPEC_SCHEMA: &str = "mlc-serve-job/1";

/// What the spool must remember beyond the journal itself to restart a
/// job: the journal header pins *what* to compute; the spec pins where
/// the trace bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The content-addressed job key.
    pub key: String,
    /// Trace path on this machine.
    pub trace: PathBuf,
}

/// What one eviction pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictReport {
    /// Committed entries removed.
    pub evicted: u64,
    /// Bytes those entries occupied.
    pub evicted_bytes: u64,
}

/// Converts a journal's committed rows to sweep grid rows.
pub fn rows_from_journal(journal: &Journal) -> Vec<GridRow> {
    journal
        .rows
        .iter()
        .map(|r| GridRow {
            size_idx: r.row as usize,
            total: r.total.clone(),
            l2_local: r.l2_local,
            l2_global: r.l2_global,
            m_l1_global: r.m_l1_global,
            cpu_cycle_ns: r.cpu_cycle_ns,
        })
        .collect()
}

/// Assembles the design grid a (complete) journal describes.
pub fn grid_from_journal(journal: &Journal) -> DesignGrid {
    let sizes: Vec<ByteSize> = journal
        .header
        .sizes
        .iter()
        .map(|&s| ByteSize::new(s))
        .collect();
    DesignGrid::from_rows(
        &sizes,
        &journal.header.cycles,
        journal.header.ways as u32,
        &rows_from_journal(journal),
    )
}

/// The on-disk result store.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Byte budget for `cache/`; `None` disables eviction.
    budget: Option<u64>,
    chaos: Arc<FaultInjector>,
    /// Stems that must not be evicted right now (mid-read pins).
    pinned: Mutex<HashSet<String>>,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    orphans_removed: AtomicU64,
}

/// Unpins a stem when a disk read finishes (any exit path).
struct PinGuard<'a> {
    store: &'a DiskStore,
    stem: String,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.store
            .pinned
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&self.stem);
    }
}

impl DiskStore {
    /// Opens (creating if needed) an unbudgeted store rooted at `root`.
    /// A store is owned by one server process at a time.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the `cache/` and `jobs/` directories.
    pub fn open(root: &Path) -> io::Result<DiskStore> {
        DiskStore::open_with(root, None, FaultInjector::none())
    }

    /// Opens a store with a byte budget for the committed tier and a
    /// fault injector for chaos testing.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the `cache/` and `jobs/` directories.
    pub fn open_with(
        root: &Path,
        budget: Option<u64>,
        chaos: Arc<FaultInjector>,
    ) -> io::Result<DiskStore> {
        fs::create_dir_all(root.join("cache"))?;
        fs::create_dir_all(root.join("jobs"))?;
        Ok(DiskStore {
            root: root.to_path_buf(),
            budget,
            chaos,
            pinned: Mutex::new(HashSet::new()),
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            orphans_removed: AtomicU64::new(0),
        })
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The committed artifact path for a key stem.
    pub fn cache_path(&self, stem: &str) -> PathBuf {
        self.root.join("cache").join(format!("{stem}.jsonl"))
    }

    /// The in-flight journal path for a key stem.
    pub fn job_journal_path(&self, stem: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{stem}.jsonl"))
    }

    /// The job spec sidecar path for a key stem.
    pub fn job_spec_path(&self, stem: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{stem}.job"))
    }

    /// Durably writes the job spec sidecar (unique temp file + rename +
    /// directory fsync), so a restarted server knows which trace file
    /// the spooled journal belongs to.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, renaming, or syncing (including an
    /// injected chaos fault).
    pub fn write_job_spec(&self, stem: &str, spec: &JobSpec) -> io::Result<()> {
        if let Some(fault) = self.chaos.spec_write_fault() {
            return Err(fault);
        }
        let body = JsonValue::Object(vec![
            ("schema".into(), JOB_SPEC_SCHEMA.into()),
            ("key".into(), spec.key.as_str().into()),
            ("trace".into(), spec.trace.display().to_string().into()),
        ])
        .to_string_compact();
        let path = self.job_spec_path(stem);
        let tmp = self
            .root
            .join("jobs")
            .join(format!("{stem}.job.{}.tmp", std::process::id()));
        fs::write(&tmp, format!("{body}\n"))?;
        fs::rename(&tmp, &path)?;
        sync_dir_of(&path)
    }

    /// Reads a job spec sidecar back.
    ///
    /// # Errors
    ///
    /// A description of what is unreadable or malformed.
    pub fn read_job_spec(path: &Path) -> Result<JobSpec, String> {
        let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
        let v = JsonValue::parse(text.trim_end()).map_err(|e| e.to_string())?;
        if v.get("schema").and_then(JsonValue::as_str) != Some(JOB_SPEC_SCHEMA) {
            return Err(format!("not a {JOB_SPEC_SCHEMA} spec"));
        }
        let field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        Ok(JobSpec {
            key: field("key")?,
            trace: PathBuf::from(field("trace")?),
        })
    }

    /// Commits a completed job: atomically renames its journal from
    /// `jobs/` into `cache/`, fsyncs both directory entries, removes
    /// the spec sidecar, and runs an eviction pass if the tier now
    /// exceeds its budget. The just-committed entry is never evicted by
    /// its own commit.
    ///
    /// # Errors
    ///
    /// Any I/O error from the rename or the directory syncs (including
    /// an injected chaos fault); the journal stays in the spool,
    /// resumable.
    pub fn commit(&self, stem: &str) -> io::Result<EvictReport> {
        self.commit_entry(stem)?;
        Ok(self.enforce_budget(Some(stem)))
    }

    /// The durable half of [`DiskStore::commit`]: the rename, directory
    /// syncs, and spec-sidecar removal, *without* the eviction pass.
    /// Split out so the server can attribute commit latency and evict
    /// latency to separate lifecycle stages.
    ///
    /// # Errors
    ///
    /// As [`DiskStore::commit`].
    pub fn commit_entry(&self, stem: &str) -> io::Result<()> {
        if let Some(fault) = self.chaos.commit_fault() {
            return Err(fault);
        }
        let from = self.job_journal_path(stem);
        let to = self.cache_path(stem);
        fs::rename(&from, &to)?;
        sync_dir_of(&to)?;
        sync_dir_of(&from)?;
        let _ = fs::remove_file(self.job_spec_path(stem));
        Ok(())
    }

    /// Evicts least-recently-used committed entries until the tier fits
    /// its budget (no-op without one). `protect` is exempt, as are
    /// stems pinned by concurrent loads.
    pub fn enforce_budget(&self, protect: Option<&str>) -> EvictReport {
        let mut report = EvictReport::default();
        let Some(budget) = self.budget else {
            return report;
        };
        let mut entries = self.scan_cache_entries();
        let mut total: u64 = entries.iter().map(|e| e.1).sum();
        if total <= budget {
            return report;
        }
        // Oldest access first; stem breaks mtime ties deterministically.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let pinned = self
            .pinned
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        for (stem, size, _) in entries {
            if total <= budget {
                break;
            }
            if protect == Some(stem.as_str()) || pinned.contains(&stem) {
                continue;
            }
            if fs::remove_file(self.cache_path(&stem)).is_ok() {
                total = total.saturating_sub(size);
                report.evicted += 1;
                report.evicted_bytes += size;
            }
        }
        self.evictions.fetch_add(report.evicted, Ordering::Relaxed);
        self.evicted_bytes
            .fetch_add(report.evicted_bytes, Ordering::Relaxed);
        report
    }

    /// Every committed entry as `(stem, size, mtime)`.
    fn scan_cache_entries(&self) -> Vec<(String, u64, SystemTime)> {
        let Ok(dir) = fs::read_dir(self.root.join("cache")) else {
            return Vec::new();
        };
        dir.filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
            .filter_map(|e| {
                let stem = e.path().file_stem()?.to_str()?.to_owned();
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((stem, meta.len(), mtime))
            })
            .collect()
    }

    /// Bumps an entry's mtime to now, marking it most-recently-used.
    /// Best effort: a failed touch only weakens eviction ordering.
    fn touch(&self, path: &Path) {
        if let Ok(file) = fs::OpenOptions::new().append(true).open(path) {
            let _ = file.set_times(fs::FileTimes::new().set_modified(SystemTime::now()));
        }
    }

    /// Loads a committed entry, fully verified: integrity checksums
    /// (via the journal reader), the key re-derived from the stored
    /// header, and complete row coverage. A present-but-invalid entry
    /// is **evicted** and reported as a miss, so corruption degrades to
    /// a recomputation instead of a wrong answer. A hit is pinned for
    /// the duration of the read (eviction skips it) and touched as
    /// most-recently-used on the way out.
    pub fn load(&self, key: &str) -> Option<DesignGrid> {
        let stem = key_stem(key)?;
        self.chaos.load_delay();
        self.pinned
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(stem.to_owned());
        let _pin = PinGuard {
            store: self,
            stem: stem.to_owned(),
        };
        let path = self.cache_path(stem);
        if !path.exists() {
            return None;
        }
        match read_journal(&path) {
            Ok(journal)
                if job_key(&journal.header) == key
                    && !journal.torn_tail
                    && journal.missing_rows().is_empty() =>
            {
                self.touch(&path);
                Some(grid_from_journal(&journal))
            }
            _ => {
                // Self-healing: drop the bad entry; the next submission
                // recomputes and rewrites it.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Every spool entry with a readable spec and an existing journal,
    /// as `(stem, spec)`. Malformed specs and orphaned sidecars are
    /// removed — the spool self-heals rather than replaying garbage
    /// forever.
    ///
    /// # Errors
    ///
    /// Any I/O error from listing the spool directory.
    pub fn scan_jobs(&self) -> io::Result<Vec<(String, JobSpec)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("jobs"))? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "job") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            match Self::read_job_spec(&path) {
                Ok(spec)
                    if key_stem(&spec.key) == Some(stem.as_str())
                        && self.job_journal_path(&stem).exists() =>
                {
                    out.push((stem, spec));
                }
                _ => {
                    let _ = fs::remove_file(&path);
                    let _ = fs::remove_file(self.job_journal_path(&stem));
                    self.orphans_removed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Sweeps the spool for leftovers a `kill -9` can strand: temp
    /// files from interrupted spec writes, and journals whose spec
    /// sidecar is gone (unresumable — the trace path is lost). Returns
    /// how many files were removed. Run at startup, before any job
    /// starts, so it never races a live writer.
    pub fn janitor(&self) -> u64 {
        let mut removed = 0;
        let Ok(dir) = fs::read_dir(self.root.join("jobs")) else {
            return 0;
        };
        for entry in dir.filter_map(Result::ok) {
            let path = entry.path();
            let tmp = path.extension().is_some_and(|e| e == "tmp");
            let orphan_journal = path.extension().is_some_and(|e| e == "jsonl")
                && path
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .is_none_or(|stem| !self.job_spec_path(stem).exists());
            if (tmp || orphan_journal) && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        self.orphans_removed.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Removes a spool entry (journal + spec), e.g. after its trace
    /// digest stopped matching.
    pub fn discard_job(&self, stem: &str) {
        let _ = fs::remove_file(self.job_journal_path(stem));
        let _ = fs::remove_file(self.job_spec_path(stem));
    }

    /// Number of committed entries on disk.
    pub fn disk_entries(&self) -> usize {
        fs::read_dir(self.root.join("cache"))
            .map(|it| {
                it.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Bytes the committed tier currently occupies.
    pub fn disk_bytes(&self) -> u64 {
        self.scan_cache_entries().iter().map(|e| e.1).sum()
    }

    /// Lifetime eviction totals: `(entries, bytes)`.
    pub fn eviction_totals(&self) -> (u64, u64) {
        (
            self.evictions.load(Ordering::Relaxed),
            self.evicted_bytes.load(Ordering::Relaxed),
        )
    }

    /// Spool orphans removed by the janitor and spec-scan healing.
    pub fn orphans_removed(&self) -> u64 {
        self.orphans_removed.load(Ordering::Relaxed)
    }
}
