//! The on-disk tier: a content-addressed store of completed sweep
//! journals, plus the spool of in-flight ones.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/cache/<stem>.jsonl   completed, committed results
//! <root>/jobs/<stem>.jsonl    in-flight journals (crash-consistent)
//! <root>/jobs/<stem>.job      job spec sidecar (trace path)
//! ```
//!
//! `<stem>` is the 16-hex-digit body of the job key
//! ([`crate::key::key_stem`]). The cached artifact **is** the
//! `mlc-journal/1` file the sweep wrote: committing a result is a
//! single atomic `rename` from `jobs/` to `cache/`, followed by
//! directory fsyncs on both sides ([`mlc_obs::sync_dir_of`]) — the same
//! discipline the journal itself uses, so a crash at any instant leaves
//! either a resumable spool entry or a complete cache entry, never a
//! half-result.
//!
//! Loads are self-verifying: the key is re-derived from the journal
//! header stored inside the entry and must match the name it was filed
//! under, and the journal must cover every grid row. An entry failing
//! either check (or its integrity checksums) is evicted and treated as
//! a miss — the cache heals itself by recomputing.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use mlc_cache::ByteSize;
use mlc_core::{DesignGrid, GridRow};
use mlc_obs::json::JsonValue;
use mlc_obs::{read_journal, sync_dir_of, Journal};

use crate::key::{job_key, key_stem};

/// Schema tag of the job spec sidecar.
pub const JOB_SPEC_SCHEMA: &str = "mlc-serve-job/1";

/// What the spool must remember beyond the journal itself to restart a
/// job: the journal header pins *what* to compute; the spec pins where
/// the trace bytes live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The content-addressed job key.
    pub key: String,
    /// Trace path on this machine.
    pub trace: PathBuf,
}

/// Converts a journal's committed rows to sweep grid rows.
pub fn rows_from_journal(journal: &Journal) -> Vec<GridRow> {
    journal
        .rows
        .iter()
        .map(|r| GridRow {
            size_idx: r.row as usize,
            total: r.total.clone(),
            l2_local: r.l2_local,
            l2_global: r.l2_global,
            m_l1_global: r.m_l1_global,
            cpu_cycle_ns: r.cpu_cycle_ns,
        })
        .collect()
}

/// Assembles the design grid a (complete) journal describes.
pub fn grid_from_journal(journal: &Journal) -> DesignGrid {
    let sizes: Vec<ByteSize> = journal
        .header
        .sizes
        .iter()
        .map(|&s| ByteSize::new(s))
        .collect();
    DesignGrid::from_rows(
        &sizes,
        &journal.header.cycles,
        journal.header.ways as u32,
        &rows_from_journal(journal),
    )
}

/// The on-disk result store.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`. A store is
    /// owned by one server process at a time.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the `cache/` and `jobs/` directories.
    pub fn open(root: &Path) -> io::Result<DiskStore> {
        fs::create_dir_all(root.join("cache"))?;
        fs::create_dir_all(root.join("jobs"))?;
        Ok(DiskStore {
            root: root.to_path_buf(),
        })
    }

    /// The committed artifact path for a key stem.
    pub fn cache_path(&self, stem: &str) -> PathBuf {
        self.root.join("cache").join(format!("{stem}.jsonl"))
    }

    /// The in-flight journal path for a key stem.
    pub fn job_journal_path(&self, stem: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{stem}.jsonl"))
    }

    /// The job spec sidecar path for a key stem.
    pub fn job_spec_path(&self, stem: &str) -> PathBuf {
        self.root.join("jobs").join(format!("{stem}.job"))
    }

    /// Durably writes the job spec sidecar (unique temp file + rename +
    /// directory fsync), so a restarted server knows which trace file
    /// the spooled journal belongs to.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing, renaming, or syncing.
    pub fn write_job_spec(&self, stem: &str, spec: &JobSpec) -> io::Result<()> {
        let body = JsonValue::Object(vec![
            ("schema".into(), JOB_SPEC_SCHEMA.into()),
            ("key".into(), spec.key.as_str().into()),
            ("trace".into(), spec.trace.display().to_string().into()),
        ])
        .to_string_compact();
        let path = self.job_spec_path(stem);
        let tmp = self
            .root
            .join("jobs")
            .join(format!("{stem}.job.{}.tmp", std::process::id()));
        fs::write(&tmp, format!("{body}\n"))?;
        fs::rename(&tmp, &path)?;
        sync_dir_of(&path)
    }

    /// Reads a job spec sidecar back.
    ///
    /// # Errors
    ///
    /// A description of what is unreadable or malformed.
    pub fn read_job_spec(path: &Path) -> Result<JobSpec, String> {
        let text = fs::read_to_string(path).map_err(|e| e.to_string())?;
        let v = JsonValue::parse(text.trim_end()).map_err(|e| e.to_string())?;
        if v.get("schema").and_then(JsonValue::as_str) != Some(JOB_SPEC_SCHEMA) {
            return Err(format!("not a {JOB_SPEC_SCHEMA} spec"));
        }
        let field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        Ok(JobSpec {
            key: field("key")?,
            trace: PathBuf::from(field("trace")?),
        })
    }

    /// Commits a completed job: atomically renames its journal from
    /// `jobs/` into `cache/`, fsyncs both directory entries, and
    /// removes the spec sidecar.
    ///
    /// # Errors
    ///
    /// Any I/O error from the rename or the directory syncs.
    pub fn commit(&self, stem: &str) -> io::Result<()> {
        let from = self.job_journal_path(stem);
        let to = self.cache_path(stem);
        fs::rename(&from, &to)?;
        sync_dir_of(&to)?;
        sync_dir_of(&from)?;
        let _ = fs::remove_file(self.job_spec_path(stem));
        Ok(())
    }

    /// Loads a committed entry, fully verified: integrity checksums
    /// (via the journal reader), the key re-derived from the stored
    /// header, and complete row coverage. A present-but-invalid entry
    /// is **evicted** and reported as a miss, so corruption degrades to
    /// a recomputation instead of a wrong answer.
    pub fn load(&self, key: &str) -> Option<DesignGrid> {
        let stem = key_stem(key)?;
        let path = self.cache_path(stem);
        if !path.exists() {
            return None;
        }
        match read_journal(&path) {
            Ok(journal)
                if job_key(&journal.header) == key
                    && !journal.torn_tail
                    && journal.missing_rows().is_empty() =>
            {
                Some(grid_from_journal(&journal))
            }
            _ => {
                // Self-healing: drop the bad entry; the next submission
                // recomputes and rewrites it.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Every spool entry with a readable spec and an existing journal,
    /// as `(stem, spec)`. Malformed specs and orphaned sidecars are
    /// removed — the spool self-heals rather than replaying garbage
    /// forever.
    ///
    /// # Errors
    ///
    /// Any I/O error from listing the spool directory.
    pub fn scan_jobs(&self) -> io::Result<Vec<(String, JobSpec)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(self.root.join("jobs"))? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "job") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(str::to_owned) else {
                continue;
            };
            match Self::read_job_spec(&path) {
                Ok(spec)
                    if key_stem(&spec.key) == Some(stem.as_str())
                        && self.job_journal_path(&stem).exists() =>
                {
                    out.push((stem, spec));
                }
                _ => {
                    let _ = fs::remove_file(&path);
                    let _ = fs::remove_file(self.job_journal_path(&stem));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Removes a spool entry (journal + spec), e.g. after its trace
    /// digest stopped matching.
    pub fn discard_job(&self, stem: &str) {
        let _ = fs::remove_file(self.job_journal_path(stem));
        let _ = fs::remove_file(self.job_spec_path(stem));
    }

    /// Number of committed entries on disk.
    pub fn disk_entries(&self) -> usize {
        fs::read_dir(self.root.join("cache"))
            .map(|it| {
                it.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "jsonl"))
                    .count()
            })
            .unwrap_or(0)
    }
}
