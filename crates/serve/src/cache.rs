//! The two-tier result cache, in the sccache mold: a bounded in-memory
//! LRU in front of the on-disk store. A hit at any level answers
//! immediately; a disk hit is backfilled into the memory tier so the
//! next identical query is answered without touching the filesystem.

use std::sync::{Arc, Mutex};

use mlc_core::DesignGrid;

use crate::proto::Source;
use crate::store::DiskStore;

/// Which tier answered a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-memory LRU.
    Memory,
    /// The on-disk store (now backfilled into memory).
    Disk,
}

impl From<Tier> for Source {
    fn from(tier: Tier) -> Source {
        match tier {
            Tier::Memory => Source::Memory,
            Tier::Disk => Source::Disk,
        }
    }
}

/// A bounded most-recently-used-first cache of completed grids. Small
/// by design (entries are whole design grids); the disk tier below it
/// is the capacity store.
#[derive(Debug)]
pub struct MemoryLru {
    cap: usize,
    /// MRU at the front.
    entries: Vec<(String, Arc<DesignGrid>)>,
}

impl MemoryLru {
    /// An LRU holding at most `cap` grids (`cap = 0` disables the tier).
    pub fn new(cap: usize) -> MemoryLru {
        MemoryLru {
            cap,
            entries: Vec::new(),
        }
    }

    /// Looks up `key`, promoting a hit to most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<Arc<DesignGrid>> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let grid = entry.1.clone();
        self.entries.insert(0, entry);
        Some(grid)
    }

    /// Inserts (or refreshes) `key`, evicting from the LRU end to stay
    /// within capacity.
    pub fn put(&mut self, key: &str, grid: Arc<DesignGrid>) {
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == key) {
            self.entries.remove(idx);
        }
        if self.cap == 0 {
            return;
        }
        self.entries.insert(0, (key.to_owned(), grid));
        self.entries.truncate(self.cap);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The two-tier cache: memory LRU over the disk store.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<MemoryLru>,
    disk: DiskStore,
}

impl ResultCache {
    /// Builds the cache over `disk` with an in-memory tier of
    /// `mem_entries` grids.
    pub fn new(disk: DiskStore, mem_entries: usize) -> ResultCache {
        ResultCache {
            mem: Mutex::new(MemoryLru::new(mem_entries)),
            disk,
        }
    }

    /// The disk tier (for spool management and commits).
    pub fn disk(&self) -> &DiskStore {
        &self.disk
    }

    /// Hit-at-any-level lookup. A disk hit is backfilled into the
    /// memory tier before returning.
    pub fn lookup(&self, key: &str) -> Option<(Arc<DesignGrid>, Tier)> {
        if let Some(grid) = self.lookup_mem(key) {
            return Some((grid, Tier::Memory));
        }
        let grid = self.lookup_disk(key)?;
        Some((grid, Tier::Disk))
    }

    /// Memory-tier-only probe (an MRU promotion, no I/O). Split from
    /// [`ResultCache::lookup`] so the server can time and count each
    /// tier separately.
    pub fn lookup_mem(&self, key: &str) -> Option<Arc<DesignGrid>> {
        self.mem.lock().unwrap_or_else(|p| p.into_inner()).get(key)
    }

    /// Disk-tier probe; a hit is backfilled into the memory tier before
    /// returning.
    pub fn lookup_disk(&self, key: &str) -> Option<Arc<DesignGrid>> {
        let grid = Arc::new(self.disk.load(key)?);
        self.mem
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .put(key, grid.clone());
        Some(grid)
    }

    /// Records a freshly computed grid in the memory tier. (The disk
    /// tier is populated separately, by [`DiskStore::commit`]'s atomic
    /// journal rename.)
    pub fn insert(&self, key: &str, grid: Arc<DesignGrid>) {
        self.mem
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .put(key, grid);
    }

    /// Entries in the memory tier.
    pub fn mem_entries(&self) -> usize {
        self.mem.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Committed entries in the disk tier.
    pub fn disk_entries(&self) -> usize {
        self.disk.disk_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(tag: u64) -> Arc<DesignGrid> {
        Arc::new(DesignGrid {
            sizes: vec![mlc_cache::ByteSize::kib(16)],
            cycles: vec![1],
            ways: 1,
            total: vec![vec![tag]],
            l2_local: vec![0.5],
            l2_global: vec![0.25],
            m_l1_global: 0.1,
            cpu_cycle_ns: 10.0,
        })
    }

    #[test]
    fn lru_promotes_and_evicts_from_the_tail() {
        let mut lru = MemoryLru::new(2);
        lru.put("a", grid(1));
        lru.put("b", grid(2));
        // Touch "a" so "b" is the eviction candidate.
        assert!(lru.get("a").is_some());
        lru.put("c", grid(3));
        assert_eq!(lru.len(), 2);
        assert!(lru.get("b").is_none(), "LRU entry must be evicted");
        assert!(lru.get("a").is_some() && lru.get("c").is_some());
    }

    #[test]
    fn lru_refresh_does_not_duplicate() {
        let mut lru = MemoryLru::new(4);
        lru.put("a", grid(1));
        lru.put("a", grid(2));
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get("a").unwrap().total[0][0], 2);
    }

    #[test]
    fn zero_capacity_disables_the_tier() {
        let mut lru = MemoryLru::new(0);
        lru.put("a", grid(1));
        assert!(lru.is_empty());
        assert!(lru.get("a").is_none());
    }
}
