//! Fault injection for the serve stack: a [`FaultInjector`] shim the
//! store and worker layers consult before touching the real filesystem.
//!
//! Chaos testing a daemon is only useful when the faults are the ones
//! production actually sees: a disk that fills mid-journal (`ENOSPC`),
//! a commit rename that fails, a spec sidecar write that dies, a disk
//! read that crawls. The injector models each as a **bounded budget** —
//! "the next N journal appends fail" — so a test (or the `ci.sh` chaos
//! smoke, via `MLC_SERVE_CHAOS`) can arrange a transient outage and
//! then assert the system *heals*: typed, retryable errors while the
//! fault is armed, byte-identical results once it clears.
//!
//! The injector is shared (`Arc`) between the server, the store, and
//! the test driving them, so a live test can re-arm or clear faults
//! without restarting anything. A default-constructed injector is
//! inert: every check is one relaxed atomic load of zero.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared fault-injection plan with bounded fault budgets. See the
/// module docs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Remaining journal row appends that fail with `ENOSPC`.
    journal_enospc: AtomicU64,
    /// Remaining job-spec sidecar writes that fail with `ENOSPC`.
    spec_enospc: AtomicU64,
    /// Remaining cache-commit renames that fail (a torn rename: the
    /// journal stays in the spool, resumable).
    commit_fail: AtomicU64,
    /// Milliseconds every disk-tier load is delayed (slow disk).
    load_delay_ms: AtomicU64,
    /// Total faults fired so far, for assertions and stats.
    injected: AtomicU64,
}

impl FaultInjector {
    /// An inert injector (every budget zero).
    pub fn none() -> Arc<FaultInjector> {
        Arc::new(FaultInjector::default())
    }

    /// Parses a comma-separated fault spec, e.g.
    /// `journal-enospc=4,commit-fail=1,spec-enospc=2,load-delay-ms=50`
    /// (the `MLC_SERVE_CHAOS` format). An empty spec is inert.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<FaultInjector, String> {
        let injector = FaultInjector::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (name, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("chaos clause '{clause}' is not NAME=N"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("chaos clause '{clause}': '{value}' is not an integer"))?;
            match name.trim() {
                "journal-enospc" => injector.journal_enospc.store(n, Ordering::SeqCst),
                "spec-enospc" => injector.spec_enospc.store(n, Ordering::SeqCst),
                "commit-fail" => injector.commit_fail.store(n, Ordering::SeqCst),
                "load-delay-ms" => injector.load_delay_ms.store(n, Ordering::SeqCst),
                other => {
                    return Err(format!(
                        "unknown chaos fault '{other}' (choices: journal-enospc, \
                         spec-enospc, commit-fail, load-delay-ms)"
                    ))
                }
            }
        }
        Ok(injector)
    }

    /// Arms (or clears, with `n = 0`) the journal-append `ENOSPC` budget.
    pub fn arm_journal_enospc(&self, n: u64) {
        self.journal_enospc.store(n, Ordering::SeqCst);
    }

    /// Arms (or clears) the spec-write `ENOSPC` budget.
    pub fn arm_spec_enospc(&self, n: u64) {
        self.spec_enospc.store(n, Ordering::SeqCst);
    }

    /// Arms (or clears) the commit-rename failure budget.
    pub fn arm_commit_fail(&self, n: u64) {
        self.commit_fail.store(n, Ordering::SeqCst);
    }

    /// Sets the per-load disk delay in milliseconds (0 clears it).
    pub fn set_load_delay_ms(&self, ms: u64) {
        self.load_delay_ms.store(ms, Ordering::SeqCst);
    }

    /// Total faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Whether any fault budget or delay is currently armed.
    pub fn is_armed(&self) -> bool {
        self.journal_enospc.load(Ordering::SeqCst) > 0
            || self.spec_enospc.load(Ordering::SeqCst) > 0
            || self.commit_fail.load(Ordering::SeqCst) > 0
            || self.load_delay_ms.load(Ordering::SeqCst) > 0
    }

    /// Decrements `counter` if positive; reports whether a fault fired.
    fn take(&self, counter: &AtomicU64) -> bool {
        let fired = counter
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok();
        if fired {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fired
    }

    /// The fault (if armed) for the next journal row append.
    pub fn journal_append_fault(&self) -> Option<io::Error> {
        self.take(&self.journal_enospc).then(|| {
            io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device (journal append)",
            )
        })
    }

    /// The fault (if armed) for the next job-spec sidecar write.
    pub fn spec_write_fault(&self) -> Option<io::Error> {
        self.take(&self.spec_enospc).then(|| {
            io::Error::new(
                io::ErrorKind::StorageFull,
                "injected fault: no space left on device (job spec)",
            )
        })
    }

    /// The fault (if armed) for the next cache-commit rename.
    pub fn commit_fault(&self) -> Option<io::Error> {
        self.take(&self.commit_fail)
            .then(|| io::Error::other("injected fault: torn rename (commit interrupted)"))
    }

    /// Sleeps for the armed load delay, if any.
    pub fn load_delay(&self) {
        let ms = self.load_delay_ms.load(Ordering::SeqCst);
        if ms > 0 {
            self.injected.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_injector_is_inert() {
        let chaos = FaultInjector::default();
        assert!(!chaos.is_armed());
        assert!(chaos.journal_append_fault().is_none());
        assert!(chaos.spec_write_fault().is_none());
        assert!(chaos.commit_fault().is_none());
        assert_eq!(chaos.injected(), 0);
    }

    #[test]
    fn budgets_are_bounded_and_counted() {
        let chaos = FaultInjector::default();
        chaos.arm_journal_enospc(2);
        assert!(chaos.is_armed());
        let first = chaos.journal_append_fault().expect("armed fault fires");
        assert_eq!(first.kind(), io::ErrorKind::StorageFull);
        assert!(chaos.journal_append_fault().is_some());
        assert!(
            chaos.journal_append_fault().is_none(),
            "budget of 2 must fire exactly twice"
        );
        assert_eq!(chaos.injected(), 2);
        assert!(!chaos.is_armed());
    }

    #[test]
    fn parse_round_trips_every_fault() {
        let chaos = FaultInjector::parse("journal-enospc=1, spec-enospc=1,commit-fail=1").unwrap();
        assert!(chaos.journal_append_fault().is_some());
        assert!(chaos.spec_write_fault().is_some());
        assert!(chaos.commit_fault().is_some());
        assert!(FaultInjector::parse("").unwrap().injected() == 0);
        assert!(FaultInjector::parse("warp=1").is_err());
        assert!(FaultInjector::parse("journal-enospc").is_err());
        assert!(FaultInjector::parse("journal-enospc=x").is_err());
    }
}
