//! The sweep server: job resolution, single-flight deduplication, the
//! compute workers, and crash recovery.
//!
//! A submission resolves to a content-addressed key
//! ([`crate::key::job_key`]) and is answered by the first of:
//!
//! 1. the two-tier result cache (memory, then disk — hit at any level
//!    returns immediately);
//! 2. an identical **in-flight** job (single-flight: the submission
//!    subscribes to the running job's events instead of starting a
//!    second simulation);
//! 3. a fresh worker, which journals every completed grid row
//!    crash-consistently and commits the finished journal into the
//!    cache with one atomic rename.
//!
//! On startup, [`Server::recover`] scans the spool for journals an
//! earlier process left behind (a crash, a `kill -9`) and resumes them:
//! committed rows are replayed from the journal, only the missing rows
//! are simulated — the daemon-side equivalent of
//! `mlc-sweep --journal … --resume`.
//!
//! ## Overload behaviour
//!
//! The server is bounded everywhere a client could otherwise grow it:
//! the job table admits at most [`ServerConfig::max_jobs`] concurrent
//! sweeps (excess submissions get a typed [`SubmitError::Overloaded`],
//! never a queue), and every subscriber channel is a bounded
//! `sync_channel` — a stalled peer loses *events* (progress lines are
//! droppable; a dropped terminal event degrades to an idempotent
//! refetch), never pins server memory. Degradation is counted
//! ([`Server::stats`]) and mirrored into `mlc-obs` metrics.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mlc_cache::ByteSize;
use mlc_core::{DesignGrid, Explorer, GridRow, SweepEngine};
use mlc_obs::json::JsonValue;
use mlc_obs::span::{mint_trace_id, valid_trace_id, Stage};
use mlc_obs::{digest_records_hex, JournalHeader, JournalRow, JournalWriter, Metrics};
use mlc_sim::machine::BaseMachine;
use mlc_trace::TraceRecord;

use crate::cache::{ResultCache, Tier};
use crate::chaos::FaultInjector;
use crate::key::{job_key, key_stem};
use crate::proto::{Source, Stats, SubmitRequest, PROTO, STATS_SCHEMA};
use crate::stats::ServerStats;
use crate::store::{rows_from_journal, DiskStore, JobSpec};

/// How a server turns a trace path into records. Injectable so the
/// daemon binary can plug in quarantine-aware ingestion while the
/// library stays dependency-light. The second argument is the
/// requesting submission's trace context (empty when there is none,
/// e.g. a recovery reload of a pre-tracing journal) so ingestion
/// diagnostics — quarantine warnings and sidecar context — can name
/// the request that triggered them.
pub type TraceLoader = Box<dyn Fn(&Path, &str) -> Result<Vec<TraceRecord>, String> + Send + Sync>;

/// A loader for the workspace's native formats: `.din` Dinero text,
/// anything else the `mlc` binary trace layouts (strict ingestion, no
/// quarantine).
pub fn default_loader() -> TraceLoader {
    Box::new(|path: &Path, _trace_id: &str| {
        let result = if path.extension().is_some_and(|e| e == "din") {
            let file = File::open(path).map_err(|e| e.to_string())?;
            mlc_trace::din::read_din(BufReader::new(file))
        } else {
            let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
            mlc_trace::slice::read_binary_slice(&bytes)
        };
        result.map_err(|e| e.to_string())
    })
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root of the on-disk store (`cache/` + `jobs/` live under it).
    pub store_root: PathBuf,
    /// Capacity of the in-memory cache tier, in grids.
    pub mem_entries: usize,
    /// Artificial delay before committing each grid row — a test hook
    /// (`MLC_SERVE_ROW_DELAY_MS` in the daemon) that widens the window
    /// for deterministic kill-mid-sweep exercises.
    pub row_delay: Duration,
    /// Maximum concurrent jobs; further submissions are shed with
    /// [`SubmitError::Overloaded`].
    pub max_jobs: usize,
    /// Depth of each subscriber's bounded event queue.
    pub event_queue: usize,
    /// Byte budget for the committed disk tier (`None` = unbounded).
    pub disk_budget: Option<u64>,
    /// Per-connection socket read/write timeout (`None` = blocking
    /// forever; the default reaps stalled peers after 30 s).
    pub io_timeout: Option<Duration>,
    /// Maximum live connection handler threads; over-cap connects get a
    /// typed `overloaded` rejection and an immediate close.
    pub max_handlers: usize,
    /// Fault injector shared with the store (inert by default).
    pub chaos: Arc<FaultInjector>,
    /// Metrics sink for shed/timeout/eviction accounting (disabled by
    /// default — disabled metrics are free).
    pub metrics: Metrics,
    /// Spans retained verbatim for Perfetto export (0 = off, the
    /// default: histograms and counters still record, only the
    /// per-span timeline is skipped). The daemon turns this on for
    /// `--events-out`.
    pub span_retention: usize,
}

impl ServerConfig {
    /// Defaults: 8-entry memory tier, no row delay, 32-job table,
    /// 64-deep event queues, unbounded disk, 30 s I/O timeout, 64
    /// handlers, no chaos, no metrics, no span retention.
    pub fn new(store_root: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            store_root: store_root.into(),
            mem_entries: 8,
            row_delay: Duration::ZERO,
            max_jobs: 32,
            event_queue: 64,
            disk_budget: None,
            io_timeout: Some(Duration::from_secs(30)),
            max_handlers: 64,
            chaos: FaultInjector::none(),
            metrics: Metrics::disabled(),
            span_retention: 0,
        }
    }
}

/// Why a submission was rejected, split so connection layers can answer
/// with the right wire event (`error` vs `overloaded`) and clients can
/// decide whether a retry makes sense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The request itself is bad (engine, grid shape, unreadable
    /// trace). Retrying the same bytes cannot succeed.
    Invalid(String),
    /// Admission control shed the request; retry after backoff.
    Overloaded(String),
    /// Spooling the job failed (e.g. disk full). Transient: retryable.
    Io(String),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid(m) | SubmitError::Overloaded(m) | SubmitError::Io(m) => {
                f.write_str(m)
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl SubmitError {
    /// Whether an identical resubmission may succeed.
    pub fn retryable(&self) -> bool {
        !matches!(self, SubmitError::Invalid(_))
    }
}

/// Why a job failed, with the retry hint the wire protocol carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// What went wrong.
    pub message: String,
    /// Whether an identical resubmission may succeed (I/O faults are
    /// transient; simulation failures are deterministic).
    pub retryable: bool,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JobError {}

/// An event delivered to a submission's subscriber channel.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// One more grid row committed.
    Progress {
        /// Size index of the row that just completed.
        row: u64,
        /// Rows committed so far (journal-resumed rows included).
        rows_done: u64,
        /// Total rows in the job.
        rows_total: u64,
    },
    /// Terminal: the job finished (successfully or not).
    Done(JobDone),
}

/// The terminal state of a job, broadcast to every subscriber.
#[derive(Debug, Clone)]
pub struct JobDone {
    /// The job key.
    pub key: String,
    /// How the result was produced (always [`Source::Computed`] from a
    /// worker; connection layers rewrite it for coalesced followers).
    pub source: Source,
    /// Rows replayed from a crash-surviving journal.
    pub rows_resumed: u64,
    /// The completed grid, or why the job failed.
    pub result: Result<Arc<DesignGrid>, JobError>,
    /// Progress events *this subscriber's* queue dropped while the job
    /// ran — each waiter's terminal event is tagged with its own loss,
    /// so a lossy stream is visible to the client it was lossy *for*
    /// (0 from the done-latch: a late subscriber missed nothing it was
    /// ever sent).
    pub dropped: u64,
}

/// One subscriber channel plus its private loss count.
#[derive(Debug)]
struct Waiter {
    tx: SyncSender<JobEvent>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct JobState {
    rows_done: usize,
    done: Option<JobDone>,
    waiters: Vec<Waiter>,
}

/// One in-flight sweep: the single-flight rendezvous point.
///
/// Subscriber queues are **bounded** (`sync_channel`): a peer that
/// stops reading cannot grow server memory. Progress events are
/// best-effort — a full queue drops the event, not the waiter. The
/// terminal event prefers the waiter's queue but will drop the *waiter*
/// if even that is full: the client either sees its connection close
/// (and refetches — keys are content-addressed, refetch is free) or was
/// never going to read anyway.
#[derive(Debug)]
struct Job {
    key: String,
    /// The trace context of the submission that started (or resumed)
    /// this job. Followers that attach without a context of their own
    /// inherit it, so one id follows the work however many submissions
    /// coalesce onto it.
    trace_id: String,
    rows_total: usize,
    rows_resumed: usize,
    event_queue: usize,
    events_dropped: AtomicU64,
    state: Mutex<JobState>,
}

impl Job {
    fn new(
        key: String,
        trace_id: String,
        rows_total: usize,
        rows_resumed: usize,
        event_queue: usize,
    ) -> Job {
        Job {
            key,
            trace_id,
            rows_total,
            rows_resumed,
            event_queue: event_queue.max(1),
            events_dropped: AtomicU64::new(0),
            state: Mutex::new(JobState {
                rows_done: rows_resumed,
                ..JobState::default()
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JobState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Subscribes to this job's events. A subscriber that arrives after
    /// the job finished still receives the terminal [`JobEvent::Done`]
    /// immediately — the done-latch closes the finish/subscribe race.
    fn subscribe(&self) -> Receiver<JobEvent> {
        let (tx, rx) = sync_channel(self.event_queue);
        let mut st = self.lock();
        match &st.done {
            Some(done) => {
                let _ = tx.try_send(JobEvent::Done(done.clone()));
            }
            None => st.waiters.push(Waiter { tx, dropped: 0 }),
        }
        rx
    }

    fn progress(&self, row: u64) {
        let mut st = self.lock();
        st.rows_done += 1;
        let event = JobEvent::Progress {
            row,
            rows_done: st.rows_done as u64,
            rows_total: self.rows_total as u64,
        };
        let mut dropped = 0;
        st.waiters
            .retain_mut(|w| match w.tx.try_send(event.clone()) {
                Ok(()) => true,
                // Stalled reader: lose the progress line, keep the waiter —
                // and remember the loss, so this subscriber's terminal
                // event reports exactly how lossy its stream was.
                Err(TrySendError::Full(_)) => {
                    w.dropped += 1;
                    dropped += 1;
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            });
        if dropped > 0 {
            self.events_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    fn finish(&self, done: JobDone) {
        let mut st = self.lock();
        let mut dropped = 0;
        for w in st.waiters.drain(..) {
            // Tag each waiter's terminal event with its own loss count.
            let mut done = done.clone();
            done.dropped = w.dropped;
            if matches!(
                w.tx.try_send(JobEvent::Done(done)),
                Err(TrySendError::Full(_))
            ) {
                // A reader so far behind its queue is full of progress
                // it never drained: drop it. Closing the channel ends
                // its connection; a retry hits the cache.
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.events_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        st.done = Some(done);
    }
}

/// Where a key currently stands, for the `status` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Never seen (or evicted everywhere).
    Unknown,
    /// An in-flight job is computing it.
    Running {
        /// Rows committed so far.
        rows_done: u64,
        /// Total rows in the job.
        rows_total: u64,
        /// Subscriber events the job has dropped so far (stalled
        /// readers losing progress lines).
        events_dropped: u64,
    },
    /// Completed, resident in the memory tier.
    CachedMemory,
    /// Completed, on disk (now backfilled into memory).
    CachedDisk,
}

/// A live (non-cached) submission: the key plus the event stream to
/// follow until [`JobEvent::Done`].
#[derive(Debug)]
pub struct Submission {
    /// The content-addressed job key.
    pub key: String,
    /// Total rows in the job.
    pub rows_total: u64,
    /// Rows replayed from a crash-surviving journal.
    pub rows_resumed: u64,
    /// Whether this submission attached to an identical in-flight job
    /// instead of starting one (single-flight).
    pub coalesced: bool,
    /// The submission's trace context: the caller-supplied id, a
    /// server-minted one for bare requests, or — for a coalesced
    /// follower that supplied none — the id of the job it attached to.
    pub trace_id: String,
    /// The subscriber channel; ends with [`JobEvent::Done`].
    pub events: Receiver<JobEvent>,
}

/// What a submission resolved to.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// Answered from the result cache, no simulation started.
    Cached {
        /// The content-addressed job key.
        key: String,
        /// The cached grid (bit-identical to the run that computed it).
        grid: Arc<DesignGrid>,
        /// Which tier answered.
        tier: Tier,
        /// The request's trace context (caller-supplied or minted).
        trace_id: String,
    },
    /// A job is computing (or already was, for coalesced submissions).
    Running(Submission),
}

/// What [`Server::recover`] found in the spool.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Keys of resumed in-flight jobs.
    pub resumed: Vec<String>,
    /// Spool entries that could not be resumed (and what happened).
    pub errors: Vec<String>,
}

/// The sweep server. Shared across connection handlers via `Arc`.
pub struct Server {
    cache: ResultCache,
    jobs: Mutex<HashMap<String, Arc<Job>>>,
    loader: TraceLoader,
    row_delay: Duration,
    max_jobs: usize,
    event_queue: usize,
    io_timeout: Option<Duration>,
    max_handlers: usize,
    chaos: Arc<FaultInjector>,
    metrics: Metrics,
    telemetry: ServerStats,
    started: Instant,
    shutdown: AtomicBool,
    jobs_computed: AtomicU64,
    jobs_recovered: AtomicU64,
    jobs_coalesced: AtomicU64,
    jobs_shed: AtomicU64,
    jobs_timeout: AtomicU64,
    handlers_active: AtomicU64,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("cache", &self.cache)
            .field("row_delay", &self.row_delay)
            .field("max_jobs", &self.max_jobs)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Opens the store and builds a server.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating the store directories.
    pub fn new(config: ServerConfig, loader: TraceLoader) -> io::Result<Arc<Server>> {
        let disk = DiskStore::open_with(
            &config.store_root,
            config.disk_budget,
            Arc::clone(&config.chaos),
        )?;
        Ok(Arc::new(Server {
            cache: ResultCache::new(disk, config.mem_entries),
            jobs: Mutex::new(HashMap::new()),
            loader,
            row_delay: config.row_delay,
            max_jobs: config.max_jobs.max(1),
            event_queue: config.event_queue,
            io_timeout: config.io_timeout,
            max_handlers: config.max_handlers.max(1),
            chaos: config.chaos,
            metrics: config.metrics,
            telemetry: ServerStats::new(config.span_retention),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            jobs_computed: AtomicU64::new(0),
            jobs_recovered: AtomicU64::new(0),
            jobs_coalesced: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_timeout: AtomicU64::new(0),
            handlers_active: AtomicU64::new(0),
        }))
    }

    /// Requests shutdown: the accept loop drains and exits.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown was requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The metrics sink (disabled metrics are free).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The request-lifecycle telemetry recorder (span histograms, tier
    /// counters, retained spans). Connection layers record their own
    /// stages (accept, parse, reply) through it.
    pub fn telemetry(&self) -> &ServerStats {
        &self.telemetry
    }

    /// Per-connection socket read/write timeout.
    pub fn io_timeout(&self) -> Option<Duration> {
        self.io_timeout
    }

    /// Maximum live connection handler threads.
    pub fn max_handlers(&self) -> usize {
        self.max_handlers
    }

    /// The shared fault injector (inert unless a test or
    /// `MLC_SERVE_CHAOS` armed it).
    pub fn chaos(&self) -> &Arc<FaultInjector> {
        &self.chaos
    }

    /// Counts a shed request (admission control or handler cap).
    pub fn note_shed(&self) {
        self.jobs_shed.fetch_add(1, Ordering::Relaxed);
        self.metrics.add("serve.jobs_shed", 1);
    }

    /// Counts a response that hit its deadline.
    pub fn note_timeout(&self) {
        self.jobs_timeout.fetch_add(1, Ordering::Relaxed);
        self.metrics.add("serve.jobs_timeout", 1);
    }

    /// Accounts a connection handler starting; pair with
    /// [`Server::handler_finished`].
    pub fn handler_started(&self) {
        self.handlers_active.fetch_add(1, Ordering::SeqCst);
    }

    /// Accounts a connection handler exiting.
    pub fn handler_finished(&self) {
        self.handlers_active.fetch_sub(1, Ordering::SeqCst);
    }

    /// Connection handler threads currently live.
    pub fn handlers_active(&self) -> u64 {
        self.handlers_active.load(Ordering::SeqCst)
    }

    /// Waits for the job table to drain (jobs keep journalling and
    /// committing during the wait), up to `timeout`. Returns whether
    /// every job finished; journals of unfinished jobs stay in the
    /// spool, resumable on the next start. Call after [`Server::shutdown`]
    /// so no new jobs are admitted meanwhile.
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let in_flight = self.jobs.lock().unwrap_or_else(|p| p.into_inner()).len();
            if in_flight == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Current statistics (the `pong` payload).
    pub fn stats(&self) -> Stats {
        let disk = self.cache.disk();
        let (disk_evictions, disk_evicted_bytes) = disk.eviction_totals();
        Stats {
            jobs_computed: self.jobs_computed.load(Ordering::Relaxed),
            jobs_recovered: self.jobs_recovered.load(Ordering::Relaxed),
            jobs_coalesced: self.jobs_coalesced.load(Ordering::Relaxed),
            mem_entries: self.cache.mem_entries() as u64,
            disk_entries: self.cache.disk_entries() as u64,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            jobs_timeout: self.jobs_timeout.load(Ordering::Relaxed),
            disk_bytes: disk.disk_bytes(),
            disk_evictions,
            disk_evicted_bytes,
            handlers_active: self.handlers_active(),
            spool_orphans: disk.orphans_removed(),
        }
    }

    /// The full telemetry document a `stats` request returns: the
    /// versioned `mlc-stats/1` JSON doc described in DESIGN.md §18.
    /// `version` is the serving binary's version string.
    pub fn stats_doc(&self, version: &str) -> JsonValue {
        let stats = self.stats();
        let t = &self.telemetry;
        let (mem_hits, disk_hits, misses) = (t.mem_hits(), t.disk_hits(), t.misses());
        let lookups = mem_hits + disk_hits + misses;
        let ratio = |hits: u64| {
            if lookups == 0 {
                JsonValue::Null
            } else {
                JsonValue::F64(hits as f64 / lookups as f64)
            }
        };
        let quantile = |v: Option<u64>| v.map(JsonValue::U64).unwrap_or(JsonValue::Null);
        let stages = Stage::ALL.iter().map(|&stage| {
            let hist = t.stage_histogram(stage);
            let mut fields = match hist.to_json() {
                JsonValue::Object(fields) => fields,
                _ => unreachable!("Log2Histogram::to_json returns an object"),
            };
            fields.push(("p50".into(), quantile(hist.p50())));
            fields.push(("p90".into(), quantile(hist.p90())));
            fields.push(("p99".into(), quantile(hist.p99())));
            (stage.as_str().to_owned(), JsonValue::Object(fields))
        });
        JsonValue::object([
            ("schema".into(), STATS_SCHEMA.into()),
            ("proto".into(), PROTO.into()),
            ("version".into(), version.into()),
            ("uptime_ms".into(), stats.uptime_ms.into()),
            (
                "counters".into(),
                JsonValue::object([
                    ("jobs_computed".into(), stats.jobs_computed.into()),
                    ("jobs_recovered".into(), stats.jobs_recovered.into()),
                    ("jobs_coalesced".into(), stats.jobs_coalesced.into()),
                    ("jobs_shed".into(), stats.jobs_shed.into()),
                    ("jobs_timeout".into(), stats.jobs_timeout.into()),
                    ("jobs_inflight".into(), (t.inflight() as u64).into()),
                    ("handlers_active".into(), stats.handlers_active.into()),
                    ("spool_orphans".into(), stats.spool_orphans.into()),
                    ("events_dropped".into(), t.events_dropped().into()),
                ]),
            ),
            (
                "tiers".into(),
                JsonValue::object([
                    (
                        "memory".into(),
                        JsonValue::object([
                            ("hits".into(), mem_hits.into()),
                            ("entries".into(), stats.mem_entries.into()),
                        ]),
                    ),
                    (
                        "disk".into(),
                        JsonValue::object([
                            ("hits".into(), disk_hits.into()),
                            ("entries".into(), stats.disk_entries.into()),
                            ("bytes".into(), stats.disk_bytes.into()),
                            ("evictions".into(), stats.disk_evictions.into()),
                            ("evicted_bytes".into(), stats.disk_evicted_bytes.into()),
                        ]),
                    ),
                    ("misses".into(), misses.into()),
                ]),
            ),
            (
                "hit_ratio".into(),
                JsonValue::object([
                    ("memory".into(), ratio(mem_hits)),
                    ("disk".into(), ratio(disk_hits)),
                    ("overall".into(), ratio(mem_hits + disk_hits)),
                ]),
            ),
            ("stages".into(), JsonValue::Object(stages.collect())),
        ])
    }

    /// Cache-only lookup (the `fetch` request): never computes. Each
    /// tier probe is timed and counted like a submission's would be
    /// (fetches carry no trace context of their own).
    pub fn fetch(&self, key: &str) -> Option<(Arc<DesignGrid>, Tier)> {
        let t = Instant::now();
        if let Some(grid) = self.cache.lookup_mem(key) {
            self.telemetry.record_span(Stage::MemLookup, "", t);
            self.telemetry.note_mem_hit();
            return Some((grid, Tier::Memory));
        }
        self.telemetry.record_span(Stage::MemLookup, "", t);
        let t = Instant::now();
        let hit = self.cache.lookup_disk(key);
        self.telemetry.record_span(Stage::DiskLookup, "", t);
        match hit {
            Some(grid) => {
                self.telemetry.note_disk_hit();
                Some((grid, Tier::Disk))
            }
            None => {
                self.telemetry.note_miss();
                None
            }
        }
    }

    /// Where `key` currently stands. Deliberately *not* instrumented:
    /// status polls are control-plane traffic and would drown the tier
    /// counters a client is usually polling to watch.
    pub fn status(&self, key: &str) -> JobStatus {
        let job = self
            .jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(key)
            .cloned();
        if let Some(job) = job {
            let st = job.lock();
            if st.done.is_none() {
                return JobStatus::Running {
                    rows_done: st.rows_done as u64,
                    rows_total: job.rows_total as u64,
                    events_dropped: job.events_dropped.load(Ordering::Relaxed),
                };
            }
        }
        match self.cache.lookup(key) {
            Some((_, Tier::Memory)) => JobStatus::CachedMemory,
            Some((_, Tier::Disk)) => JobStatus::CachedDisk,
            None => JobStatus::Unknown,
        }
    }

    /// Resolves and answers a submission. See the module docs for the
    /// cache / single-flight / compute cascade.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for a bad request (engine, grid shape,
    /// unreadable trace), [`SubmitError::Overloaded`] when admission
    /// control sheds it, [`SubmitError::Io`] when spooling fails.
    pub fn submit(self: &Arc<Self>, req: &SubmitRequest) -> Result<SubmitOutcome, SubmitError> {
        let admission_start = Instant::now();
        // Trace context: adopt the caller's id or mint one for a bare
        // request, so every path below — events, journal header, spans
        // — has an id to stamp. (A coalesced follower that supplied no
        // id of its own adopts the running job's instead, further
        // down.)
        if !req.trace_id.is_empty() && !valid_trace_id(&req.trace_id) {
            return Err(SubmitError::Invalid(format!(
                "invalid trace id {:?}: want 1-64 chars of [A-Za-z0-9._:-]",
                req.trace_id
            )));
        }
        let minted = req.trace_id.is_empty();
        let trace_id = if minted {
            mint_trace_id()
        } else {
            req.trace_id.clone()
        };
        if self.shutdown_requested() {
            self.note_shed();
            return Err(SubmitError::Overloaded("server is draining".into()));
        }
        let engine: SweepEngine = req.engine.parse().map_err(SubmitError::Invalid)?;
        let ways = u32::try_from(req.ways)
            .map_err(|_| SubmitError::Invalid(format!("ways {} overflows u32", req.ways)))?;
        validate_grid(req.l1_bytes, &req.sizes, &req.cycles, ways).map_err(SubmitError::Invalid)?;
        self.telemetry
            .record_span(Stage::Admission, &trace_id, admission_start);

        // Key resolution: read the trace, digest it, derive the
        // content-addressed key. The trace id is identity metadata
        // only — [`crate::key::job_key`] never hashes it, so retries
        // and concurrent submissions with different ids converge on
        // one job.
        let key_start = Instant::now();
        let trace = (self.loader)(&req.trace, &trace_id)
            .map_err(|e| SubmitError::Invalid(format!("trace {}: {e}", req.trace.display())))?;
        let warmup = (trace.len() as f64 * req.warmup_frac.clamp(0.0, 0.95)) as u64;
        let header = JournalHeader {
            trace_digest: digest_records_hex(&trace),
            engine: engine.to_string(),
            l1_bytes: req.l1_bytes,
            warmup,
            ways: req.ways,
            sizes: req.sizes.clone(),
            cycles: req.cycles.clone(),
            trace_id: Some(trace_id.clone()),
        };
        let key = job_key(&header);
        let stem = key_stem(&key)
            .expect("server-derived keys are well-formed")
            .to_owned();
        let rows_total = header.sizes.len() as u64;
        self.telemetry.record_span(Stage::Key, &trace_id, key_start);

        // The jobs lock covers lookup-or-create end to end, so N
        // identical racing submissions resolve to one job (or to the
        // cache entry the winner just committed).
        let mut jobs = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = jobs.get(&key).cloned() {
            drop(jobs);
            self.jobs_coalesced.fetch_add(1, Ordering::Relaxed);
            // A follower that brought no context of its own follows
            // the job under the id that started it, so the whole
            // coalesced flight shares one trace.
            let trace_id = if minted {
                job.trace_id.clone()
            } else {
                trace_id
            };
            let events = job.subscribe();
            return Ok(SubmitOutcome::Running(Submission {
                key,
                rows_total,
                rows_resumed: job.rows_resumed as u64,
                coalesced: true,
                trace_id,
                events,
            }));
        }
        let t = Instant::now();
        let mem_hit = self.cache.lookup_mem(&key);
        self.telemetry.record_span(Stage::MemLookup, &trace_id, t);
        if let Some(grid) = mem_hit {
            self.telemetry.note_mem_hit();
            return Ok(SubmitOutcome::Cached {
                key,
                grid,
                tier: Tier::Memory,
                trace_id,
            });
        }
        let t = Instant::now();
        let disk_hit = self.cache.lookup_disk(&key);
        self.telemetry.record_span(Stage::DiskLookup, &trace_id, t);
        if let Some(grid) = disk_hit {
            self.telemetry.note_disk_hit();
            return Ok(SubmitOutcome::Cached {
                key,
                grid,
                tier: Tier::Disk,
                trace_id,
            });
        }
        self.telemetry.note_miss();

        // Admission control: a full job table sheds (cache hits and
        // coalesced attaches above cost nothing, so they always pass).
        if jobs.len() >= self.max_jobs {
            drop(jobs);
            self.note_shed();
            return Err(SubmitError::Overloaded(format!(
                "job table full ({} jobs in flight)",
                self.max_jobs
            )));
        }

        // Miss everywhere: spool and start a worker. Spec first, so a
        // journal on disk always has its trace-path sidecar.
        let disk = self.cache.disk();
        disk.write_job_spec(
            &stem,
            &JobSpec {
                key: key.clone(),
                trace: req.trace.clone(),
            },
        )
        .map_err(|e| SubmitError::Io(format!("spooling job spec failed: {e}")))?;
        let (writer, completed) = open_spool_journal(disk, &stem, &key, &header)
            .map_err(|e| SubmitError::Io(format!("spooling journal failed: {e}")))?;

        let job = Arc::new(Job::new(
            key.clone(),
            trace_id.clone(),
            header.sizes.len(),
            completed.len(),
            self.event_queue,
        ));
        jobs.insert(key.clone(), job.clone());
        drop(jobs);
        self.telemetry.job_started();
        let events = job.subscribe();
        let submission = Submission {
            key,
            rows_total,
            rows_resumed: job.rows_resumed as u64,
            coalesced: false,
            trace_id,
            events,
        };
        let server = Arc::clone(self);
        std::thread::spawn(move || {
            server.run_job(job, trace, header, engine, writer, completed);
        });
        Ok(SubmitOutcome::Running(submission))
    }

    /// Scans the spool for in-flight journals a previous process left
    /// behind and resumes each as a running job: committed rows are
    /// replayed, only the remainder is simulated. Entries whose journal
    /// is unreadable, whose spec disagrees with the journal, or whose
    /// trace content changed are discarded (reported in the returned
    /// report); a trace that is merely unreadable right now is kept for
    /// a later restart.
    pub fn recover(self: &Arc<Self>) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        // Janitor first: clear kill-9 leftovers (spec temp files,
        // journals whose sidecar is gone) before resuming anything.
        let swept = self.cache.disk().janitor();
        if swept > 0 {
            self.metrics.add("serve.spool_orphans", swept);
        }
        let entries = match self.cache.disk().scan_jobs() {
            Ok(entries) => entries,
            Err(e) => {
                report.errors.push(format!("spool scan failed: {e}"));
                return report;
            }
        };
        for (stem, spec) in entries {
            match self.recover_one(&stem, &spec) {
                Ok(key) => report.resumed.push(key),
                Err(e) => report.errors.push(format!("{stem}: {e}")),
            }
        }
        report
    }

    fn recover_one(self: &Arc<Self>, stem: &str, spec: &JobSpec) -> Result<String, String> {
        let disk = self.cache.disk();
        let path = disk.job_journal_path(stem);
        let (writer, journal) = match JournalWriter::resume(&path) {
            Ok(resumed) => resumed,
            Err(e) => {
                disk.discard_job(stem);
                return Err(format!("unreadable spool journal discarded: {e}"));
            }
        };
        let header = journal.header.clone();
        if job_key(&header) != spec.key {
            disk.discard_job(stem);
            return Err("spool journal does not match its spec; discarded".into());
        }
        let engine: SweepEngine = match header.engine.parse() {
            Ok(engine) => engine,
            Err(e) => {
                disk.discard_job(stem);
                return Err(e);
            }
        };
        // A resumed job keeps the trace context of the submission that
        // started it (journals predating tracing get a fresh id), so
        // the work stays attributable across the crash.
        let trace_id = header.trace_id.clone().unwrap_or_else(mint_trace_id);
        let trace = (self.loader)(&spec.trace, &trace_id)
            .map_err(|e| format!("trace reload failed (spool kept): {e}"))?;
        if digest_records_hex(&trace) != header.trace_digest {
            disk.discard_job(stem);
            return Err("trace content changed since the journal was written; discarded".into());
        }
        let completed = rows_from_journal(&journal);
        let job = Arc::new(Job::new(
            spec.key.clone(),
            trace_id,
            header.sizes.len(),
            completed.len(),
            self.event_queue,
        ));
        self.jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(spec.key.clone(), job.clone());
        self.jobs_recovered.fetch_add(1, Ordering::Relaxed);
        self.telemetry.job_started();
        let server = Arc::clone(self);
        let key = spec.key.clone();
        std::thread::spawn(move || {
            server.run_job(job, trace, header, engine, writer, completed);
        });
        Ok(key)
    }

    /// The worker body: simulates the missing rows (journalling each),
    /// commits the completed journal into the cache, and broadcasts the
    /// terminal event.
    fn run_job(
        self: Arc<Self>,
        job: Arc<Job>,
        trace: Vec<TraceRecord>,
        header: JournalHeader,
        engine: SweepEngine,
        writer: JournalWriter,
        completed: Vec<GridRow>,
    ) {
        let key = job.key.clone();
        let stem = key_stem(&key)
            .expect("server-derived keys are well-formed")
            .to_owned();
        let sizes: Vec<ByteSize> = header.sizes.iter().map(|&s| ByteSize::new(s)).collect();
        let ways = header.ways as u32;
        let mut base = BaseMachine::new();
        base.l1_total(ByteSize::new(header.l1_bytes));
        let explorer = Explorer::new(&trace, header.warmup as usize);
        let done_rows: BTreeSet<usize> = completed.iter().map(|r| r.size_idx).collect();
        let todo: Vec<usize> = (0..sizes.len())
            .filter(|i| !done_rows.contains(i))
            .collect();

        let journal = Mutex::new(writer);
        let sink_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let sink = |row: &GridRow| {
            let jrow = JournalRow {
                row: row.size_idx as u64,
                total: row.total.clone(),
                l2_local: row.l2_local,
                l2_global: row.l2_global,
                m_l1_global: row.m_l1_global,
                cpu_cycle_ns: row.cpu_cycle_ns,
            };
            let mut writer = journal.lock().unwrap_or_else(|p| p.into_inner());
            // Sleeping *inside* the journal lock serializes the delay:
            // rows land row_delay apart even though they compute in
            // parallel, so a test kill always finds a partial journal.
            if !self.row_delay.is_zero() {
                std::thread::sleep(self.row_delay);
            }
            // Chaos shim: an armed injector fails the append the way a
            // full disk would, before any bytes move.
            let result = match self.chaos.journal_append_fault() {
                Some(fault) => Err(fault),
                None => writer.append_row(&jrow),
            };
            match result {
                Err(e) => {
                    sink_error
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .get_or_insert(e);
                }
                // Only a journalled row is progress: the row is not
                // durable otherwise, and a resume would recompute it.
                Ok(()) => job.progress(row.size_idx as u64),
            }
        };
        let t = Instant::now();
        let results =
            explorer.try_l2_rows(engine, &base, &sizes, &header.cycles, ways, &todo, sink);
        self.telemetry
            .record_span(Stage::Simulate, &job.trace_id, t);
        // Close the journal before commit renames the file.
        drop(journal.into_inner().unwrap_or_else(|p| p.into_inner()));

        let mut rows = completed;
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(row) => rows.push(row),
                Err(f) => failures.push(f),
            }
        }
        let sink_error = sink_error.into_inner().unwrap_or_else(|p| p.into_inner());
        let result: Result<Arc<DesignGrid>, JobError> = if let Some(e) = sink_error {
            // Transient disk failure: the journal keeps whatever rows
            // landed before it, so a retry resumes, not restarts.
            Err(JobError {
                message: format!("journal write failed: {e}"),
                retryable: true,
            })
        } else if let Some(first) = failures.first() {
            // Simulation failures are deterministic: the same request
            // fails the same way. Not retryable.
            Err(JobError {
                message: format!(
                    "{} of {} grid row(s) failed; first: {first}",
                    failures.len(),
                    sizes.len()
                ),
                retryable: false,
            })
        } else {
            let grid = DesignGrid::from_rows(&sizes, &header.cycles, ways, &rows);
            // Commit and budget enforcement are separate stages: the
            // rename-and-sync is the durability cost every job pays,
            // eviction only bites when the disk tier is over budget.
            let t = Instant::now();
            let committed = self.cache.disk().commit_entry(&stem);
            self.telemetry
                .record_span(Stage::JournalCommit, &job.trace_id, t);
            match committed {
                Ok(()) => {
                    let t = Instant::now();
                    let evicted = self.cache.disk().enforce_budget(Some(&stem));
                    self.telemetry.record_span(Stage::Evict, &job.trace_id, t);
                    if evicted.evicted > 0 {
                        self.metrics.add("serve.disk_evictions", evicted.evicted);
                        self.metrics
                            .add("serve.disk_evicted_bytes", evicted.evicted_bytes);
                    }
                    let grid = Arc::new(grid);
                    self.cache.insert(&key, grid.clone());
                    self.jobs_computed.fetch_add(1, Ordering::Relaxed);
                    self.metrics.add("serve.jobs_computed", 1);
                    Ok(grid)
                }
                // A torn rename leaves the complete journal in the
                // spool; a retry commits it without recomputing.
                Err(e) => Err(JobError {
                    message: format!("cache commit failed: {e}"),
                    retryable: true,
                }),
            }
        };
        self.jobs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(&key);
        job.finish(JobDone {
            key,
            source: Source::Computed,
            rows_resumed: job.rows_resumed as u64,
            result,
            dropped: 0,
        });
        self.telemetry.job_finished();
        let dropped = job.events_dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            self.metrics.add("serve.events_dropped", dropped);
            self.telemetry.add_events_dropped(dropped);
        }
    }
}

/// Opens the spool journal for a new job: resumes a journal left by a
/// previously failed or interrupted identical job (verifying it really
/// is the same job), or creates a fresh one. Returns the writer and the
/// rows already committed.
fn open_spool_journal(
    disk: &DiskStore,
    stem: &str,
    key: &str,
    header: &JournalHeader,
) -> io::Result<(JournalWriter, Vec<GridRow>)> {
    let path = disk.job_journal_path(stem);
    if path.exists() {
        if let Ok((writer, journal)) = JournalWriter::resume(&path) {
            if job_key(&journal.header) == key {
                return Ok((writer, rows_from_journal(&journal)));
            }
        }
        // Unreadable or mismatched: start over.
        std::fs::remove_file(&path)?;
    }
    Ok((JournalWriter::create(&path, header)?, Vec::new()))
}

/// Builds every grid point's configuration up front, so an invalid
/// combination is a typed submission error instead of a panic inside
/// the parallel sweep.
fn validate_grid(l1_bytes: u64, sizes: &[u64], cycles: &[u64], ways: u32) -> Result<(), String> {
    if sizes.is_empty() || cycles.is_empty() {
        return Err("empty grid: need at least one size and one cycle time".into());
    }
    for &size in sizes {
        for &c in cycles {
            BaseMachine::new()
                .l1_total(ByteSize::new(l1_bytes))
                .l2_total(ByteSize::new(size))
                .l2_cycles(c)
                .l2_ways(ways)
                .build()
                .map_err(|e| {
                    format!(
                        "invalid grid point [L2 {}, {c} cycles]: {e}",
                        ByteSize::new(size)
                    )
                })?;
        }
    }
    Ok(())
}
