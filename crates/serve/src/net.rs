//! The Unix-domain-socket front end: accept loop and per-connection
//! protocol handlers.
//!
//! The listener runs non-blocking so the accept loop can notice a
//! shutdown request (set by any connection's `shutdown` op) within one
//! poll interval; each accepted connection gets its own handler thread,
//! **capped** at [`crate::ServerConfig::max_handlers`] — finished
//! handlers are reaped on every accept, and an over-cap connect is
//! answered with a typed `overloaded` event and closed instead of
//! spawning unboundedly.
//!
//! No peer can pin a handler forever: every connection carries the
//! server's I/O timeout on both directions, so a client that stops
//! reading (or trickles half a request and stalls) times out and is
//! reaped. A client that disconnects mid-job only drops its
//! subscription — the job itself keeps running and still commits to
//! the cache. Transient accept failures (`EMFILE` pressure and kin)
//! are counted and retried; they never take the daemon down.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mlc_obs::span::Stage;

use crate::proto::{Event, Request, Source, PROTO};
use crate::server::{JobEvent, JobStatus, Server, SubmitError, SubmitOutcome};

fn send(out: &mut impl Write, event: &Event) -> std::io::Result<()> {
    let mut line = event.to_line();
    line.push('\n');
    out.write_all(line.as_bytes())
}

/// A stalled or idle peer, as the socket timeout reports it.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Decrements the live-handler count however the handler exits.
struct HandlerGuard(Arc<Server>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        self.0.handler_finished();
    }
}

/// Binds `socket` (replacing any stale socket file) and serves until a
/// client requests shutdown. Joins the connection handlers before
/// returning and removes the socket file.
///
/// # Errors
///
/// Any I/O error from binding the socket. Accept-time errors are
/// retried, not returned — an overloaded daemon degrades, it does not
/// exit.
pub fn serve(server: Arc<Server>, socket: &Path, version: &str) -> std::io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !server.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                handles.retain(|h| !h.is_finished());
                if handles.len() >= server.max_handlers() {
                    server.note_shed();
                    server.metrics().add("serve.conns_rejected", 1);
                    reject_overloaded(&stream, server.max_handlers());
                    continue;
                }
                // Blocking I/O with a timeout on both directions: the
                // handler thread can stall for at most one timeout per
                // read or write, never forever. A socket we cannot
                // configure is dropped, not served untimed.
                if stream.set_nonblocking(false).is_err()
                    || stream.set_read_timeout(server.io_timeout()).is_err()
                    || stream.set_write_timeout(server.io_timeout()).is_err()
                {
                    server.metrics().add("serve.accept_errors", 1);
                    continue;
                }
                let server = Arc::clone(&server);
                let version = version.to_owned();
                handles.push(std::thread::spawn(move || {
                    server.handler_started();
                    let _guard = HandlerGuard(Arc::clone(&server));
                    // A vanished client is not a server error.
                    let _ = handle(server, stream, &version);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                // Out of fds, interrupted, peer gone before accept:
                // transient. Count it, back off, keep serving.
                server.metrics().add("serve.accept_errors", 1);
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    let _ = std::fs::remove_file(socket);
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Best-effort typed rejection for an over-cap connect: one
/// `overloaded` line (under a short write timeout, so a full socket
/// buffer cannot stall the accept loop), then close.
fn reject_overloaded(stream: &UnixStream, cap: usize) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut out = stream;
    let _ = send(
        &mut out,
        &Event::Overloaded {
            reason: format!("handler pool full ({cap} connections)"),
        },
    );
}

fn handle(server: Arc<Server>, stream: UnixStream, version: &str) -> std::io::Result<()> {
    let accept_start = Instant::now();
    let mut out = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    send(
        &mut out,
        &Event::Hello {
            proto: PROTO.into(),
            version: version.into(),
        },
    )?;
    // The accept span covers handler setup through the greeting — the
    // connection-establishment cost a client pays before its first
    // request can even be read.
    server
        .telemetry()
        .record_span(Stage::Accept, "", accept_start);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // clean EOF
            Ok(_) => {}
            // Idle or stalled peer: reap the connection. (A partial
            // line is abandoned with it — the peer failed to deliver a
            // whole request within the timeout.)
            Err(e) if is_timeout(&e) => return Ok(()),
            Err(e) => return Err(e),
        }
        if line.trim().is_empty() {
            continue;
        }
        let parse_start = Instant::now();
        let request = Request::parse(&line);
        server
            .telemetry()
            .record_span(Stage::Parse, "", parse_start);
        let request = match request {
            Ok(request) => request,
            Err(message) => {
                send(
                    &mut out,
                    &Event::Error {
                        message,
                        retryable: false,
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Ping => {
                let reply_start = Instant::now();
                send(
                    &mut out,
                    &Event::Pong {
                        proto: PROTO.into(),
                        version: version.into(),
                        uptime_ms: server.stats().uptime_ms,
                    },
                )?;
                server
                    .telemetry()
                    .record_span(Stage::Reply, "", reply_start);
            }
            Request::Stats => {
                let doc = server.stats_doc(version);
                let reply_start = Instant::now();
                send(&mut out, &Event::Stats { doc })?;
                server
                    .telemetry()
                    .record_span(Stage::Reply, "", reply_start);
            }
            Request::Shutdown => {
                server.shutdown();
                send(&mut out, &Event::Bye)?;
                return Ok(());
            }
            Request::Status { key } => {
                let (state, rows_done, rows_total, events_dropped) = match server.status(&key) {
                    JobStatus::Unknown => ("unknown", 0, 0, 0),
                    JobStatus::Running {
                        rows_done,
                        rows_total,
                        events_dropped,
                    } => ("running", rows_done, rows_total, events_dropped),
                    JobStatus::CachedMemory => ("cached-memory", 0, 0, 0),
                    JobStatus::CachedDisk => ("cached-disk", 0, 0, 0),
                };
                send(
                    &mut out,
                    &Event::Status {
                        key,
                        state: state.into(),
                        rows_done,
                        rows_total,
                        events_dropped,
                    },
                )?;
            }
            Request::Fetch { key } => match server.fetch(&key) {
                Some((grid, tier)) => {
                    let reply_start = Instant::now();
                    send(
                        &mut out,
                        &Event::Done {
                            key,
                            source: tier.into(),
                            rows_resumed: 0,
                            grid: (*grid).clone(),
                            trace_id: String::new(),
                            dropped: 0,
                        },
                    )?;
                    server
                        .telemetry()
                        .record_span(Stage::Reply, "", reply_start);
                }
                None => send(
                    &mut out,
                    &Event::Error {
                        message: format!("no completed result for {key}"),
                        retryable: false,
                    },
                )?,
            },
            Request::Submit(submit) => {
                let wait = submit.wait;
                let deadline = (submit.deadline_ms > 0)
                    .then(|| Instant::now() + Duration::from_millis(submit.deadline_ms));
                match server.submit(&submit) {
                    Err(SubmitError::Overloaded(reason)) => {
                        send(&mut out, &Event::Overloaded { reason })?;
                    }
                    Err(e) => {
                        let retryable = e.retryable();
                        send(
                            &mut out,
                            &Event::Error {
                                message: e.to_string(),
                                retryable,
                            },
                        )?;
                    }
                    Ok(SubmitOutcome::Cached {
                        key,
                        grid,
                        tier,
                        trace_id,
                    }) => {
                        send(
                            &mut out,
                            &Event::Accepted {
                                key: key.clone(),
                                rows_total: grid.sizes.len() as u64,
                                coalesced: false,
                                trace_id: trace_id.clone(),
                            },
                        )?;
                        let reply_start = Instant::now();
                        send(
                            &mut out,
                            &Event::Done {
                                key,
                                source: tier.into(),
                                rows_resumed: 0,
                                grid: (*grid).clone(),
                                trace_id: trace_id.clone(),
                                dropped: 0,
                            },
                        )?;
                        server
                            .telemetry()
                            .record_span(Stage::Reply, &trace_id, reply_start);
                    }
                    Ok(SubmitOutcome::Running(sub)) => {
                        send(
                            &mut out,
                            &Event::Accepted {
                                key: sub.key.clone(),
                                rows_total: sub.rows_total,
                                coalesced: sub.coalesced,
                                trace_id: sub.trace_id.clone(),
                            },
                        )?;
                        if !wait {
                            continue;
                        }
                        stream_job(&server, &mut out, &sub, deadline)?;
                    }
                }
            }
        }
    }
}

/// Streams a running job's events to the client until its terminal
/// event — or until the submission's deadline, which answers `timeout`
/// and returns the handler to the read loop. The deadline bounds the
/// *response*, not the computation: the job keeps running and commits
/// to the cache, so an idempotent resubmit picks the result up.
fn stream_job(
    server: &Arc<Server>,
    out: &mut impl Write,
    sub: &crate::server::Submission,
    deadline: Option<Instant>,
) -> std::io::Result<()> {
    loop {
        let event = match deadline {
            None => match sub.events.recv() {
                Ok(event) => event,
                Err(_) => return send_stream_lost(out),
            },
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    server.note_timeout();
                    return send(
                        out,
                        &Event::Timeout {
                            key: sub.key.clone(),
                        },
                    );
                }
                match sub.events.recv_timeout(deadline - now) {
                    Ok(event) => event,
                    Err(RecvTimeoutError::Timeout) => {
                        server.note_timeout();
                        return send(
                            out,
                            &Event::Timeout {
                                key: sub.key.clone(),
                            },
                        );
                    }
                    Err(RecvTimeoutError::Disconnected) => return send_stream_lost(out),
                }
            }
        };
        match event {
            JobEvent::Progress {
                row,
                rows_done,
                rows_total,
            } => send(
                out,
                &Event::Progress {
                    key: sub.key.clone(),
                    row,
                    rows_done,
                    rows_total,
                    trace_id: sub.trace_id.clone(),
                },
            )?,
            JobEvent::Done(done) => {
                return match done.result {
                    Ok(grid) => {
                        let reply_start = Instant::now();
                        let sent = send(
                            out,
                            &Event::Done {
                                key: sub.key.clone(),
                                // A follower's answer came from someone
                                // else's work.
                                source: if sub.coalesced {
                                    Source::Coalesced
                                } else {
                                    done.source
                                },
                                rows_resumed: done.rows_resumed,
                                grid: (*grid).clone(),
                                trace_id: sub.trace_id.clone(),
                                dropped: done.dropped,
                            },
                        );
                        server
                            .telemetry()
                            .record_span(Stage::Reply, &sub.trace_id, reply_start);
                        sent
                    }
                    Err(e) => send(
                        out,
                        &Event::Error {
                            message: e.message,
                            retryable: e.retryable,
                        },
                    ),
                };
            }
        }
    }
}

/// The job dropped this subscriber (its bounded queue overflowed while
/// the connection stalled). The result still lands in the cache —
/// answer with a retryable error so the client refetches.
fn send_stream_lost(out: &mut impl Write) -> std::io::Result<()> {
    send(
        out,
        &Event::Error {
            message: "event stream dropped under load; resubmit to fetch the result".into(),
            retryable: true,
        },
    )
}
