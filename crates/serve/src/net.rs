//! The Unix-domain-socket front end: accept loop and per-connection
//! protocol handlers.
//!
//! The listener runs non-blocking so the accept loop can notice a
//! shutdown request (set by any connection's `shutdown` op) within one
//! poll interval; each accepted connection gets its own thread. A
//! client that disconnects mid-job only drops its subscription — the
//! job itself keeps running and still commits to the cache.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use crate::proto::{Event, Request, Source, PROTO};
use crate::server::{JobEvent, JobStatus, Server, SubmitOutcome};

fn send(out: &mut impl Write, event: &Event) -> std::io::Result<()> {
    let mut line = event.to_line();
    line.push('\n');
    out.write_all(line.as_bytes())
}

/// Binds `socket` (replacing any stale socket file) and serves until a
/// client requests shutdown. Joins the connection handlers before
/// returning and removes the socket file.
///
/// # Errors
///
/// Any I/O error from binding or accepting.
pub fn serve(server: Arc<Server>, socket: &Path, version: &str) -> std::io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    listener.set_nonblocking(true)?;
    let mut handles = Vec::new();
    while !server.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let server = Arc::clone(&server);
                let version = version.to_owned();
                handles.push(std::thread::spawn(move || {
                    // A vanished client is not a server error.
                    let _ = handle(server, stream, &version);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                let _ = std::fs::remove_file(socket);
                return Err(e);
            }
        }
    }
    let _ = std::fs::remove_file(socket);
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

fn handle(server: Arc<Server>, stream: UnixStream, version: &str) -> std::io::Result<()> {
    let mut out = stream.try_clone()?;
    let reader = BufReader::new(stream);
    send(
        &mut out,
        &Event::Hello {
            proto: PROTO.into(),
            version: version.into(),
        },
    )?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(message) => {
                send(&mut out, &Event::Error { message })?;
                continue;
            }
        };
        match request {
            Request::Ping => send(
                &mut out,
                &Event::Pong {
                    proto: PROTO.into(),
                    version: version.into(),
                    stats: server.stats(),
                },
            )?,
            Request::Shutdown => {
                server.shutdown();
                send(&mut out, &Event::Bye)?;
                return Ok(());
            }
            Request::Status { key } => {
                let (state, rows_done, rows_total) = match server.status(&key) {
                    JobStatus::Unknown => ("unknown", 0, 0),
                    JobStatus::Running {
                        rows_done,
                        rows_total,
                    } => ("running", rows_done, rows_total),
                    JobStatus::CachedMemory => ("cached-memory", 0, 0),
                    JobStatus::CachedDisk => ("cached-disk", 0, 0),
                };
                send(
                    &mut out,
                    &Event::Status {
                        key,
                        state: state.into(),
                        rows_done,
                        rows_total,
                    },
                )?;
            }
            Request::Fetch { key } => match server.fetch(&key) {
                Some((grid, tier)) => send(
                    &mut out,
                    &Event::Done {
                        key,
                        source: tier.into(),
                        rows_resumed: 0,
                        grid: (*grid).clone(),
                    },
                )?,
                None => send(
                    &mut out,
                    &Event::Error {
                        message: format!("no completed result for {key}"),
                    },
                )?,
            },
            Request::Submit(submit) => {
                let wait = submit.wait;
                match server.submit(&submit) {
                    Err(message) => send(&mut out, &Event::Error { message })?,
                    Ok(SubmitOutcome::Cached { key, grid, tier }) => {
                        send(
                            &mut out,
                            &Event::Accepted {
                                key: key.clone(),
                                rows_total: grid.sizes.len() as u64,
                                coalesced: false,
                            },
                        )?;
                        send(
                            &mut out,
                            &Event::Done {
                                key,
                                source: tier.into(),
                                rows_resumed: 0,
                                grid: (*grid).clone(),
                            },
                        )?;
                    }
                    Ok(SubmitOutcome::Running(sub)) => {
                        send(
                            &mut out,
                            &Event::Accepted {
                                key: sub.key.clone(),
                                rows_total: sub.rows_total,
                                coalesced: sub.coalesced,
                            },
                        )?;
                        if !wait {
                            continue;
                        }
                        for event in sub.events.iter() {
                            match event {
                                JobEvent::Progress {
                                    row,
                                    rows_done,
                                    rows_total,
                                } => send(
                                    &mut out,
                                    &Event::Progress {
                                        key: sub.key.clone(),
                                        row,
                                        rows_done,
                                        rows_total,
                                    },
                                )?,
                                JobEvent::Done(done) => {
                                    match done.result {
                                        Ok(grid) => send(
                                            &mut out,
                                            &Event::Done {
                                                key: sub.key.clone(),
                                                // A follower's answer came
                                                // from someone else's work.
                                                source: if sub.coalesced {
                                                    Source::Coalesced
                                                } else {
                                                    done.source
                                                },
                                                rows_resumed: done.rows_resumed,
                                                grid: (*grid).clone(),
                                            },
                                        )?,
                                        Err(message) => send(&mut out, &Event::Error { message })?,
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}
