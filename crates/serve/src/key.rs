//! Content-addressed job identity.
//!
//! A sweep job is identified by what it *computes*, not by who asked:
//! the FNV-1a 64 digest of a canonical compact-JSON manifest of the
//! resolved sweep parameters — which are exactly the fields of the
//! journal header ([`mlc_obs::JournalHeader`]) the job writes. Two
//! submissions that resolve to the same trace content, engine, and grid
//! definition therefore collapse onto one key, one journal, and one
//! cache entry, regardless of trace *path* or flag spelling.
//!
//! The key doubles as the on-disk name (via [`key_stem`]) and is
//! self-verifying: a cache entry's key can be re-derived from the
//! journal header stored inside it, so a store can detect an entry
//! filed under the wrong name.

use mlc_obs::json::JsonValue;
use mlc_obs::{Fnv64, JournalHeader};

/// Schema tag hashed into every key manifest, so a future change to the
/// manifest layout changes every key instead of silently colliding.
pub const KEY_SCHEMA: &str = "mlc-serve-key/1";

/// Derives the content-addressed key (`fnv1a64:<16 hex>`) for the sweep
/// a journal header describes.
///
/// The manifest lists the hashed fields explicitly, so identity
/// metadata on the header — notably
/// [`trace_id`](JournalHeader::trace_id) — never reaches the key:
/// retries and concurrent submissions with different trace contexts
/// converge on one job and one cache entry.
pub fn job_key(header: &JournalHeader) -> String {
    let ints = |xs: &[u64]| JsonValue::Array(xs.iter().map(|&v| JsonValue::U64(v)).collect());
    let manifest = JsonValue::Object(vec![
        ("schema".into(), KEY_SCHEMA.into()),
        ("trace_digest".into(), header.trace_digest.as_str().into()),
        ("engine".into(), header.engine.as_str().into()),
        ("l1_bytes".into(), header.l1_bytes.into()),
        ("warmup".into(), header.warmup.into()),
        ("ways".into(), header.ways.into()),
        ("sizes".into(), ints(&header.sizes)),
        ("cycles".into(), ints(&header.cycles)),
    ])
    .to_string_compact();
    let mut h = Fnv64::new();
    h.write(manifest.as_bytes());
    format!("fnv1a64:{:016x}", h.finish())
}

/// The filename stem of a key: its 16 lowercase hex digits, with the
/// `fnv1a64:` prefix stripped. Returns `None` for anything that is not
/// a well-formed key — the guard that keeps wire-supplied keys from
/// ever becoming path traversal.
pub fn key_stem(key: &str) -> Option<&str> {
    let hex = key.strip_prefix("fnv1a64:")?;
    (hex.len() == 16
        && hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)))
    .then_some(hex)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            trace_digest: "fnv1a64:00000000deadbeef".into(),
            engine: "onepass".into(),
            l1_bytes: 4096,
            warmup: 1000,
            ways: 1,
            sizes: vec![16384, 32768],
            cycles: vec![1, 2],
            trace_id: None,
        }
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let base = job_key(&header());
        assert_eq!(base, job_key(&header()), "key must be deterministic");
        assert!(key_stem(&base).is_some(), "{base}");

        let mut h = header();
        h.warmup += 1;
        assert_ne!(job_key(&h), base, "warmup must be part of the identity");
        let mut h = header();
        h.engine = "exhaustive".into();
        assert_ne!(job_key(&h), base, "engine must be part of the identity");
        let mut h = header();
        h.sizes.push(65536);
        assert_ne!(job_key(&h), base, "grid must be part of the identity");
    }

    #[test]
    fn trace_id_never_reaches_the_key() {
        let base = job_key(&header());
        let mut h = header();
        h.trace_id = Some("trc-0123456789abcdef".into());
        assert_eq!(
            job_key(&h),
            base,
            "trace context is identity metadata, not computation identity"
        );
        let mut other = header();
        other.trace_id = Some("trc-fedcba9876543210".into());
        assert_eq!(job_key(&h), job_key(&other));
    }

    #[test]
    fn stem_rejects_malformed_keys() {
        assert_eq!(
            key_stem("fnv1a64:0123456789abcdef"),
            Some("0123456789abcdef")
        );
        assert!(key_stem("0123456789abcdef").is_none(), "prefix required");
        assert!(key_stem("fnv1a64:0123").is_none(), "length enforced");
        assert!(
            key_stem("fnv1a64:0123456789ABCDEF").is_none(),
            "lowercase only"
        );
        assert!(
            key_stem("fnv1a64:../../etc/passwd").is_none(),
            "no traversal"
        );
        assert!(key_stem("fnv1a64:0123456789abcdeg").is_none(), "hex only");
    }
}
