//! The `mlc-serve/1` wire protocol: newline-delimited JSON over a local
//! stream socket.
//!
//! Each line is one JSON object. Client→server lines carry an `"op"`
//! field ([`Request`]); server→client lines carry an `"event"` field
//! ([`Event`]). The server greets every connection with a `hello`
//! event, answers each request with one or more events, and a `submit`
//! with `"wait":true` streams `progress` events until the terminal
//! `done` (or `error`).
//!
//! Floats on the wire are carried as 16-hex-digit `f64` **bit
//! patterns** (`*_bits` fields), like the journal format: the document
//! model renders non-finite floats as `null`, and cache answers must be
//! bit-identical to the run that produced them — NaN miss ratios
//! included.

use std::path::PathBuf;

use mlc_cache::ByteSize;
use mlc_core::DesignGrid;
use mlc_obs::json::JsonValue;

/// The protocol name and revision sent in `hello` / `pong`.
pub const PROTO: &str = "mlc-serve/1";

/// The schema tag of the telemetry document a `stats` request returns.
pub const STATS_SCHEMA: &str = "mlc-stats/1";

fn f64_bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_bits_hex(s: &str) -> Option<f64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))
        .flatten()
}

fn u64s(xs: &[u64]) -> JsonValue {
    JsonValue::Array(xs.iter().map(|&v| JsonValue::U64(v)).collect())
}

fn str_field(v: &JsonValue, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{name}'"))
}

fn u64_field(v: &JsonValue, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{name}'"))
}

fn bool_field(v: &JsonValue, name: &str) -> Result<bool, String> {
    match v.get(name) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean field '{name}'")),
    }
}

/// An **optional** integer field: absent means `default`. Keeps the
/// protocol at `mlc-serve/1` while later revisions add fields — an old
/// peer's line simply reads as the default.
fn u64_field_or(v: &JsonValue, name: &str, default: u64) -> Result<u64, String> {
    match v.get(name) {
        None => Ok(default),
        Some(x) => x
            .as_u64()
            .ok_or_else(|| format!("non-integer field '{name}'")),
    }
}

/// An **optional** string field: absent means empty. Same additive-field
/// convention as [`u64_field_or`].
fn str_field_or(v: &JsonValue, name: &str) -> Result<String, String> {
    match v.get(name) {
        None => Ok(String::new()),
        Some(x) => x
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| format!("non-string field '{name}'")),
    }
}

/// An **optional** boolean field: absent means `default`.
fn bool_field_or(v: &JsonValue, name: &str, default: bool) -> Result<bool, String> {
    match v.get(name) {
        None => Ok(default),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("non-boolean field '{name}'")),
    }
}

fn ints_field(v: &JsonValue, name: &str) -> Result<Vec<u64>, String> {
    v.get(name)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array field '{name}'"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("non-integer in '{name}'")))
        .collect()
}

fn bits_field(v: &JsonValue, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(JsonValue::as_str)
        .and_then(f64_from_bits_hex)
        .ok_or_else(|| format!("missing or malformed field '{name}'"))
}

fn bits_array_field(v: &JsonValue, name: &str) -> Result<Vec<f64>, String> {
    v.get(name)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing or non-array field '{name}'"))?
        .iter()
        .map(|x| {
            x.as_str()
                .and_then(f64_from_bits_hex)
                .ok_or_else(|| format!("malformed bit pattern in '{name}'"))
        })
        .collect()
}

/// Appends a `trace_id` field when the context is non-empty — the
/// additive-field convention: context-free lines keep the revision-1
/// shape byte-for-byte.
fn push_trace_id(obj: &mut Vec<(String, JsonValue)>, trace_id: &str) {
    if !trace_id.is_empty() {
        obj.push(("trace_id".into(), trace_id.into()));
    }
}

/// A sweep submission: the unresolved client-side parameters. The
/// server resolves them (trace content digest, absolute warm-up count)
/// into a journal header, whose content-addressed key identifies the
/// job.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Trace path, resolved on the *server's* filesystem.
    pub trace: PathBuf,
    /// Combined split-L1 size in bytes.
    pub l1_bytes: u64,
    /// L2 associativity of every grid point.
    pub ways: u64,
    /// Swept L2 sizes in bytes, ascending.
    pub sizes: Vec<u64>,
    /// Swept L2 cycle times in CPU cycles, ascending.
    pub cycles: Vec<u64>,
    /// Sweep engine name (`onepass` / `exhaustive`).
    pub engine: String,
    /// Fraction of the trace excluded from statistics.
    pub warmup_frac: f64,
    /// Whether the connection streams progress until `done`.
    pub wait: bool,
    /// Wall-clock deadline for the *response*, in milliseconds; 0 means
    /// none. When it expires the server answers `timeout` and releases
    /// the connection — the job itself keeps running and commits to the
    /// cache, so an idempotent resubmit picks the result up.
    pub deadline_ms: u64,
    /// Request-lifecycle trace context (`mlc_obs::span`), minted by the
    /// client; empty means "none supplied" and the server mints one.
    /// Identity metadata only — it never participates in the job key,
    /// so retries and coalesced submissions with different ids still
    /// converge on one job.
    pub trace_id: String,
}

/// One client→server line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a sweep (answered from cache when possible).
    Submit(SubmitRequest),
    /// Ask where a key currently stands.
    Status {
        /// The content-addressed job key.
        key: String,
    },
    /// Fetch a completed grid from the cache, without computing.
    Fetch {
        /// The content-addressed job key.
        key: String,
    },
    /// Thin liveness probe (protocol revision and uptime only; see
    /// [`Request::Stats`] for counters).
    Ping,
    /// Ask for the full `mlc-stats/1` telemetry document.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Renders the request as one compact JSON line (no newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Submit(s) => {
                let mut obj = vec![
                    ("op".into(), "submit".into()),
                    ("trace".into(), s.trace.display().to_string().into()),
                    ("l1_bytes".into(), s.l1_bytes.into()),
                    ("ways".into(), s.ways.into()),
                    ("sizes".into(), u64s(&s.sizes)),
                    ("cycles".into(), u64s(&s.cycles)),
                    ("engine".into(), s.engine.as_str().into()),
                    (
                        "warmup_frac_bits".into(),
                        f64_bits_hex(s.warmup_frac).into(),
                    ),
                    ("wait".into(), s.wait.into()),
                    ("deadline_ms".into(), s.deadline_ms.into()),
                ];
                if !s.trace_id.is_empty() {
                    obj.push(("trace_id".into(), s.trace_id.as_str().into()));
                }
                obj
            }
            Request::Status { key } => vec![
                ("op".into(), "status".into()),
                ("key".into(), key.as_str().into()),
            ],
            Request::Fetch { key } => vec![
                ("op".into(), "fetch".into()),
                ("key".into(), key.as_str().into()),
            ],
            Request::Ping => vec![("op".into(), "ping".into())],
            Request::Stats => vec![("op".into(), "stats".into())],
            Request::Shutdown => vec![("op".into(), "shutdown".into())],
        };
        JsonValue::Object(obj).to_string_compact()
    }

    /// Parses one client line.
    ///
    /// # Errors
    ///
    /// Returns a description of what is malformed or missing.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
        match v.get("op").and_then(JsonValue::as_str) {
            Some("submit") => Ok(Request::Submit(SubmitRequest {
                trace: PathBuf::from(str_field(&v, "trace")?),
                l1_bytes: u64_field(&v, "l1_bytes")?,
                ways: u64_field(&v, "ways")?,
                sizes: ints_field(&v, "sizes")?,
                cycles: ints_field(&v, "cycles")?,
                engine: str_field(&v, "engine")?,
                warmup_frac: bits_field(&v, "warmup_frac_bits")?,
                wait: bool_field(&v, "wait")?,
                deadline_ms: u64_field_or(&v, "deadline_ms", 0)?,
                trace_id: str_field_or(&v, "trace_id")?,
            })),
            Some("status") => Ok(Request::Status {
                key: str_field(&v, "key")?,
            }),
            Some("fetch") => Ok(Request::Fetch {
                key: str_field(&v, "key")?,
            }),
            Some("ping") => Ok(Request::Ping),
            Some("stats") => Ok(Request::Stats),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown op '{other}'")),
            None => Err("missing or non-string field 'op'".into()),
        }
    }
}

/// Which cache tier (or computation) answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Freshly simulated by this submission.
    Computed,
    /// In-memory LRU hit.
    Memory,
    /// On-disk store hit (backfilled into memory).
    Disk,
    /// Single-flight: an identical in-flight job answered for us.
    Coalesced,
}

impl Source {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Computed => "computed",
            Source::Memory => "memory",
            Source::Disk => "disk",
            Source::Coalesced => "coalesced",
        }
    }

    /// Parses the wire spelling.
    pub fn from_str_opt(s: &str) -> Option<Source> {
        match s {
            "computed" => Some(Source::Computed),
            "memory" => Some(Source::Memory),
            "disk" => Some(Source::Disk),
            "coalesced" => Some(Source::Coalesced),
            _ => None,
        }
    }
}

/// Internal server counters: the raw snapshot behind the daemon's
/// startup banner and the `counters`/`tiers` sections of the
/// `mlc-stats/1` document. Since the `stats` request landed, `pong`
/// carries only liveness (proto, version, uptime) — these no longer
/// ride the wire individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Grids simulated to completion by this server process.
    pub jobs_computed: u64,
    /// In-flight journals resumed from the spool at startup.
    pub jobs_recovered: u64,
    /// Submissions answered by attaching to an identical in-flight job.
    pub jobs_coalesced: u64,
    /// Entries currently in the in-memory tier.
    pub mem_entries: u64,
    /// Completed entries in the on-disk tier.
    pub disk_entries: u64,
    /// Milliseconds this server process has been up.
    pub uptime_ms: u64,
    /// Submissions rejected by admission control (full job table or
    /// handler pool).
    pub jobs_shed: u64,
    /// Responses that hit their `deadline_ms` before the job finished.
    pub jobs_timeout: u64,
    /// Bytes the committed disk tier currently occupies.
    pub disk_bytes: u64,
    /// Committed entries evicted to hold the disk-tier byte budget.
    pub disk_evictions: u64,
    /// Bytes reclaimed by those evictions.
    pub disk_evicted_bytes: u64,
    /// Connection handler threads currently live.
    pub handlers_active: u64,
    /// Orphaned spool files removed by the startup janitor.
    pub spool_orphans: u64,
}

/// One server→client line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Greeting sent on connect.
    Hello {
        /// Protocol revision ([`PROTO`]).
        proto: String,
        /// Server version.
        version: String,
    },
    /// A submission was resolved to a key and will be answered.
    Accepted {
        /// The content-addressed job key.
        key: String,
        /// Grid rows (one per swept size) in the job.
        rows_total: u64,
        /// Whether an identical in-flight job is answering.
        coalesced: bool,
        /// The request's trace context (empty if none).
        trace_id: String,
    },
    /// One more grid row committed.
    Progress {
        /// The job key.
        key: String,
        /// Size index of the row that just completed.
        row: u64,
        /// Rows committed so far (including journal-resumed rows).
        rows_done: u64,
        /// Total rows in the job.
        rows_total: u64,
        /// The request's trace context (empty if none).
        trace_id: String,
    },
    /// Terminal success: the completed grid.
    Done {
        /// The job key.
        key: String,
        /// Who answered: cache tier, fresh computation, or coalescing.
        source: Source,
        /// Rows replayed from a crash-surviving journal (0 unless the
        /// job resumed an interrupted sweep).
        rows_resumed: u64,
        /// The completed design grid, floats bit-exact.
        grid: DesignGrid,
        /// The request's trace context (empty if none).
        trace_id: String,
        /// Progress events this subscriber's queue dropped under load
        /// (0 for a lossless stream). The grid itself is always whole —
        /// only progress notifications shed.
        dropped: u64,
    },
    /// Answer to a `status` request.
    Status {
        /// The job key asked about.
        key: String,
        /// `unknown`, `running`, `cached-memory`, or `cached-disk`.
        state: String,
        /// Rows committed so far (meaningful for `running`).
        rows_done: u64,
        /// Total rows (0 when unknown).
        rows_total: u64,
        /// Subscriber events the job has dropped so far (meaningful for
        /// `running`; 0 otherwise).
        events_dropped: u64,
    },
    /// Answer to a `ping`: thin liveness only. Counters moved to the
    /// `stats` request's `mlc-stats/1` document.
    Pong {
        /// Protocol revision ([`PROTO`]).
        proto: String,
        /// Server version.
        version: String,
        /// Milliseconds this server process has been up.
        uptime_ms: u64,
    },
    /// Answer to a `stats` request: the versioned `mlc-stats/1`
    /// telemetry document, carried verbatim as JSON.
    Stats {
        /// The `mlc-stats/1` document.
        doc: JsonValue,
    },
    /// Terminal failure for the preceding request.
    Error {
        /// What went wrong.
        message: String,
        /// Whether an identical resubmission may succeed (transient
        /// fault: disk full, injected chaos, timeout races). Safe to
        /// act on because job keys are content-addressed — a retry is
        /// the *same* job, answered from cache if it finished.
        retryable: bool,
    },
    /// Terminal: the submission's `deadline_ms` expired before the job
    /// finished. The job keeps running server-side; resubmit to pick up
    /// the (cached) result.
    Timeout {
        /// The job key that timed out.
        key: String,
    },
    /// Terminal: admission control shed this request (job table or
    /// handler pool at capacity). Retry after backoff.
    Overloaded {
        /// Which limit was hit.
        reason: String,
    },
    /// Acknowledges `shutdown`; the connection closes after this.
    Bye,
}

impl Event {
    /// Renders the event as one compact JSON line (no newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Event::Hello { proto, version } => vec![
                ("event".into(), "hello".into()),
                ("proto".into(), proto.as_str().into()),
                ("version".into(), version.as_str().into()),
            ],
            Event::Accepted {
                key,
                rows_total,
                coalesced,
                trace_id,
            } => {
                let mut obj = vec![
                    ("event".into(), "accepted".into()),
                    ("key".into(), key.as_str().into()),
                    ("rows_total".into(), (*rows_total).into()),
                    ("coalesced".into(), (*coalesced).into()),
                ];
                push_trace_id(&mut obj, trace_id);
                obj
            }
            Event::Progress {
                key,
                row,
                rows_done,
                rows_total,
                trace_id,
            } => {
                let mut obj = vec![
                    ("event".into(), "progress".into()),
                    ("key".into(), key.as_str().into()),
                    ("row".into(), (*row).into()),
                    ("rows_done".into(), (*rows_done).into()),
                    ("rows_total".into(), (*rows_total).into()),
                ];
                push_trace_id(&mut obj, trace_id);
                obj
            }
            Event::Done {
                key,
                source,
                rows_resumed,
                grid,
                trace_id,
                dropped,
            } => {
                let mut obj = vec![
                    ("event".into(), "done".into()),
                    ("key".into(), key.as_str().into()),
                    ("source".into(), source.as_str().into()),
                    ("rows_resumed".into(), (*rows_resumed).into()),
                    ("grid".into(), grid_to_json(grid)),
                ];
                push_trace_id(&mut obj, trace_id);
                if *dropped > 0 {
                    obj.push(("dropped".into(), (*dropped).into()));
                }
                obj
            }
            Event::Status {
                key,
                state,
                rows_done,
                rows_total,
                events_dropped,
            } => {
                let mut obj = vec![
                    ("event".into(), "status".into()),
                    ("key".into(), key.as_str().into()),
                    ("state".into(), state.as_str().into()),
                    ("rows_done".into(), (*rows_done).into()),
                    ("rows_total".into(), (*rows_total).into()),
                ];
                if *events_dropped > 0 {
                    obj.push(("events_dropped".into(), (*events_dropped).into()));
                }
                obj
            }
            Event::Pong {
                proto,
                version,
                uptime_ms,
            } => vec![
                ("event".into(), "pong".into()),
                ("proto".into(), proto.as_str().into()),
                ("version".into(), version.as_str().into()),
                ("uptime_ms".into(), (*uptime_ms).into()),
            ],
            Event::Stats { doc } => vec![
                ("event".into(), "stats".into()),
                ("doc".into(), doc.clone()),
            ],
            Event::Error { message, retryable } => vec![
                ("event".into(), "error".into()),
                ("message".into(), message.as_str().into()),
                ("retryable".into(), (*retryable).into()),
            ],
            Event::Timeout { key } => vec![
                ("event".into(), "timeout".into()),
                ("key".into(), key.as_str().into()),
            ],
            Event::Overloaded { reason } => vec![
                ("event".into(), "overloaded".into()),
                ("reason".into(), reason.as_str().into()),
            ],
            Event::Bye => vec![("event".into(), "bye".into())],
        };
        JsonValue::Object(obj).to_string_compact()
    }

    /// Parses one server line.
    ///
    /// # Errors
    ///
    /// Returns a description of what is malformed or missing.
    pub fn parse(line: &str) -> Result<Event, String> {
        let v = JsonValue::parse(line).map_err(|e| e.to_string())?;
        match v.get("event").and_then(JsonValue::as_str) {
            Some("hello") => Ok(Event::Hello {
                proto: str_field(&v, "proto")?,
                version: str_field(&v, "version")?,
            }),
            Some("accepted") => Ok(Event::Accepted {
                key: str_field(&v, "key")?,
                rows_total: u64_field(&v, "rows_total")?,
                coalesced: bool_field(&v, "coalesced")?,
                trace_id: str_field_or(&v, "trace_id")?,
            }),
            Some("progress") => Ok(Event::Progress {
                key: str_field(&v, "key")?,
                row: u64_field(&v, "row")?,
                rows_done: u64_field(&v, "rows_done")?,
                rows_total: u64_field(&v, "rows_total")?,
                trace_id: str_field_or(&v, "trace_id")?,
            }),
            Some("done") => Ok(Event::Done {
                key: str_field(&v, "key")?,
                source: Source::from_str_opt(&str_field(&v, "source")?)
                    .ok_or("unknown source in 'done'")?,
                rows_resumed: u64_field(&v, "rows_resumed")?,
                grid: grid_from_json(v.get("grid").ok_or("missing field 'grid'")?)?,
                trace_id: str_field_or(&v, "trace_id")?,
                dropped: u64_field_or(&v, "dropped", 0)?,
            }),
            Some("status") => Ok(Event::Status {
                key: str_field(&v, "key")?,
                state: str_field(&v, "state")?,
                rows_done: u64_field(&v, "rows_done")?,
                rows_total: u64_field(&v, "rows_total")?,
                events_dropped: u64_field_or(&v, "events_dropped", 0)?,
            }),
            // A pre-stats pong carried every counter inline; those
            // fields are simply ignored now — only liveness is read.
            Some("pong") => Ok(Event::Pong {
                proto: str_field(&v, "proto")?,
                version: str_field(&v, "version")?,
                uptime_ms: u64_field_or(&v, "uptime_ms", 0)?,
            }),
            Some("stats") => Ok(Event::Stats {
                doc: v.get("doc").cloned().ok_or("missing field 'doc'")?,
            }),
            Some("error") => Ok(Event::Error {
                message: str_field(&v, "message")?,
                retryable: bool_field_or(&v, "retryable", false)?,
            }),
            Some("timeout") => Ok(Event::Timeout {
                key: str_field(&v, "key")?,
            }),
            Some("overloaded") => Ok(Event::Overloaded {
                reason: str_field(&v, "reason")?,
            }),
            Some("bye") => Ok(Event::Bye),
            Some(other) => Err(format!("unknown event '{other}'")),
            None => Err("missing or non-string field 'event'".into()),
        }
    }
}

/// Serializes a [`DesignGrid`] with floats as bit patterns, so the
/// wire round trip is bit-exact (NaN included).
pub fn grid_to_json(grid: &DesignGrid) -> JsonValue {
    let sizes: Vec<u64> = grid.sizes.iter().map(|s| s.get()).collect();
    let bits = |xs: &[f64]| JsonValue::Array(xs.iter().map(|&v| f64_bits_hex(v).into()).collect());
    JsonValue::Object(vec![
        ("sizes".into(), u64s(&sizes)),
        ("cycles".into(), u64s(&grid.cycles)),
        ("ways".into(), u64::from(grid.ways).into()),
        (
            "total".into(),
            JsonValue::Array(grid.total.iter().map(|row| u64s(row)).collect()),
        ),
        ("l2_local_bits".into(), bits(&grid.l2_local)),
        ("l2_global_bits".into(), bits(&grid.l2_global)),
        (
            "m_l1_global_bits".into(),
            f64_bits_hex(grid.m_l1_global).into(),
        ),
        (
            "cpu_cycle_ns_bits".into(),
            f64_bits_hex(grid.cpu_cycle_ns).into(),
        ),
    ])
}

/// Deserializes a [`DesignGrid`] written by [`grid_to_json`].
///
/// # Errors
///
/// Returns a description of the first malformed or inconsistent field.
pub fn grid_from_json(v: &JsonValue) -> Result<DesignGrid, String> {
    let sizes: Vec<ByteSize> = ints_field(v, "sizes")?
        .into_iter()
        .map(ByteSize::new)
        .collect();
    let cycles = ints_field(v, "cycles")?;
    let ways = u32::try_from(u64_field(v, "ways")?).map_err(|_| "ways overflows u32")?;
    let total: Vec<Vec<u64>> = v
        .get("total")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field 'total'")?
        .iter()
        .map(|row| {
            row.as_array()
                .ok_or_else(|| "non-array row in 'total'".to_owned())?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .ok_or_else(|| "non-integer in 'total'".to_owned())
                })
                .collect()
        })
        .collect::<Result<_, String>>()?;
    if total.len() != sizes.len() || total.iter().any(|r| r.len() != cycles.len()) {
        return Err("grid 'total' shape does not match sizes x cycles".into());
    }
    let l2_local = bits_array_field(v, "l2_local_bits")?;
    let l2_global = bits_array_field(v, "l2_global_bits")?;
    if l2_local.len() != sizes.len() || l2_global.len() != sizes.len() {
        return Err("miss-ratio columns do not match the size count".into());
    }
    Ok(DesignGrid {
        sizes,
        cycles,
        ways,
        total,
        l2_local,
        l2_global,
        m_l1_global: bits_field(v, "m_l1_global_bits")?,
        cpu_cycle_ns: bits_field(v, "cpu_cycle_ns_bits")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_grid() -> DesignGrid {
        DesignGrid {
            sizes: vec![ByteSize::kib(16), ByteSize::kib(32)],
            cycles: vec![1, 4],
            ways: 2,
            total: vec![vec![100, 200], vec![90, DesignGrid::FAILED]],
            l2_local: vec![0.25, f64::NAN],
            l2_global: vec![0.125, -0.0],
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Submit(SubmitRequest {
                trace: PathBuf::from("/tmp/t.din"),
                l1_bytes: 4096,
                ways: 1,
                sizes: vec![16384, 32768],
                cycles: vec![1, 2, 3],
                engine: "onepass".into(),
                warmup_frac: 0.25,
                wait: true,
                deadline_ms: 1500,
                trace_id: "trc-00c0ffee00c0ffee".into(),
            }),
            Request::Status {
                key: "fnv1a64:0123456789abcdef".into(),
            },
            Request::Fetch {
                key: "fnv1a64:0123456789abcdef".into(),
            },
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
        ];
        for r in requests {
            let line = r.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Request::parse(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn events_round_trip_bit_exact() {
        let events = vec![
            Event::Hello {
                proto: PROTO.into(),
                version: "0.1.0".into(),
            },
            Event::Accepted {
                key: "fnv1a64:0123456789abcdef".into(),
                rows_total: 5,
                coalesced: true,
                trace_id: "trc-00c0ffee00c0ffee".into(),
            },
            Event::Progress {
                key: "fnv1a64:0123456789abcdef".into(),
                row: 3,
                rows_done: 2,
                rows_total: 5,
                trace_id: String::new(),
            },
            Event::Status {
                key: "fnv1a64:0123456789abcdef".into(),
                state: "running".into(),
                rows_done: 2,
                rows_total: 5,
                events_dropped: 4,
            },
            Event::Pong {
                proto: PROTO.into(),
                version: "0.1.0".into(),
                uptime_ms: 60_000,
            },
            Event::Stats {
                doc: JsonValue::object([
                    ("schema".into(), "mlc-stats/1".into()),
                    ("uptime_ms".into(), 60_000u64.into()),
                ]),
            },
            Event::Error {
                message: "no such key".into(),
                retryable: true,
            },
            Event::Timeout {
                key: "fnv1a64:0123456789abcdef".into(),
            },
            Event::Overloaded {
                reason: "job table full".into(),
            },
            Event::Bye,
        ];
        for e in events {
            assert_eq!(Event::parse(&e.to_line()).unwrap(), e);
        }

        // Done carries NaN miss ratios bit-exactly.
        let done = Event::Done {
            key: "fnv1a64:0123456789abcdef".into(),
            source: Source::Disk,
            rows_resumed: 1,
            grid: sample_grid(),
            trace_id: "trc-00c0ffee00c0ffee".into(),
            dropped: 2,
        };
        let parsed = Event::parse(&done.to_line()).unwrap();
        let Event::Done {
            grid,
            source,
            trace_id,
            dropped,
            ..
        } = parsed
        else {
            panic!("wrong event");
        };
        assert_eq!(source, Source::Disk);
        assert_eq!(trace_id, "trc-00c0ffee00c0ffee");
        assert_eq!(dropped, 2);
        let want = sample_grid();
        assert_eq!(grid.sizes, want.sizes);
        assert_eq!(grid.total, want.total);
        assert_eq!(grid.l2_local[0].to_bits(), want.l2_local[0].to_bits());
        assert!(grid.l2_local[1].is_nan());
        assert_eq!(grid.l2_global[1].to_bits(), (-0.0f64).to_bits());
        assert_eq!(grid.cpu_cycle_ns.to_bits(), want.cpu_cycle_ns.to_bits());
    }

    #[test]
    fn grid_json_rejects_shape_mismatch() {
        let mut grid = sample_grid();
        grid.total.pop();
        assert!(grid_from_json(&grid_to_json(&grid)).is_err());
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"op\":\"warp\"}").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Event::parse("{\"event\":\"warp\"}").is_err());
        assert!(Event::parse("[1,2]").is_err());
    }

    #[test]
    fn revision_one_lines_without_new_fields_still_parse() {
        // A pre-hardening peer omits deadline_ms / retryable / the
        // extended stats; the additive fields must read as defaults.
        let old_error = "{\"event\":\"error\",\"message\":\"boom\"}";
        assert_eq!(
            Event::parse(old_error).unwrap(),
            Event::Error {
                message: "boom".into(),
                retryable: false,
            }
        );
        // A counter-sprawl pong from before the `stats` request: the
        // extra fields are ignored, liveness still reads.
        let old_pong = "{\"event\":\"pong\",\"proto\":\"mlc-serve/1\",\
             \"version\":\"0.1.0\",\"jobs_computed\":1,\"jobs_recovered\":0,\
             \"jobs_coalesced\":0,\"mem_entries\":0,\"disk_entries\":1}";
        assert_eq!(
            Event::parse(old_pong).unwrap(),
            Event::Pong {
                proto: PROTO.into(),
                version: "0.1.0".into(),
                uptime_ms: 0,
            }
        );

        // Trace-context-free lines keep the revision-1 shape and read
        // back with an empty id.
        let old_accepted = "{\"event\":\"accepted\",\"key\":\"fnv1a64:0123456789abcdef\",\
             \"rows_total\":5,\"coalesced\":false}";
        let Event::Accepted { trace_id, .. } = Event::parse(old_accepted).unwrap() else {
            panic!("wrong event");
        };
        assert_eq!(trace_id, "");

        let mut submit = Request::Submit(SubmitRequest {
            trace: PathBuf::from("/tmp/t.din"),
            l1_bytes: 4096,
            ways: 1,
            sizes: vec![16384],
            cycles: vec![1],
            engine: "onepass".into(),
            warmup_frac: 0.25,
            wait: true,
            deadline_ms: 99,
            trace_id: String::new(),
        });
        let line = submit.to_line().replace(",\"deadline_ms\":99", "");
        assert!(
            !line.contains("trace_id"),
            "an empty context must not grow the line: {line}"
        );
        if let Request::Submit(s) = &mut submit {
            s.deadline_ms = 0;
        }
        assert_eq!(Request::parse(&line).unwrap(), submit);
    }
}
