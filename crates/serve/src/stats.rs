//! Lock-free request-lifecycle telemetry: the sharded span recorder
//! behind the daemon's `mlc-stats/1` document.
//!
//! Every served request crosses a fixed set of lifecycle stages
//! ([`Stage`]); each crossing is recorded as a span — a duration
//! sample in a per-stage log2 histogram plus, optionally, a retained
//! [`SpanRecord`] for Perfetto export. The hot path takes no lock:
//! span ids come from one atomic counter, and each span lands in the
//! shard `span_id % STATS_SHARDS`, touching only relaxed atomics.
//! Aggregation happens on *read* ([`ServerStats::stage_histogram`]):
//! the stats endpoint sums the shards into a [`Log2Histogram`], so a
//! client polling `stats` never stalls a handler mid-request.
//!
//! Tier traffic (memory hits, disk hits, misses), the in-flight job
//! gauge, and the dropped-event total live here too — the counters the
//! paper's tier-time argument needs, applied to the serving layer.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use mlc_obs::span::{SpanRecord, Stage};
use mlc_obs::{Log2Histogram, LOG2_BUCKETS};

/// Number of shards span recordings are spread over. A small power of
/// two: enough to keep concurrent handlers off each other's cache
/// lines, cheap to sum on read.
pub const STATS_SHARDS: usize = 8;

/// The shard a span id is recorded in.
pub fn shard_of(span_id: u64) -> usize {
    (span_id % STATS_SHARDS as u64) as usize
}

/// One stage's atomic histogram cell: log2 buckets plus the exact
/// count/sum/max needed to reassemble a [`Log2Histogram`] losslessly.
struct StageCell {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    /// Sum of microsecond durations; u64 overflows after ~585k
    /// core-years of recorded spans, which is not a server lifetime.
    sum: AtomicU64,
    max: AtomicU64,
}

impl StageCell {
    fn new() -> Self {
        StageCell {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, dur_us: u64) {
        self.buckets[Log2Histogram::bucket_index(dur_us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(dur_us, Ordering::Relaxed);
        self.max.fetch_max(dur_us, Ordering::Relaxed);
    }
}

struct Shard {
    stages: [StageCell; Stage::COUNT],
}

impl Shard {
    fn new() -> Self {
        Shard {
            stages: std::array::from_fn(|_| StageCell::new()),
        }
    }
}

/// The server's lock-free telemetry recorder. See the module docs.
pub struct ServerStats {
    shards: [Shard; STATS_SHARDS],
    next_span_id: AtomicU64,
    epoch: Instant,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    events_dropped: AtomicU64,
    inflight: AtomicUsize,
    /// Spans retained verbatim for Perfetto export. Behind a Mutex —
    /// only taken when retention is enabled (`retain_cap > 0`), so the
    /// default hot path stays lock-free. Capped: a long-lived daemon
    /// keeps the first `retain_cap` spans rather than growing without
    /// bound.
    retained: Mutex<Vec<SpanRecord>>,
    retain_cap: usize,
}

impl std::fmt::Debug for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerStats")
            .field("spans", &self.next_span_id.load(Ordering::Relaxed))
            .field("retain_cap", &self.retain_cap)
            .finish_non_exhaustive()
    }
}

impl ServerStats {
    /// A fresh recorder. `retain_cap` bounds the spans kept verbatim
    /// for Perfetto export; 0 disables retention (histograms and
    /// counters still record).
    pub fn new(retain_cap: usize) -> Self {
        ServerStats {
            shards: std::array::from_fn(|_| Shard::new()),
            next_span_id: AtomicU64::new(0),
            epoch: Instant::now(),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            inflight: AtomicUsize::new(0),
            retained: Mutex::new(Vec::new()),
            retain_cap,
        }
    }

    /// Records one completed span: `stage` took from `started` until
    /// now for the request `trace_id`. Returns the minted span id.
    pub fn record_span(&self, stage: Stage, trace_id: &str, started: Instant) -> u64 {
        let ended = Instant::now();
        let span_id = self.next_span_id.fetch_add(1, Ordering::Relaxed);
        let dur_us = ended
            .duration_since(started)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        self.shards[shard_of(span_id)].stages[stage.index()].record(dur_us);
        if self.retain_cap > 0 {
            let start_us = started
                .saturating_duration_since(self.epoch)
                .as_micros()
                .min(u64::MAX as u128) as u64;
            let mut retained = self.retained.lock().expect("stats retention poisoned");
            if retained.len() < self.retain_cap {
                retained.push(SpanRecord {
                    trace_id: trace_id.to_owned(),
                    span_id,
                    stage,
                    start_us,
                    dur_us,
                });
            }
        }
        span_id
    }

    /// The spans recorded so far (total across all stages and shards).
    pub fn spans_recorded(&self) -> u64 {
        self.next_span_id.load(Ordering::Relaxed)
    }

    /// Aggregates one stage's duration distribution (microseconds)
    /// across all shards.
    pub fn stage_histogram(&self, stage: Stage) -> Log2Histogram {
        let mut counts = [0u64; LOG2_BUCKETS];
        let (mut count, mut sum, mut max) = (0u64, 0u128, 0u64);
        for shard in &self.shards {
            let cell = &shard.stages[stage.index()];
            for (total, bucket) in counts.iter_mut().zip(cell.buckets.iter()) {
                *total += bucket.load(Ordering::Relaxed);
            }
            count += cell.count.load(Ordering::Relaxed);
            sum += cell.sum.load(Ordering::Relaxed) as u128;
            max = max.max(cell.max.load(Ordering::Relaxed));
        }
        Log2Histogram::from_raw(counts, count, sum, max)
    }

    /// One shard's sample count for one stage — introspection for the
    /// sharding property tests.
    pub fn shard_stage_count(&self, shard: usize, stage: Stage) -> u64 {
        self.shards[shard].stages[stage.index()]
            .count
            .load(Ordering::Relaxed)
    }

    /// A copy of the retained spans (empty when retention is off).
    pub fn retained_spans(&self) -> Vec<SpanRecord> {
        self.retained
            .lock()
            .expect("stats retention poisoned")
            .clone()
    }

    /// Counts a memory-tier cache hit.
    pub fn note_mem_hit(&self) {
        self.mem_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a disk-tier cache hit.
    pub fn note_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a full cache miss (both tiers probed, neither answered).
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Memory-tier hits so far.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Disk-tier hits so far.
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Full misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Adds `n` to the dropped-event total (per-job drops folded in as
    /// each job finishes).
    pub fn add_events_dropped(&self, n: u64) {
        if n > 0 {
            self.events_dropped.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subscriber events dropped across all finished jobs.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped.load(Ordering::Relaxed)
    }

    /// Marks a sweep job in flight.
    pub fn job_started(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a sweep job finished.
    pub fn job_finished(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sweep jobs currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn spans_land_in_their_shard_and_aggregate_conserves() {
        let stats = ServerStats::new(64);
        let t0 = Instant::now();
        for _ in 0..100 {
            stats.record_span(Stage::Simulate, "trc-x", t0);
        }
        let hist = stats.stage_histogram(Stage::Simulate);
        assert_eq!(hist.count(), 100);
        let per_shard: u64 = (0..STATS_SHARDS)
            .map(|s| stats.shard_stage_count(s, Stage::Simulate))
            .sum();
        assert_eq!(per_shard, 100, "every span lands in exactly one shard");
        // Sequential ids round-robin the shards evenly.
        for s in 0..STATS_SHARDS {
            assert_eq!(
                stats.shard_stage_count(s, Stage::Simulate),
                100 / STATS_SHARDS as u64 + u64::from(s < 100 % STATS_SHARDS)
            );
        }
        assert!(stats.stage_histogram(Stage::Reply).is_empty());
    }

    #[test]
    fn retention_caps_and_copies() {
        let stats = ServerStats::new(2);
        let t0 = Instant::now();
        for _ in 0..5 {
            stats.record_span(Stage::Reply, "trc-r", t0);
        }
        let retained = stats.retained_spans();
        assert_eq!(retained.len(), 2, "retention is capped");
        assert_eq!(stats.spans_recorded(), 5, "histograms keep recording");
        assert!(retained.iter().all(|s| s.trace_id == "trc-r"));

        let off = ServerStats::new(0);
        off.record_span(Stage::Reply, "trc-r", t0);
        assert!(off.retained_spans().is_empty());
    }

    #[test]
    fn concurrent_recording_keeps_ids_unique_and_counts_exact() {
        let stats = Arc::new(ServerStats::new(4096));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || {
                    let t0 = Instant::now() - Duration::from_micros(t);
                    for _ in 0..500 {
                        stats.record_span(Stage::Parse, &format!("trc-{t}"), t0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(stats.spans_recorded(), 4000);
        assert_eq!(stats.stage_histogram(Stage::Parse).count(), 4000);
        let ids: std::collections::BTreeSet<u64> =
            stats.retained_spans().iter().map(|s| s.span_id).collect();
        assert_eq!(ids.len(), 4000, "span ids never collide");
    }

    #[test]
    fn tier_counters_and_gauges() {
        let stats = ServerStats::new(0);
        stats.note_mem_hit();
        stats.note_mem_hit();
        stats.note_disk_hit();
        stats.note_miss();
        assert_eq!(
            (stats.mem_hits(), stats.disk_hits(), stats.misses()),
            (2, 1, 1)
        );
        stats.job_started();
        stats.job_started();
        stats.job_finished();
        assert_eq!(stats.inflight(), 1);
        stats.add_events_dropped(0);
        stats.add_events_dropped(3);
        assert_eq!(stats.events_dropped(), 3);
    }
}
