//! Guaranteed-bounds static cache analysis for multi-level LRU
//! hierarchies.
//!
//! Where the simulator measures what *one* execution does, this crate
//! proves what *every* execution must do: an abstract-interpretation
//! must/may/persistence analysis (Ferdinand & Wilhelm's age-based LRU
//! domains) classifies each trace position as always-hit, always-miss,
//! first-miss, or not-classified, per level, with Hardy & Puaut's
//! multi-level cache-access-classification filtering in between — an
//! access that always hits at L1 provably never reaches L2. The result
//! is a guaranteed per-level read-miss interval `[lo, hi]` and a
//! worst-case read-path cycle bound through the existing timing model.
//!
//! The two halves keep each other honest: for any supported machine and
//! any trace, a cold [`mlc_sim::simulate`] run must land inside the
//! bounds (`crates/sim/tests/bounds_props.rs` asserts exactly that), so
//! a bug in either the simulator's replacement logic or the analyzer's
//! transfer functions shows up as a bounds violation. See `DESIGN.md`
//! §14 for the soundness argument and the known over-approximations.
//!
//! # Example
//!
//! ```
//! use mlc_sim::machine::base_machine;
//! use mlc_trace::TraceRecord;
//!
//! let trace: Vec<TraceRecord> = (0..4).map(|_| TraceRecord::read(0x40)).collect();
//! let report = mlc_wcet::analyze(&base_machine(), &trace).unwrap();
//! // One cold miss per level, guaranteed exactly.
//! assert_eq!((report.levels[0].lo, report.levels[0].hi), (1, 1));
//! assert_eq!((report.levels[1].lo, report.levels[1].hi), (1, 1));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bounds;
pub mod domain;
pub mod multilevel;

pub use analysis::{classify_unit, Chmc, UnitAccess};
pub use bounds::{BoundsReport, LevelBounds};
pub use domain::{AbstractCache, DomainKind};
pub use multilevel::{analyze, supported, Unsupported};
