//! Single-unit cache-access classification (CHMC) by fixpoint.
//!
//! Takes the unit's access sequence — already routed (ifetch vs data)
//! and already filtered by the upstream level — and classifies each
//! position as always-hit / always-miss / first-miss / not-classified
//! under the *loop model*: the trace is treated as a loop body that may
//! repeat, entered either cold or from its own exit state. This is the
//! standard WCET setting (Hardy & Puaut), and it is sound for a single
//! pass too (a single pass is one iteration of the loop).
//!
//! * **Must** at the loop entry is the join of the cold state (empty)
//!   with the exit state; the must join is intersection, so the entry
//!   state is empty and no fixpoint iteration is needed — one walk from
//!   ⊥ suffices.
//! * **May** and **Persistence** iterate `entry ← entry ⊔ transfer(entry)`
//!   until stable; both lattices are finite so this terminates.
//! * A block is *persistent* when at every one of its accesses the
//!   persistence pre-state age is below ⊤ (= ways): it can miss at most
//!   once across all loop iterations, i.e. first-miss. The
//!   [`SetFootprint`](mlc_core::SetFootprint) seed handles the common
//!   trivial case (a set whose whole footprint fits its ways) without
//!   any fixpoint at all.

use std::collections::{BTreeMap, BTreeSet};

use mlc_core::SetFootprint;

use crate::domain::{AbstractCache, DomainKind};

/// One access routed to a cache unit, in trace order.
#[derive(Debug, Clone, Copy)]
pub struct UnitAccess {
    /// Position in the original trace (for reporting and filtering).
    pub pos: usize,
    /// Block index in this unit's geometry.
    pub block: u64,
    /// `true` when the access definitely reaches this unit (`A` in the
    /// multi-level filter), `false` when it only may (`U`).
    pub definite: bool,
}

/// Cache hit/miss classification of one access position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Chmc {
    /// Guaranteed hit on every execution.
    AlwaysHit,
    /// Guaranteed miss on every execution.
    AlwaysMiss,
    /// Misses at most once across all repetitions of the sequence.
    FirstMiss,
    /// No guarantee either way.
    NotClassified,
}

/// Classifies every access in `accesses` against a `sets × ways` LRU
/// unit.
///
/// `allow_must` disables the must and persistence analyses (everything
/// hit-related degrades to [`Chmc::NotClassified`]) — used at levels
/// below L1 when the trace contains writes, whose dirty-victim
/// writeback traffic the static analysis does not model. `am_blocked`
/// restricts always-miss classification to blocks *not* in the set —
/// the same write traffic can refresh or insert written blocks behind
/// the analysis's back, so definite-absence only holds for blocks no
/// write ever touches.
pub fn classify_unit(
    sets: u64,
    ways: u32,
    accesses: &[UnitAccess],
    allow_must: bool,
    am_blocked: Option<&BTreeSet<u64>>,
) -> Vec<Chmc> {
    // --- May fixpoint: entry ← entry ⊔ transfer(entry), from cold. ---
    let may_entry = fixpoint(DomainKind::May, sets, ways, accesses);

    // --- Persistence fixpoint + per-block persistence judgement. ---
    let mut persistent: BTreeMap<u64, bool> = BTreeMap::new();
    if allow_must {
        // Trivial seed: a set whose distinct-block footprint fits its
        // ways can never evict, so every block there is persistent.
        let mut footprint = SetFootprint::new(sets, ways);
        for a in accesses {
            footprint.touch(a.block);
        }
        for a in accesses {
            persistent.insert(a.block, footprint.fits(a.block));
        }
        if persistent.values().any(|&fits| !fits) {
            let pers_entry = fixpoint(DomainKind::Persistence, sets, ways, accesses);
            // Walk once more from the entry state; a block survives if
            // no access to it ever sees the ⊤ age in its pre-state.
            let mut pers = pers_entry;
            for a in accesses {
                if pers.age(a.block) == Some(ways) {
                    persistent.insert(a.block, false);
                }
                step(&mut pers, a);
            }
        }
    }

    // --- Final walk: record pre-states and classify. ---
    // Must entry is always empty (cold ⊓ exit = ⊥), so the must walk
    // needs no fixpoint; may walks from its entry fixpoint.
    let mut must = AbstractCache::new(DomainKind::Must, sets, ways);
    let mut may = may_entry;
    let mut out = Vec::with_capacity(accesses.len());
    for a in accesses {
        let in_must = allow_must && must.contains(a.block);
        let in_may = may.contains(a.block);
        let blocked = am_blocked.is_some_and(|s| s.contains(&a.block));
        let chmc = if in_must {
            Chmc::AlwaysHit
        } else if !in_may && a.definite && !blocked {
            Chmc::AlwaysMiss
        } else if allow_must && persistent.get(&a.block).copied().unwrap_or(false) {
            Chmc::FirstMiss
        } else {
            Chmc::NotClassified
        };
        out.push(chmc);
        step(&mut must, a);
        step(&mut may, a);
    }
    out
}

/// Applies one access to an abstract state, respecting definiteness.
fn step(cache: &mut AbstractCache, a: &UnitAccess) {
    if a.definite {
        cache.access(a.block);
    } else {
        cache.access_maybe(a.block);
    }
}

/// Iterates `entry ← entry ⊔ transfer(entry)` from the cold state until
/// stable and returns the entry fixpoint.
fn fixpoint(kind: DomainKind, sets: u64, ways: u32, accesses: &[UnitAccess]) -> AbstractCache {
    let mut entry = AbstractCache::new(kind, sets, ways);
    loop {
        let mut exit = entry.clone();
        for a in accesses {
            step(&mut exit, a);
        }
        let mut joined = entry.clone();
        joined.join(&exit);
        if joined == entry {
            return entry;
        }
        entry = joined;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(blocks: &[u64]) -> Vec<UnitAccess> {
        blocks
            .iter()
            .enumerate()
            .map(|(pos, &block)| UnitAccess {
                pos,
                block,
                definite: true,
            })
            .collect()
    }

    #[test]
    fn repeated_block_in_fitting_set_is_first_miss_then_hits() {
        // 1 set × 2 ways, footprint {0, 8} fits: the cold first touch of
        // each block is a first-miss, repeats are always-hits.
        let accesses = seq(&[0, 8, 0, 8, 0]);
        let chmc = classify_unit(1, 2, &accesses, true, None);
        assert_eq!(
            chmc,
            vec![
                Chmc::FirstMiss,
                Chmc::FirstMiss,
                Chmc::AlwaysHit,
                Chmc::AlwaysHit,
                Chmc::AlwaysHit,
            ]
        );
    }

    #[test]
    fn thrashing_set_is_always_miss_everywhere() {
        // 1 set × 1 way, alternating blocks: each access definitely
        // evicts the other block, so every access is an always-miss —
        // even across loop iterations.
        let accesses = seq(&[0, 1, 0, 1]);
        let chmc = classify_unit(1, 1, &accesses, true, None);
        assert!(chmc.iter().all(|&c| c == Chmc::AlwaysMiss));
    }

    #[test]
    fn cyclic_streaming_is_always_miss() {
        // 1 set × 2 ways, cyclic [0, 8, 16]: every block's reuse
        // distance (within and across iterations) is 2 ≥ ways, so LRU
        // thrashes completely and the analysis proves it.
        let accesses = seq(&[0, 8, 16]);
        let chmc = classify_unit(1, 2, &accesses, true, None);
        assert!(chmc.iter().all(|&c| c == Chmc::AlwaysMiss));
    }

    #[test]
    fn block_that_survives_only_across_iterations_is_not_classified() {
        // 1 set × 2 ways, loop body [0, 8, 16, 0]. The exit state is
        // {16, 0}, so at the *entry* access to 0 the block is resident
        // from the previous iteration — a hit on every iteration but
        // the cold first one. The must analysis (cold entry join) can't
        // guarantee the hit, the may analysis can't rule it out, and 0
        // is evicted mid-body (by 16) so it isn't persistent either:
        // exactly NotClassified. The later re-access of 0 at reuse
        // distance 2 misses every iteration.
        let accesses = seq(&[0, 8, 16, 0]);
        let chmc = classify_unit(1, 2, &accesses, true, None);
        assert_eq!(
            chmc,
            vec![
                Chmc::NotClassified,
                Chmc::AlwaysMiss,
                Chmc::AlwaysMiss,
                Chmc::AlwaysMiss,
            ]
        );
    }

    #[test]
    fn must_hit_within_one_iteration_despite_overflow() {
        // 0 re-referenced at reuse distance 1 in a 2-way set hits even
        // though the set's total footprint (3 blocks) overflows.
        let accesses = seq(&[0, 8, 0, 16]);
        let chmc = classify_unit(1, 2, &accesses, true, None);
        assert_eq!(chmc[2], Chmc::AlwaysHit);
    }

    #[test]
    fn persistence_survives_non_fitting_but_stable_set() {
        // 2 ways; blocks 0 and 8 ping-pong, then 16 appears once. The
        // set footprint (3) does not fit, but the mid-body re-accesses
        // of 0 and 8 happen at reuse distance 1 < ways, so the must
        // analysis guarantees those hits even though nothing about the
        // loop entry state is known.
        let accesses = seq(&[0, 8, 0, 8, 16]);
        let chmc = classify_unit(1, 2, &accesses, true, None);
        // 0's second access hits within the iteration.
        assert_eq!(chmc[2], Chmc::AlwaysHit);
        assert_eq!(chmc[3], Chmc::AlwaysHit);
    }

    #[test]
    fn without_must_everything_degrades_to_not_classified_or_miss() {
        let accesses = seq(&[0, 8, 0, 8]);
        let chmc = classify_unit(1, 2, &accesses, false, None);
        // Hits can no longer be guaranteed (unmodeled write traffic may
        // have evicted anything), but nothing spuriously becomes a miss
        // either: the blocks may be resident.
        assert!(chmc.iter().all(|&c| c == Chmc::NotClassified));
    }

    #[test]
    fn am_blocked_suppresses_always_miss_for_written_blocks() {
        let accesses = seq(&[0, 1, 0, 1]);
        let blocked: BTreeSet<u64> = [0u64].into_iter().collect();
        let chmc = classify_unit(1, 1, &accesses, true, Some(&blocked));
        // Block 0 may be refreshed by write traffic: not always-miss.
        assert_eq!(chmc[0], Chmc::NotClassified);
        assert_eq!(chmc[2], Chmc::NotClassified);
        // Block 1 is unaffected.
        assert_eq!(chmc[1], Chmc::AlwaysMiss);
        assert_eq!(chmc[3], Chmc::AlwaysMiss);
    }

    #[test]
    fn maybe_accesses_cannot_create_hits_or_misses() {
        // A `U` access (filtered uncertainly by the upper level) must be
        // treated conservatively on both sides.
        let mut accesses = seq(&[0, 0]);
        accesses[0].definite = false;
        accesses[1].definite = false;
        let chmc = classify_unit(1, 2, &accesses, true, None);
        // Neither access can be an always-hit (the first may not have
        // happened, so the must state never gains the block) nor an
        // always-miss (it may have happened, so the may state has it).
        // The set's footprint fits, so both demote to first-miss.
        assert_eq!(chmc[0], Chmc::FirstMiss);
        assert_eq!(chmc[1], Chmc::FirstMiss);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        // 2 sets × 1 way: even/odd blocks land in different sets.
        let accesses = seq(&[0, 1, 0, 1]);
        let chmc = classify_unit(2, 1, &accesses, true, None);
        assert_eq!(
            chmc,
            vec![
                Chmc::FirstMiss,
                Chmc::FirstMiss,
                Chmc::AlwaysHit,
                Chmc::AlwaysHit,
            ]
        );
    }
}
