//! Multi-level cache-access-classification filtering and per-level
//! guaranteed miss bounds.
//!
//! Hardy & Puaut's scheme: each access carries a *cache access
//! classification* (CAC) per level — `A` (always reaches the level),
//! `U` (uncertain), `N` (never reaches it). Everything is `A` at L1;
//! below that, an access classified always-hit above never arrives
//! (`N`), an always-miss below an `A` stays `A`, and anything uncertain
//! degrades to `U`. `U` accesses drive the abstract states through the
//! maybe-transfer (join of updated and unchanged), keeping every level's
//! analysis sound.
//!
//! Writes are handled by *widening* rather than modeling: at levels
//! below L1 a write-back upper level emits dirty-victim writebacks the
//! static analysis cannot place, so when the trace contains writes the
//! must/persistence analyses are disabled below L1 (no guaranteed hits
//! there) and always-miss is only claimed for blocks no write ever
//! touches (write traffic can only insert or refresh *written* blocks).
//! Both directions stay sound; the bounds just widen — which is what
//! rule MLC017 warns about.

use std::collections::BTreeSet;

use mlc_cache::{AllocPolicy, CacheConfig, Prefetch, Replacement};
use mlc_core::memory_read_cycles;
use mlc_sim::{HierarchyConfig, LevelCacheConfig};
use mlc_trace::{AccessKind, TraceRecord};

use crate::analysis::{classify_unit, Chmc, UnitAccess};
use crate::bounds::{BoundsReport, LevelBounds};

/// Why a hierarchy configuration cannot be analysed statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported {
    /// Human-readable reason, naming the offending level/unit.
    pub reason: String,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "static analysis unsupported: {}", self.reason)
    }
}

impl std::error::Error for Unsupported {}

fn unsupported(reason: String) -> Unsupported {
    Unsupported { reason }
}

/// Checks one cache unit against the analysable subset.
fn check_unit(level: usize, name: &str, cache: &CacheConfig) -> Result<(), Unsupported> {
    let what = |msg: String| Err(unsupported(format!("L{} {name}: {msg}", level + 1)));
    let geom = cache.geometry();
    if geom.ways() > 1 && cache.replacement() != Replacement::Lru {
        // Direct-mapped caches have no replacement choice, so any
        // policy label is fine there.
        return what(format!(
            "replacement policy {} is not LRU (rule MLC016)",
            cache.replacement()
        ));
    }
    if cache.alloc_policy() != AllocPolicy::WriteAllocate {
        return what("no-write-allocate writes bypass the modeled fill path (rule MLC017)".into());
    }
    if cache.prefetch() != Prefetch::None {
        return what("prefetching inserts blocks the analysis cannot place".into());
    }
    if cache.fetch_blocks() != 1 || cache.sub_blocks() != 1 {
        return what("multi-block fetch / sub-blocking not modeled".into());
    }
    if cache.victim_entries() != 0 {
        return what("victim buffer retains evicted blocks outside the LRU state".into());
    }
    Ok(())
}

/// Verifies `config` falls in the statically analysable subset:
/// per-unit LRU (or direct-mapped), write-allocate, no prefetch, no
/// sub-blocking, no victim buffer; block sizes non-decreasing
/// downstream; and a valid hierarchy overall.
pub fn supported(config: &HierarchyConfig) -> Result<(), Unsupported> {
    config
        .validate()
        .map_err(|e| unsupported(format!("invalid hierarchy: {e}")))?;
    let mut max_block_upstream = 0u64;
    for (i, level) in config.levels.iter().enumerate() {
        let units = level_units(&level.cache);
        for (name, cache) in &units {
            check_unit(i, name, cache)?;
        }
        let min_block = units
            .iter()
            .map(|(_, c)| c.geometry().block_bytes())
            .min()
            .unwrap_or(0);
        let max_block = units
            .iter()
            .map(|(_, c)| c.geometry().block_bytes())
            .max()
            .unwrap_or(0);
        if min_block < max_block_upstream {
            return Err(unsupported(format!(
                "L{} block size {min_block} shrinks below an upstream level's \
                 {max_block_upstream}: one upstream fill would span several blocks",
                i + 1
            )));
        }
        max_block_upstream = max_block_upstream.max(max_block);
    }
    Ok(())
}

/// The units of one level with display names.
fn level_units(cache: &LevelCacheConfig) -> Vec<(&'static str, CacheConfig)> {
    match cache {
        LevelCacheConfig::Unified(c) => vec![("unified", *c)],
        LevelCacheConfig::Split { icache, dcache } => {
            vec![("icache", *icache), ("dcache", *dcache)]
        }
    }
}

/// Whether `kind` is served by the unit named `name` of a level.
fn routes_to(name: &str, kind: AccessKind) -> bool {
    match name {
        "unified" => true,
        "icache" => kind == AccessKind::InstructionFetch,
        "dcache" => kind != AccessKind::InstructionFetch,
        _ => unreachable!("unknown unit name"),
    }
}

/// CAC lattice: never reaches the level / uncertain / always reaches.
const CAC_N: u8 = 0;
const CAC_U: u8 = 1;
const CAC_A: u8 = 2;

/// Runs the full multi-level analysis: per-level CHMC classification
/// with CAC filtering, guaranteed read-miss bounds `[lo, hi]` per
/// level, and worst/best-case read-path cycle bounds.
///
/// The bounds cover **read references** (instruction fetches and
/// loads): `lo ≤ read_misses(level) ≤ hi` for any LRU execution of
/// `records` on `config`, as measured by a cold simulation.
pub fn analyze(
    config: &HierarchyConfig,
    records: &[TraceRecord],
) -> Result<BoundsReport, Unsupported> {
    supported(config)?;
    let writes_present = records.iter().any(|r| r.kind == AccessKind::Write);
    let read_records = records.iter().filter(|r| r.kind.is_read()).count() as u64;

    // cac[p]: classification of position p for the level currently
    // being analysed; everything always arrives at L1. reach[p]: every
    // level analysed so far definitely misses position p (drives lo).
    let mut cac = vec![CAC_A; records.len()];
    let mut reach = vec![true; records.len()];
    let mut levels = Vec::with_capacity(config.levels.len());

    for (li, level) in config.levels.iter().enumerate() {
        let allow_must = li == 0 || !writes_present;
        let mut bounds = LevelBounds::new(&level.name);
        // Next level's CAC, refined unit by unit.
        let mut next_cac = cac.clone();

        for (name, cache) in level_units(&level.cache) {
            let geom = cache.geometry();
            let sets = geom.sets();
            let ways = geom.ways();
            let block_bytes = geom.block_bytes();

            // Route and collect this unit's access sequence. Blocks are
            // tracked for first-touch/written bookkeeping over *all*
            // routed positions, independent of CAC: writeback and
            // write-allocate traffic below L1 can insert blocks the CAC
            // says never arrive as reads.
            let mut accesses = Vec::new();
            let mut touched = BTreeSet::new();
            let mut written = BTreeSet::new();
            let mut first_touch = vec![false; records.len()];
            for (p, r) in records.iter().enumerate() {
                if !routes_to(name, r.kind) {
                    continue;
                }
                let block = r.addr.block_index(block_bytes);
                if touched.insert(block) {
                    first_touch[p] = true;
                }
                if r.kind == AccessKind::Write {
                    written.insert(block);
                }
                if cac[p] != CAC_N {
                    accesses.push(UnitAccess {
                        pos: p,
                        block,
                        definite: cac[p] == CAC_A,
                    });
                }
            }

            let am_blocked = (li > 0 && writes_present).then_some(&written);
            let chmc = classify_unit(sets, ways, &accesses, allow_must, am_blocked);

            // Accounting: upper bound over read positions that can
            // arrive; lower bound over reads that *definitely* miss at
            // every level so far. A first-miss contributes to hi only at
            // the block's first FM position.
            let mut fm_counted = BTreeSet::new();
            let mut is_am = vec![false; records.len()];
            for (a, &c) in accesses.iter().zip(&chmc) {
                let p = a.pos;
                let read = records[p].kind.is_read();
                if read {
                    bounds.reads_max += 1;
                    match c {
                        Chmc::AlwaysHit => bounds.always_hit += 1,
                        Chmc::AlwaysMiss => {
                            bounds.always_miss += 1;
                            bounds.hi += 1;
                        }
                        Chmc::FirstMiss => {
                            bounds.first_miss += 1;
                            if fm_counted.insert(a.block) {
                                bounds.hi += 1;
                            }
                        }
                        Chmc::NotClassified => {
                            bounds.not_classified += 1;
                            bounds.hi += 1;
                        }
                    }
                }
                is_am[p] = c == Chmc::AlwaysMiss;
                // Refine the next level's CAC for this position.
                next_cac[p] = match c {
                    Chmc::AlwaysHit => CAC_N,
                    Chmc::AlwaysMiss if cac[p] == CAC_A => CAC_A,
                    _ => CAC_U,
                };
            }
            for (p, r) in records.iter().enumerate() {
                if !routes_to(name, r.kind) {
                    continue;
                }
                if cac[p] == CAC_N {
                    if r.kind.is_read() {
                        bounds.filtered += 1;
                    }
                    next_cac[p] = CAC_N;
                }
                // A cold first touch of the unit misses regardless of
                // classification; so does a definite always-miss.
                let definite_miss = first_touch[p] || (cac[p] == CAC_A && is_am[p]);
                if r.kind.is_read() && reach[p] && definite_miss {
                    bounds.lo += 1;
                }
                reach[p] = reach[p] && definite_miss;
            }
        }

        debug_assert!(bounds.lo <= bounds.hi);
        levels.push(bounds);
        cac = next_cac;
    }

    // Read-path cycle bounds: every read pays L1's access time; each
    // level's misses pay the next level's read time; last-level misses
    // pay the memory read latency. Write-side and refresh costs are
    // deliberately out of scope (see DESIGN.md §14).
    let mem = memory_read_cycles(config);
    let mut cycles_lo = read_records * config.levels[0].read_cycles;
    let mut cycles_hi = cycles_lo;
    for (li, b) in levels.iter().enumerate() {
        let next = match config.levels.get(li + 1) {
            Some(l) => l.read_cycles,
            None => mem,
        };
        cycles_lo += b.lo * next;
        cycles_hi += b.hi * next;
    }

    Ok(BoundsReport {
        levels,
        trace_records: records.len() as u64,
        read_records,
        writes_widen: writes_present,
        read_cycles_lo: cycles_lo,
        read_cycles_hi: cycles_hi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::{ByteSize, CacheConfig};
    use mlc_sim::machine::{base_machine, single_level, BaseMachine};

    fn reads(addrs: &[u64]) -> Vec<TraceRecord> {
        addrs.iter().map(|&a| TraceRecord::read(a)).collect()
    }

    #[test]
    fn base_machine_is_supported() {
        supported(&base_machine()).expect("base machine is LRU/WB/WA");
    }

    #[test]
    fn random_replacement_is_rejected_when_associative() {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .ways(2)
            .replacement(Replacement::Random)
            .build()
            .expect("valid cache");
        let config = single_level(cache, 1, 10.0, 1.0);
        let err = supported(&config).expect_err("random replacement unsupported");
        assert!(err.reason.contains("MLC016"), "{}", err.reason);
    }

    #[test]
    fn direct_mapped_ignores_replacement_label() {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .ways(1)
            .replacement(Replacement::Random)
            .build()
            .expect("valid cache");
        let config = single_level(cache, 1, 10.0, 1.0);
        supported(&config).expect("direct-mapped has no replacement choice");
    }

    #[test]
    fn no_write_allocate_is_rejected() {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .ways(1)
            .alloc_policy(AllocPolicy::NoWriteAllocate)
            .build()
            .expect("valid cache");
        let config = single_level(cache, 1, 10.0, 1.0);
        let err = supported(&config).expect_err("nwa unsupported");
        assert!(err.reason.contains("MLC017"), "{}", err.reason);
    }

    #[test]
    fn repeated_read_loop_has_tight_bounds() {
        // 64 reads of the same address through the base machine: the
        // first touch must miss everywhere (lo = 1), everything after
        // is an always-hit at L1 (hi = 1 at L1; L2 sees at most the one
        // cold fill).
        let mut records = Vec::new();
        for _ in 0..64 {
            records.push(TraceRecord::read(0x40));
        }
        let report = analyze(&base_machine(), &records).expect("supported");
        assert_eq!(report.levels[0].lo, 1);
        assert_eq!(report.levels[0].hi, 1);
        assert_eq!(report.levels[1].lo, 1);
        assert_eq!(report.levels[1].hi, 1);
    }

    #[test]
    fn always_hit_above_filters_the_level_below() {
        // After the cold miss, every repeat is AH at L1 → CAC N at L2:
        // L2 must see exactly one read arriving.
        let records = reads(&[0x40, 0x40, 0x40, 0x40]);
        let report = analyze(&base_machine(), &records).expect("supported");
        assert_eq!(report.levels[1].filtered, 3);
        assert_eq!(report.levels[1].reads_max, 1);
    }

    #[test]
    fn writes_widen_lower_levels_but_not_l1() {
        let mut records = reads(&[0x40, 0x40]);
        records.push(TraceRecord::write(0x4000));
        let report = analyze(&base_machine(), &records).expect("supported");
        assert!(report.writes_widen);
        // L1 still classifies the repeat as a hit.
        assert_eq!(report.levels[0].hi, 1);
    }

    #[test]
    fn thrash_pattern_yields_nontrivial_exact_bound() {
        // Two blocks ping-pong through a 1-set direct-mapped unified
        // cache: every access misses, and the analysis proves it
        // exactly (lo == hi == n).
        let cache = CacheConfig::builder()
            .total(ByteSize::new(16))
            .block_bytes(16)
            .ways(1)
            .build()
            .expect("valid cache");
        let config = single_level(cache, 1, 10.0, 1.0);
        let records = reads(&[0x00, 0x10, 0x00, 0x10, 0x00, 0x10]);
        let report = analyze(&config, &records).expect("supported");
        assert_eq!(report.levels[0].lo, 6);
        assert_eq!(report.levels[0].hi, 6);
    }

    #[test]
    fn split_l1_routes_ifetch_and_data_separately() {
        // Same address as ifetch and load: the two units are
        // independent, so each sees its own cold miss.
        let records = vec![
            TraceRecord::ifetch(0x40),
            TraceRecord::read(0x40),
            TraceRecord::ifetch(0x40),
            TraceRecord::read(0x40),
        ];
        let report = analyze(&base_machine(), &records).expect("supported");
        assert_eq!(report.levels[0].lo, 2);
        assert_eq!(report.levels[0].hi, 2);
    }

    #[test]
    fn cycle_bounds_track_miss_bounds() {
        let records = reads(&[0x40, 0x40, 0x40]);
        let config = base_machine();
        let report = analyze(&config, &records).expect("supported");
        let mem = memory_read_cycles(&config);
        let l1 = config.levels[0].read_cycles;
        let l2 = config.levels[1].read_cycles;
        let expect = 3 * l1 + report.levels[0].hi * l2 + report.levels[1].hi * mem;
        assert_eq!(report.read_cycles_hi, expect);
        assert!(report.read_cycles_lo <= report.read_cycles_hi);
    }

    #[test]
    fn deeper_hierarchy_is_supported_and_bounded() {
        let config = BaseMachine::new()
            .l1_ways(2)
            .l2_ways(4)
            .build()
            .expect("valid machine");
        let records = reads(&[0x0, 0x40, 0x80, 0x0, 0x40, 0x80]);
        let report = analyze(&config, &records).expect("supported");
        for b in &report.levels {
            assert!(b.lo <= b.hi);
            assert!(b.hi <= b.reads_max);
        }
    }
}
