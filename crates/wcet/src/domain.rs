//! Age-based abstract cache states for set-associative LRU caches.
//!
//! The three classic abstract interpretations of an LRU cache
//! (Ferdinand & Wilhelm), each a per-set map from block index to an
//! abstract *age* in `0..ways`:
//!
//! * **Must**: a block in the state is *guaranteed* resident and its age
//!   is an **upper bound** on the concrete LRU age. Join (control-flow
//!   merge) keeps only blocks guaranteed on both paths, at the maximum
//!   age — the intersection-with-max-age join.
//! * **May**: a block absent from the state is *guaranteed not* resident;
//!   tracked ages are **lower bounds** on the concrete age. Join is the
//!   union-with-min-age.
//! * **Persistence**: ages are upper bounds on the age *since the block
//!   was last loaded, assuming it has not been evicted*; the saturated
//!   age `ways` is ⊤ ("may have been evicted since its load"). A block
//!   whose persistence age never reaches ⊤ at any of its accesses misses
//!   at most once over the whole repetition context. The update below is
//!   the conservative corrected rule (a block ages only when the accessed
//!   block was provably older), avoiding the known unsoundness of the
//!   original persistence update; join is union-with-max-age.
//!
//! Soundness of the transfer functions is argued case by case in
//! `DESIGN.md` §14; the invariants are exercised by the sim-vs-bounds
//! oracle property suite in `crates/sim/tests/bounds_props.rs`.

use std::collections::BTreeMap;

/// Which abstract interpretation an [`AbstractCache`] implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainKind {
    /// Guaranteed-resident blocks; ages are upper bounds.
    Must,
    /// Possibly-resident blocks; ages are lower bounds.
    May,
    /// Age since last load given no eviction; `ways` is ⊤.
    Persistence,
}

/// One abstract cache state: per-set `block → age` maps under one of the
/// three LRU abstract domains.
///
/// Blocks map to sets exactly as in the concrete cache: set index =
/// `block & (sets - 1)` for a power-of-two set count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractCache {
    kind: DomainKind,
    ways: u32,
    set_mask: u64,
    sets: Vec<BTreeMap<u64, u32>>,
}

impl AbstractCache {
    /// Creates the empty (cold) state: no block is tracked.
    ///
    /// For Must this is ⊤-like "no guarantees"; for May it is the precise
    /// cold cache ("nothing can be resident"); for Persistence it means
    /// "nothing has been loaded yet".
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is zero.
    pub fn new(kind: DomainKind, sets: u64, ways: u32) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two, got {sets}"
        );
        assert!(ways > 0, "associativity must be positive");
        AbstractCache {
            kind,
            ways,
            set_mask: sets - 1,
            sets: vec![BTreeMap::new(); sets as usize],
        }
    }

    /// The domain this state lives in.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// The set a block maps to.
    fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    /// The abstract age of `block`, if tracked. For Persistence, the
    /// saturated value `ways` is ⊤ ("possibly evicted since load").
    pub fn age(&self, block: u64) -> Option<u32> {
        self.sets[self.set_of(block)].get(&block).copied()
    }

    /// Whether `block` is in the state.
    pub fn contains(&self, block: u64) -> bool {
        self.age(block).is_some()
    }

    /// Transfer function for an access to `block` that definitely occurs.
    pub fn access(&mut self, block: u64) {
        let ways = self.ways;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let old = set.get(&block).copied();
        match self.kind {
            DomainKind::Must => {
                // Blocks whose upper-bound age is below the accessed
                // block's old upper bound may be pushed one step closer
                // to eviction; a bound reaching the associativity is no
                // longer a residency guarantee.
                let threshold = old.unwrap_or(u32::MAX);
                for a in set.values_mut() {
                    if *a < threshold {
                        *a += 1;
                    }
                }
                set.retain(|_, a| *a < ways);
                set.insert(block, 0);
            }
            DomainKind::May => {
                // Blocks whose lower-bound age is at or below the
                // accessed block's old lower bound are guaranteed to be
                // pushed down (concrete ages of distinct blocks are
                // distinct); a lower bound reaching the associativity
                // means definitely evicted.
                let threshold = old.unwrap_or(u32::MAX);
                for a in set.values_mut() {
                    if *a <= threshold {
                        *a += 1;
                    }
                }
                set.retain(|_, a| *a < ways);
                set.insert(block, 0);
            }
            DomainKind::Persistence => {
                // Conservative corrected rule: a block ages only when the
                // accessed block was provably older (its old upper bound
                // exceeds the block's). Ages saturate at `ways` = ⊤
                // rather than leaving the state: "possibly evicted" is
                // sticky until the block is re-accessed.
                let threshold = old.unwrap_or(u32::MAX);
                for a in set.values_mut() {
                    if *a < threshold && *a < ways {
                        *a += 1;
                    }
                }
                set.insert(block, 0);
            }
        }
    }

    /// Transfer function for an access that may or may not occur (the
    /// multi-level filter's `U` classification): the join of the updated
    /// and unchanged states. Only the touched set is joined — the other
    /// sets are identical on both paths.
    pub fn access_maybe(&mut self, block: u64) {
        let set_idx = self.set_of(block);
        let before = self.sets[set_idx].clone();
        self.access(block);
        let kind = self.kind;
        join_set(kind, &mut self.sets[set_idx], &before);
    }

    /// Joins `other` into `self` (both flow targets of a merge).
    ///
    /// # Panics
    ///
    /// Panics if the two states differ in domain or geometry.
    pub fn join(&mut self, other: &Self) {
        assert_eq!(self.kind, other.kind, "cannot join across domains");
        assert_eq!(self.set_mask, other.set_mask, "set counts differ");
        assert_eq!(self.ways, other.ways, "associativities differ");
        let kind = self.kind;
        for (a, b) in self.sets.iter_mut().zip(&other.sets) {
            join_set(kind, a, b);
        }
    }
}

/// Joins one set's map `b` into `a` under the domain's join.
fn join_set(kind: DomainKind, a: &mut BTreeMap<u64, u32>, b: &BTreeMap<u64, u32>) {
    match kind {
        // Intersection, maximum age: only guarantees common to both
        // paths survive, at the weaker bound.
        DomainKind::Must => {
            a.retain(|k, _| b.contains_key(k));
            for (k, av) in a.iter_mut() {
                *av = (*av).max(b[k]);
            }
        }
        // Union, minimum age: anything possibly resident on either path
        // is possibly resident, at the younger bound.
        DomainKind::May => {
            for (&k, &bv) in b {
                a.entry(k)
                    .and_modify(|av| *av = (*av).min(bv))
                    .or_insert(bv);
            }
        }
        // Union, maximum age: the weaker upper bound on age-since-load;
        // ⊤ (= ways) absorbs.
        DomainKind::Persistence => {
            for (&k, &bv) in b {
                a.entry(k)
                    .and_modify(|av| *av = (*av).max(bv))
                    .or_insert(bv);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ages(cache: &AbstractCache, blocks: &[u64]) -> Vec<Option<u32>> {
        blocks.iter().map(|&b| cache.age(b)).collect()
    }

    #[test]
    fn must_tracks_lru_ages_and_evicts_at_ways() {
        // One set, 2 ways; blocks 0, 8, 16 all collide (8 sets would
        // differ — use sets = 1 so every block shares the set).
        let mut m = AbstractCache::new(DomainKind::Must, 1, 2);
        m.access(0);
        m.access(8);
        assert_eq!(ages(&m, &[0, 8]), vec![Some(1), Some(0)]);
        // Re-access of 0: 8 (age 0 < 1) ages, 0 returns to the front.
        m.access(0);
        assert_eq!(ages(&m, &[0, 8]), vec![Some(0), Some(1)]);
        // A third block pushes 8 out of the guarantee.
        m.access(16);
        assert_eq!(ages(&m, &[0, 8, 16]), vec![Some(1), None, Some(0)]);
    }

    #[test]
    fn must_reaccess_does_not_age_older_blocks() {
        let mut m = AbstractCache::new(DomainKind::Must, 1, 4);
        m.access(0);
        m.access(8);
        m.access(16);
        // Accessing 16 again (age 0): nothing younger than it exists, so
        // 0 and 8 keep their ages.
        m.access(16);
        assert_eq!(ages(&m, &[0, 8, 16]), vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn may_keeps_union_of_possibilities() {
        let mut a = AbstractCache::new(DomainKind::May, 1, 2);
        a.access(0);
        let mut b = AbstractCache::new(DomainKind::May, 1, 2);
        b.access(8);
        b.access(0);
        // a: {0: 0}; b: {8: 1, 0: 0}. Join: union with min ages.
        a.join(&b);
        assert_eq!(ages(&a, &[0, 8]), vec![Some(0), Some(1)]);
    }

    #[test]
    fn may_eviction_is_definite() {
        let mut m = AbstractCache::new(DomainKind::May, 1, 2);
        m.access(0);
        m.access(8);
        m.access(16);
        // Three distinct blocks through a 2-way set: 0 is definitely out.
        assert!(!m.contains(0));
        assert!(m.contains(8) && m.contains(16));
    }

    #[test]
    fn must_join_is_intersection_with_max_age() {
        let mut a = AbstractCache::new(DomainKind::Must, 1, 4);
        a.access(0);
        a.access(8);
        let mut b = AbstractCache::new(DomainKind::Must, 1, 4);
        b.access(8);
        b.access(16);
        a.join(&b);
        // Only 8 is guaranteed on both paths; at the weaker (older) age.
        assert_eq!(ages(&a, &[0, 8, 16]), vec![None, Some(1), None]);
    }

    #[test]
    fn persistence_saturates_at_top_and_recovers_on_access() {
        let mut p = AbstractCache::new(DomainKind::Persistence, 1, 2);
        p.access(0);
        p.access(8);
        p.access(16);
        p.access(24);
        // 0 has seen three provably-younger... rather: 8, 16, 24 each aged
        // it once; at ways = 2 it saturates to ⊤ (= 2).
        assert_eq!(p.age(0), Some(2));
        // Re-accessing 0 restores it to age 0 (it is resident *now*).
        p.access(0);
        assert_eq!(p.age(0), Some(0));
    }

    #[test]
    fn persistence_ping_pong_never_reaches_top() {
        // A and B alternate in a 2-way set: each access finds the other
        // block younger or equal, so neither ever ages past 1.
        let mut p = AbstractCache::new(DomainKind::Persistence, 1, 2);
        for _ in 0..8 {
            p.access(0);
            p.access(8);
        }
        assert!(p.age(0).unwrap() < 2);
        assert!(p.age(8).unwrap() < 2);
    }

    #[test]
    fn maybe_access_joins_with_the_unchanged_state() {
        // Must: a maybe-access cannot create a guarantee.
        let mut m = AbstractCache::new(DomainKind::Must, 1, 4);
        m.access_maybe(0);
        assert!(!m.contains(0));
        // But it conservatively ages existing guarantees.
        m.access(8);
        m.access_maybe(0);
        assert_eq!(m.age(8), Some(1));

        // May: a maybe-access does introduce the block (it may now be
        // resident) without aging others.
        let mut y = AbstractCache::new(DomainKind::May, 1, 4);
        y.access(8);
        y.access_maybe(0);
        assert_eq!(y.age(0), Some(0));
        assert_eq!(y.age(8), Some(0));
    }

    #[test]
    fn blocks_map_to_distinct_sets() {
        let mut m = AbstractCache::new(DomainKind::Must, 4, 1);
        m.access(0);
        m.access(1);
        m.access(2);
        // Different sets: direct-mapped but no interference.
        assert!(m.contains(0) && m.contains(1) && m.contains(2));
        // Same set as 0 (4 sets): 4 evicts 0's guarantee.
        m.access(4);
        assert!(!m.contains(0));
    }
}
