//! The guaranteed-bounds report: per-level classification counts,
//! miss bounds, cycle bounds, and the sim-vs-bounds check.

use mlc_check::{Diagnostic, Report, RuleId, SourceMap};
use mlc_core::Table;
use mlc_obs::json::JsonValue;

/// Guaranteed read-miss bounds and classification counts for one level.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LevelBounds {
    /// Level name from the hierarchy configuration.
    pub name: String,
    /// Read references that can arrive at this level (CAC ≠ N).
    pub reads_max: u64,
    /// Guaranteed lower bound on read misses at this level.
    pub lo: u64,
    /// Guaranteed upper bound on read misses at this level.
    pub hi: u64,
    /// Read positions classified always-hit.
    pub always_hit: u64,
    /// Read positions classified always-miss.
    pub always_miss: u64,
    /// Read positions classified first-miss (persistent block).
    pub first_miss: u64,
    /// Read positions the analysis could not classify.
    pub not_classified: u64,
    /// Read positions guaranteed never to reach this level (CAC = N).
    pub filtered: u64,
}

impl LevelBounds {
    /// An empty bounds row for a named level.
    pub fn new(name: &str) -> Self {
        LevelBounds {
            name: name.to_string(),
            ..LevelBounds::default()
        }
    }

    /// Whether a measured miss count falls inside `[lo, hi]`.
    pub fn contains(&self, measured: u64) -> bool {
        self.lo <= measured && measured <= self.hi
    }
}

/// The full static-analysis result for one machine/trace pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsReport {
    /// Per-level bounds, outermost (L1) first.
    pub levels: Vec<LevelBounds>,
    /// Total trace records analysed.
    pub trace_records: u64,
    /// Read references (instruction fetches + loads) in the trace.
    pub read_records: u64,
    /// Whether write traffic forced the conservative widening below L1.
    pub writes_widen: bool,
    /// Guaranteed lower bound on read-path cycles.
    pub read_cycles_lo: u64,
    /// Guaranteed upper bound on read-path cycles (the WCET figure).
    pub read_cycles_hi: u64,
}

impl BoundsReport {
    /// Whether every measured per-level read-miss count falls inside
    /// its bounds. Length mismatches count as a violation.
    pub fn contains(&self, measured: &[u64]) -> bool {
        measured.len() == self.levels.len()
            && self
                .levels
                .iter()
                .zip(measured)
                .all(|(b, &m)| b.contains(m))
    }

    /// Renders the per-level bounds as a text table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Guaranteed read-miss bounds",
            &[
                "level", "reads", "lo", "hi", "AH", "AM", "FM", "NC", "filtered",
            ],
        );
        for b in &self.levels {
            t.row(vec![
                b.name.clone(),
                b.reads_max.to_string(),
                b.lo.to_string(),
                b.hi.to_string(),
                b.always_hit.to_string(),
                b.always_miss.to_string(),
                b.first_miss.to_string(),
                b.not_classified.to_string(),
                b.filtered.to_string(),
            ]);
        }
        t
    }

    /// Serialises the report under the `mlc-bounds/1` schema.
    pub fn to_json(&self) -> JsonValue {
        let levels: Vec<JsonValue> = self
            .levels
            .iter()
            .map(|b| {
                JsonValue::object([
                    ("name".into(), b.name.as_str().into()),
                    ("reads_max".into(), b.reads_max.into()),
                    ("lo".into(), b.lo.into()),
                    ("hi".into(), b.hi.into()),
                    ("always_hit".into(), b.always_hit.into()),
                    ("always_miss".into(), b.always_miss.into()),
                    ("first_miss".into(), b.first_miss.into()),
                    ("not_classified".into(), b.not_classified.into()),
                    ("filtered".into(), b.filtered.into()),
                ])
            })
            .collect();
        JsonValue::object([
            ("schema".into(), "mlc-bounds/1".into()),
            ("trace_records".into(), self.trace_records.into()),
            ("read_records".into(), self.read_records.into()),
            ("writes_widen".into(), self.writes_widen.into()),
            ("levels".into(), JsonValue::Array(levels)),
            (
                "read_cycles".into(),
                JsonValue::object([
                    ("lo".into(), self.read_cycles_lo.into()),
                    ("hi".into(), self.read_cycles_hi.into()),
                ]),
            ),
        ])
    }

    /// Checks measured per-level read-miss counts against the bounds,
    /// reporting violations through the lint diagnostics engine:
    /// MLC020 (error) when a level's measured count escapes `[lo, hi]`,
    /// MLC021 (advice) when a level's bounds are vacuous.
    ///
    /// `map` supplies machine-file line spans when the configuration
    /// came from a file; pass a fresh [`SourceMap`] otherwise.
    pub fn check(&self, measured: &[u64], map: &SourceMap) -> Report {
        let mut report = Report::clean();
        if measured.len() != self.levels.len() {
            report.push(Diagnostic::new(
                RuleId::BoundsViolation,
                format!(
                    "measured {} levels but the static analysis covered {}",
                    measured.len(),
                    self.levels.len()
                ),
                None,
            ));
            return report;
        }
        for (i, (b, &m)) in self.levels.iter().zip(measured).enumerate() {
            let span = map.level_section(i);
            if !b.contains(m) {
                report.push(Diagnostic::new(
                    RuleId::BoundsViolation,
                    format!(
                        "{}: measured {m} read misses outside the guaranteed [{}, {}]",
                        b.name, b.lo, b.hi
                    ),
                    span,
                ));
            }
            if b.reads_max > 0 && b.lo == 0 && b.hi == b.reads_max {
                report.push(Diagnostic::new(
                    RuleId::BoundsVacuous,
                    format!(
                        "{}: bounds [0, {}] span every arriving read; the analysis \
                         learned nothing at this level",
                        b.name, b.hi
                    ),
                    span,
                ));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoundsReport {
        BoundsReport {
            levels: vec![
                LevelBounds {
                    name: "L1".into(),
                    reads_max: 100,
                    lo: 10,
                    hi: 40,
                    always_hit: 60,
                    always_miss: 10,
                    first_miss: 20,
                    not_classified: 10,
                    filtered: 0,
                },
                LevelBounds {
                    name: "L2".into(),
                    reads_max: 40,
                    lo: 0,
                    hi: 40,
                    not_classified: 40,
                    ..LevelBounds::default()
                },
            ],
            trace_records: 120,
            read_records: 100,
            writes_widen: true,
            read_cycles_lo: 130,
            read_cycles_hi: 1180,
        }
    }

    #[test]
    fn contains_checks_every_level() {
        let r = sample();
        assert!(r.contains(&[10, 0]));
        assert!(r.contains(&[40, 40]));
        assert!(!r.contains(&[9, 0]));
        assert!(!r.contains(&[41, 0]));
        assert!(!r.contains(&[10]));
    }

    #[test]
    fn json_carries_the_schema_tag() {
        let json = sample().to_json().to_string_compact();
        assert!(json.contains("\"schema\":\"mlc-bounds/1\""));
        assert!(json.contains("\"writes_widen\":true"));
        assert!(json.contains("\"lo\":10"));
    }

    #[test]
    fn check_flags_violation_and_vacuous_bounds() {
        let r = sample();
        let map = SourceMap::new();
        let ok = r.check(&[25, 5], &map);
        // L2's [0, 40] over 40 reads is vacuous; no violation.
        assert_eq!(ok.error_count(), 0);
        assert_eq!(ok.advice_count(), 1);
        assert_eq!(ok.diagnostics[0].rule, RuleId::BoundsVacuous);

        let bad = r.check(&[50, 5], &map);
        assert_eq!(bad.error_count(), 1);
        assert_eq!(bad.diagnostics[0].rule, RuleId::BoundsViolation);
    }

    #[test]
    fn length_mismatch_is_a_violation() {
        let r = sample();
        let report = r.check(&[25], &SourceMap::new());
        assert!(report.has_errors());
    }

    #[test]
    fn table_has_one_row_per_level() {
        assert_eq!(sample().table().len(), 2);
    }
}
