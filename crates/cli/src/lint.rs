//! Shared lint driver for the CLI binaries.
//!
//! `mlc-lint` analyzes machine description files on their own; `mlc-run`
//! and `mlc-sweep` accept `--lint` to vet a machine before spending
//! cycles simulating it. All three funnel through [`lint_machine_text`],
//! so a parse failure and a rule violation surface through the same
//! [`Report`].

use mlc_check::{lint, Report, SourceMap};
use mlc_sim::HierarchyConfig;

use crate::machine_file::parse_machine_with_spans;

/// The outcome of linting one machine description text.
#[derive(Debug, Clone)]
pub struct LintOutcome {
    /// The findings; a lone `MLC000` when the text did not parse.
    pub report: Report,
    /// The parsed (but unvalidated) configuration, when parsing worked.
    pub config: Option<HierarchyConfig>,
}

/// Parses and lints a machine description. Syntax errors become an
/// `MLC000` diagnostic rather than a hard failure, so callers can render
/// every problem through one report.
pub fn lint_machine_text(text: &str) -> LintOutcome {
    match parse_machine_with_spans(text) {
        Ok((config, map)) => LintOutcome {
            report: lint(&config, &map),
            config: Some(config),
        },
        Err(e) => {
            let mut report = Report::clean();
            report.push(e.to_diagnostic());
            LintOutcome {
                report,
                config: None,
            }
        }
    }
}

/// Lints a configuration built in code (no machine file, so diagnostics
/// carry no line spans).
pub fn lint_config(config: &HierarchyConfig) -> Report {
    lint(config, &SourceMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_check::{RuleId, Severity};

    #[test]
    fn parse_failure_becomes_mlc000() {
        let outcome = lint_machine_text("[level L1]\nsize ~ 4K\n");
        assert!(outcome.config.is_none());
        assert_eq!(outcome.report.diagnostics.len(), 1);
        let d = &outcome.report.diagnostics[0];
        assert_eq!(d.rule, RuleId::ParseError);
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.span.map(|s| s.start), Some(2));
    }

    #[test]
    fn clean_machine_yields_clean_report() {
        let outcome = lint_machine_text(crate::machine_file::base_machine_text());
        assert!(outcome.report.is_clean(), "{:?}", outcome.report);
        assert!(outcome.config.is_some());
    }

    #[test]
    fn code_built_config_lints_without_spans() {
        let report = lint_config(&mlc_sim::machine::base_machine());
        assert!(report.is_clean());
    }
}
