//! Shared observability plumbing for the CLI binaries: the `--progress`,
//! `--metrics-out`, and `--manifest-out` flags, the event-trace flags
//! (`--events-out`, `--events-every`, `--perfetto-out`), and the
//! run-end fan-out that writes the manifest sidecar, the metrics
//! JSON-lines file, and the sampled event traces.
//!
//! Every binary follows the same shape:
//!
//! 1. append [`obs_flags`] (and, for simulators, [`event_flags`]) to its
//!    flag list;
//! 2. build an [`Observability`] (and [`EventSink`]) from the parsed
//!    [`Args`] — output paths are validated *here*, before any work, so
//!    a typo fails in milliseconds instead of after a long run;
//! 3. thread `obs.metrics` (and a [`Progress`] from
//!    [`Observability::progress`]) through the work;
//! 4. call [`Observability::finish`] with the populated
//!    [`RunManifest`] once the run completes.
//!
//! All failures surface as [`ObsError`], which names the flag and the
//! offending path — never a panic.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

use mlc_obs::{
    write_chrome_trace, write_events_jsonl, EventTracer, Metrics, Progress, RunManifest,
};

use crate::args::{Args, Flag};

/// A problem with an observability output: the flag that introduced the
/// path, the path itself, and what went wrong.
#[derive(Debug)]
pub struct ObsError {
    flag: &'static str,
    path: PathBuf,
    problem: ObsProblem,
}

#[derive(Debug)]
enum ObsProblem {
    /// The path is unusable on its face (empty, a directory, parent
    /// missing) — caught before the run starts.
    Invalid(String),
    /// Writing the file failed at the end of the run.
    Io(io::Error),
}

impl ObsError {
    fn invalid(flag: &'static str, path: &Path, why: impl Into<String>) -> Self {
        ObsError {
            flag,
            path: path.to_path_buf(),
            problem: ObsProblem::Invalid(why.into()),
        }
    }

    fn io(flag: &'static str, path: &Path, source: io::Error) -> Self {
        ObsError {
            flag,
            path: path.to_path_buf(),
            problem: ObsProblem::Io(source),
        }
    }

    /// The flag whose value caused the failure (e.g. `--metrics-out`).
    pub fn flag(&self) -> &str {
        self.flag
    }

    /// The offending path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.problem {
            ObsProblem::Invalid(why) => {
                write!(f, "--{} {}: {}", self.flag, self.path.display(), why)
            }
            ObsProblem::Io(e) => {
                write!(f, "--{} {}: {}", self.flag, self.path.display(), e)
            }
        }
    }
}

impl Error for ObsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.problem {
            ObsProblem::Io(e) => Some(e),
            ObsProblem::Invalid(_) => None,
        }
    }
}

/// Rejects paths that cannot possibly be written: empty strings,
/// existing directories, and paths whose parent directory is missing.
fn validate_sink(flag: &'static str, path: &Path) -> Result<(), ObsError> {
    if path.as_os_str().is_empty() {
        return Err(ObsError::invalid(flag, path, "path is empty"));
    }
    if path.is_dir() {
        return Err(ObsError::invalid(flag, path, "path is a directory"));
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(ObsError::invalid(
                flag,
                path,
                format!("parent directory {} does not exist", parent.display()),
            ));
        }
    }
    Ok(())
}

/// The three flags shared by every observability-aware binary.
pub fn obs_flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "progress",
            value: "",
            help: "report sweep progress on stderr (points done/total/ETA)",
        },
        Flag {
            name: "metrics-out",
            value: "PATH",
            help: "write structured metrics as JSON lines (mlc-metrics/1)",
        },
        Flag {
            name: "manifest-out",
            value: "PATH",
            help: "write the run manifest (default: <metrics-out>.manifest.json)",
        },
    ]
}

/// The event-trace flags for simulating binaries: attribution printing
/// and the sampled event outputs.
pub fn event_flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "attribution",
            value: "",
            help: "print the execution-time attribution (cycle ledger vs Equation 1)",
        },
        Flag {
            name: "events-out",
            value: "PATH",
            help: "write a sampled access trace as JSON lines (mlc-events/1)",
        },
        Flag {
            name: "events-every",
            value: "N",
            help: "sample every Nth reference for the event trace (default 64)",
        },
        Flag {
            name: "perfetto-out",
            value: "PATH",
            help: "write the sampled events as Chrome trace-event JSON (Perfetto-loadable)",
        },
    ]
}

/// Per-run observability state resolved from the command line.
#[derive(Debug)]
pub struct Observability {
    /// The metrics handle to thread through the run; enabled exactly
    /// when `--metrics-out` or `--manifest-out` was given.
    pub metrics: Metrics,
    progress: bool,
    metrics_out: Option<PathBuf>,
    manifest_out: Option<PathBuf>,
}

impl Observability {
    /// Resolves the observability flags. When only `--metrics-out` is
    /// given, the manifest lands next to it with the extension replaced
    /// by `manifest.json` (`m.jsonl` → `m.manifest.json`).
    ///
    /// # Errors
    ///
    /// Returns an [`ObsError`] when an output path is unwritable on its
    /// face (empty, a directory, or in a missing directory), so bad
    /// paths fail before the run rather than after it.
    pub fn from_args(args: &Args) -> Result<Self, ObsError> {
        let metrics_out = args.get("metrics-out").map(PathBuf::from);
        let manifest_out = args.get("manifest-out").map(PathBuf::from).or_else(|| {
            metrics_out
                .as_ref()
                .map(|p| p.with_extension("manifest.json"))
        });
        if let Some(path) = &metrics_out {
            validate_sink("metrics-out", path)?;
        }
        if let Some(path) = &manifest_out {
            validate_sink("manifest-out", path)?;
        }
        let metrics = if metrics_out.is_some() || manifest_out.is_some() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        };
        Ok(Observability {
            metrics,
            progress: args.has("progress"),
            metrics_out,
            manifest_out,
        })
    }

    /// A progress reporter over `total` work items: printing when
    /// `--progress` was passed, silent (but still counting) otherwise.
    pub fn progress(&self, label: &str, total: u64) -> Progress {
        if self.progress {
            Progress::new(label, total)
        } else {
            Progress::disabled()
        }
    }

    /// Whether `--progress` was passed.
    pub fn progress_enabled(&self) -> bool {
        self.progress
    }

    /// Finalises the run: stamps the metrics snapshot's phase timings
    /// into `manifest`, then writes the manifest and the metrics
    /// JSON-lines file to their resolved paths (each skipped when not
    /// requested).
    ///
    /// # Errors
    ///
    /// Returns an [`ObsError`] naming the flag and path of any file
    /// that failed to write.
    pub fn finish(&self, manifest: &mut RunManifest) -> Result<(), ObsError> {
        manifest.set_timings(&self.metrics.snapshot());
        if let Some(path) = &self.manifest_out {
            manifest
                .write_to(path)
                .map_err(|e| ObsError::io("manifest-out", path, e))?;
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = &self.metrics_out {
            let file = File::create(path).map_err(|e| ObsError::io("metrics-out", path, e))?;
            self.metrics
                .write_jsonl(file, manifest.tool(), manifest.version())
                .map_err(|e| ObsError::io("metrics-out", path, e))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

/// Event-trace outputs resolved from the command line: where (if
/// anywhere) the sampled `mlc-events/1` JSONL and the Chrome
/// trace-event JSON go, and the sampling period.
#[derive(Debug)]
pub struct EventSink {
    events_out: Option<PathBuf>,
    perfetto_out: Option<PathBuf>,
    every: u64,
}

impl EventSink {
    /// Resolves the event flags, validating output paths up front.
    ///
    /// # Errors
    ///
    /// Returns an [`ObsError`] for unwritable paths, or an argument
    /// error for a malformed or zero `--events-every`.
    pub fn from_args(args: &Args) -> Result<Self, Box<dyn Error>> {
        let events_out = args.get("events-out").map(PathBuf::from);
        let perfetto_out = args.get("perfetto-out").map(PathBuf::from);
        if let Some(path) = &events_out {
            validate_sink("events-out", path)?;
        }
        if let Some(path) = &perfetto_out {
            validate_sink("perfetto-out", path)?;
        }
        let every: u64 = args.get_or("events-every", 64)?;
        if every == 0 {
            return Err("--events-every must be positive".into());
        }
        Ok(EventSink {
            events_out,
            perfetto_out,
            every,
        })
    }

    /// Whether any event output was requested.
    pub fn wants_events(&self) -> bool {
        self.events_out.is_some() || self.perfetto_out.is_some()
    }

    /// The sampling period to hand the simulator: `Some(N)` when an
    /// event output was requested, `None` (tracer off, zero overhead)
    /// otherwise.
    pub fn sample_every(&self) -> Option<u64> {
        self.wants_events().then_some(self.every)
    }

    /// Writes the requested event files from a completed run's tracer.
    ///
    /// # Errors
    ///
    /// Returns an [`ObsError`] naming the flag and path of any file
    /// that failed to write.
    pub fn write(
        &self,
        tracer: &EventTracer,
        level_names: &[String],
        cpu_cycle_ns: f64,
        tool: &str,
        version: &str,
    ) -> Result<(), ObsError> {
        let names: Vec<&str> = level_names.iter().map(String::as_str).collect();
        if let Some(path) = &self.events_out {
            let file = File::create(path).map_err(|e| ObsError::io("events-out", path, e))?;
            write_events_jsonl(file, tool, version, &names, tracer)
                .map_err(|e| ObsError::io("events-out", path, e))?;
            eprintln!(
                "wrote {} ({} events)",
                path.display(),
                tracer.events().len()
            );
        }
        if let Some(path) = &self.perfetto_out {
            let file = File::create(path).map_err(|e| ObsError::io("perfetto-out", path, e))?;
            write_chrome_trace(file, cpu_cycle_ns, &names, tracer)
                .map_err(|e| ObsError::io("perfetto-out", path, e))?;
            eprintln!(
                "wrote {} ({} events)",
                path.display(),
                tracer.events().len()
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let mut flags = obs_flags();
        flags.extend(event_flags());
        let argv = std::iter::once("prog".to_string()).chain(tokens.iter().map(|s| s.to_string()));
        Args::parse("test", flags, argv).unwrap()
    }

    #[test]
    fn disabled_without_flags() {
        let obs = Observability::from_args(&parse(&[])).unwrap();
        assert!(!obs.metrics.is_enabled());
        assert!(!obs.progress_enabled());
        assert!(obs.metrics_out.is_none() && obs.manifest_out.is_none());
    }

    #[test]
    fn metrics_out_implies_manifest_sidecar() {
        let obs = Observability::from_args(&parse(&["--metrics-out", "m.jsonl"])).unwrap();
        assert!(obs.metrics.is_enabled());
        assert_eq!(obs.metrics_out.as_deref(), Some("m.jsonl".as_ref()));
        assert_eq!(
            obs.manifest_out.as_deref(),
            Some("m.manifest.json".as_ref())
        );
    }

    #[test]
    fn explicit_manifest_path_wins() {
        let obs = Observability::from_args(&parse(&[
            "--metrics-out",
            "m.jsonl",
            "--manifest-out",
            "custom.json",
        ]))
        .unwrap();
        assert_eq!(obs.manifest_out.as_deref(), Some("custom.json".as_ref()));
    }

    #[test]
    fn manifest_only_still_enables_metrics() {
        let obs = Observability::from_args(&parse(&["--manifest-out", "run.json"])).unwrap();
        assert!(obs.metrics.is_enabled());
        assert!(obs.metrics_out.is_none());
    }

    #[test]
    fn bad_paths_fail_before_the_run() {
        // Missing parent directory.
        let err = Observability::from_args(&parse(&["--metrics-out", "no/such/dir/m.jsonl"]))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--metrics-out"), "{msg}");
        assert!(msg.contains("does not exist"), "{msg}");
        assert_eq!(err.flag(), "metrics-out");
        assert!(err.source().is_none());

        // Empty path.
        let err = Observability::from_args(&parse(&["--manifest-out", ""])).unwrap_err();
        assert!(err.to_string().contains("path is empty"));

        // An existing directory.
        let dir = std::env::temp_dir();
        let err = Observability::from_args(&parse(&["--metrics-out", dir.to_str().unwrap()]))
            .unwrap_err();
        assert!(err.to_string().contains("is a directory"));
    }

    #[test]
    fn event_sink_defaults_off_with_64_period() {
        let sink = EventSink::from_args(&parse(&[])).unwrap();
        assert!(!sink.wants_events());
        assert_eq!(sink.sample_every(), None);
        let sink = EventSink::from_args(&parse(&["--events-out", "e.jsonl"])).unwrap();
        assert!(sink.wants_events());
        assert_eq!(sink.sample_every(), Some(64));
    }

    #[test]
    fn event_sink_rejects_bad_inputs() {
        let err =
            EventSink::from_args(&parse(&["--events-out", "no/such/dir/e.jsonl"])).unwrap_err();
        assert!(err.to_string().contains("--events-out"));
        let err = EventSink::from_args(&parse(&["--events-out", "e.jsonl", "--events-every", "0"]))
            .unwrap_err();
        assert!(err.to_string().contains("positive"));
        let err = EventSink::from_args(&parse(&["--perfetto-out", ""])).unwrap_err();
        assert!(err.to_string().contains("--perfetto-out"));
    }

    #[test]
    fn event_sink_writes_both_formats() {
        let dir = std::env::temp_dir().join("mlc_cli_event_sink_test");
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("e.jsonl");
        let perfetto = dir.join("p.json");
        let sink = EventSink::from_args(&parse(&[
            "--events-out",
            events.to_str().unwrap(),
            "--perfetto-out",
            perfetto.to_str().unwrap(),
            "--events-every",
            "8",
        ]))
        .unwrap();
        assert_eq!(sink.sample_every(), Some(8));
        let mut tracer = EventTracer::new(8);
        tracer.push(mlc_obs::SimEvent {
            index: 0,
            kind: mlc_obs::EventKind::Read,
            addr: 0x40,
            start_cycle: 10,
            cycles: 31,
            stall_cycles: 30,
            serviced: 2,
        });
        let names = vec!["L1".to_string(), "L2".to_string()];
        sink.write(&tracer, &names, 10.0, "mlc-test", "0.0.0")
            .unwrap();
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(jsonl.contains(r#""schema":"mlc-events/1""#), "{jsonl}");
        let chrome = std::fs::read_to_string(&perfetto).unwrap();
        assert!(chrome.contains(r#""traceEvents""#), "{chrome}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_gates_printing_not_counting() {
        let on = Observability::from_args(&parse(&["--progress"])).unwrap();
        assert!(on.progress_enabled());
        let p = Observability::from_args(&parse(&[]))
            .unwrap()
            .progress("x", 10);
        p.tick(3);
        assert_eq!(p.done(), 3);
    }

    #[test]
    fn finish_writes_both_files() {
        let dir = std::env::temp_dir().join("mlc_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("m.jsonl");
        let obs =
            Observability::from_args(&parse(&["--metrics-out", metrics_path.to_str().unwrap()]))
                .unwrap();
        obs.metrics.add("refs", 42);
        let mut manifest = RunManifest::new("mlc-test", "0.0.0");
        obs.finish(&mut manifest).unwrap();
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(jsonl.contains(r#""name":"refs""#), "{jsonl}");
        let manifest_text = std::fs::read_to_string(dir.join("m.manifest.json")).unwrap();
        assert!(manifest_text.contains("\"schema\": \"mlc-manifest/1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
