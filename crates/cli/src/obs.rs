//! Shared observability plumbing for the CLI binaries: the `--progress`,
//! `--metrics-out`, and `--manifest-out` flags, and the run-end fan-out
//! that writes the manifest sidecar and the metrics JSON-lines file.
//!
//! Every binary follows the same shape:
//!
//! 1. append [`obs_flags`] to its flag list;
//! 2. build an [`Observability`] from the parsed [`Args`];
//! 3. thread `obs.metrics` (and a [`Progress`] from
//!    [`Observability::progress`]) through the work;
//! 4. call [`Observability::finish`] with the populated
//!    [`RunManifest`] once the run completes.

use std::fs::File;
use std::io;
use std::path::PathBuf;

use mlc_obs::{Metrics, Progress, RunManifest};

use crate::args::{Args, Flag};

/// The three flags shared by every observability-aware binary.
pub fn obs_flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "progress",
            value: "",
            help: "report sweep progress on stderr (points done/total/ETA)",
        },
        Flag {
            name: "metrics-out",
            value: "PATH",
            help: "write structured metrics as JSON lines (mlc-metrics/1)",
        },
        Flag {
            name: "manifest-out",
            value: "PATH",
            help: "write the run manifest (default: <metrics-out>.manifest.json)",
        },
    ]
}

/// Per-run observability state resolved from the command line.
#[derive(Debug)]
pub struct Observability {
    /// The metrics handle to thread through the run; enabled exactly
    /// when `--metrics-out` or `--manifest-out` was given.
    pub metrics: Metrics,
    progress: bool,
    metrics_out: Option<PathBuf>,
    manifest_out: Option<PathBuf>,
}

impl Observability {
    /// Resolves the observability flags. When only `--metrics-out` is
    /// given, the manifest lands next to it with the extension replaced
    /// by `manifest.json` (`m.jsonl` → `m.manifest.json`).
    pub fn from_args(args: &Args) -> Self {
        let metrics_out = args.get("metrics-out").map(PathBuf::from);
        let manifest_out = args.get("manifest-out").map(PathBuf::from).or_else(|| {
            metrics_out
                .as_ref()
                .map(|p| p.with_extension("manifest.json"))
        });
        let metrics = if metrics_out.is_some() || manifest_out.is_some() {
            Metrics::enabled()
        } else {
            Metrics::disabled()
        };
        Observability {
            metrics,
            progress: args.has("progress"),
            metrics_out,
            manifest_out,
        }
    }

    /// A progress reporter over `total` work items: printing when
    /// `--progress` was passed, silent (but still counting) otherwise.
    pub fn progress(&self, label: &str, total: u64) -> Progress {
        if self.progress {
            Progress::new(label, total)
        } else {
            Progress::disabled()
        }
    }

    /// Whether `--progress` was passed.
    pub fn progress_enabled(&self) -> bool {
        self.progress
    }

    /// Finalises the run: stamps the metrics snapshot's phase timings
    /// into `manifest`, then writes the manifest and the metrics
    /// JSON-lines file to their resolved paths (each skipped when not
    /// requested).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing either file.
    pub fn finish(&self, manifest: &mut RunManifest) -> io::Result<()> {
        manifest.set_timings(&self.metrics.snapshot());
        if let Some(path) = &self.manifest_out {
            manifest.write_to(path)?;
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = &self.metrics_out {
            let file = File::create(path)?;
            self.metrics
                .write_jsonl(file, manifest.tool(), manifest.version())?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        let argv = std::iter::once("prog".to_string()).chain(tokens.iter().map(|s| s.to_string()));
        Args::parse("test", obs_flags(), argv).unwrap()
    }

    #[test]
    fn disabled_without_flags() {
        let obs = Observability::from_args(&parse(&[]));
        assert!(!obs.metrics.is_enabled());
        assert!(!obs.progress_enabled());
        assert!(obs.metrics_out.is_none() && obs.manifest_out.is_none());
    }

    #[test]
    fn metrics_out_implies_manifest_sidecar() {
        let obs = Observability::from_args(&parse(&["--metrics-out", "out/m.jsonl"]));
        assert!(obs.metrics.is_enabled());
        assert_eq!(obs.metrics_out.as_deref(), Some("out/m.jsonl".as_ref()));
        assert_eq!(
            obs.manifest_out.as_deref(),
            Some("out/m.manifest.json".as_ref())
        );
    }

    #[test]
    fn explicit_manifest_path_wins() {
        let obs = Observability::from_args(&parse(&[
            "--metrics-out",
            "m.jsonl",
            "--manifest-out",
            "custom.json",
        ]));
        assert_eq!(obs.manifest_out.as_deref(), Some("custom.json".as_ref()));
    }

    #[test]
    fn manifest_only_still_enables_metrics() {
        let obs = Observability::from_args(&parse(&["--manifest-out", "run.json"]));
        assert!(obs.metrics.is_enabled());
        assert!(obs.metrics_out.is_none());
    }

    #[test]
    fn progress_gates_printing_not_counting() {
        let on = Observability::from_args(&parse(&["--progress"]));
        assert!(on.progress_enabled());
        let p = Observability::from_args(&parse(&[])).progress("x", 10);
        p.tick(3);
        assert_eq!(p.done(), 3);
    }

    #[test]
    fn finish_writes_both_files() {
        let dir = std::env::temp_dir().join("mlc_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics_path = dir.join("m.jsonl");
        let obs =
            Observability::from_args(&parse(&["--metrics-out", metrics_path.to_str().unwrap()]));
        obs.metrics.add("refs", 42);
        let mut manifest = RunManifest::new("mlc-test", "0.0.0");
        obs.finish(&mut manifest).unwrap();
        let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(jsonl.contains(r#""name":"refs""#), "{jsonl}");
        let manifest_text = std::fs::read_to_string(dir.join("m.manifest.json")).unwrap();
        assert!(manifest_text.contains("\"schema\": \"mlc-manifest/1\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
