//! Minimal `--flag value` argument parsing for the CLI binaries.
//!
//! Deliberately tiny: flags are `--name value` pairs (plus `--help`);
//! every binary declares its flags up front so typos are caught and the
//! usage text is generated from one place.

use std::collections::BTreeMap;
use std::fmt;

/// A declared flag: name, value placeholder, and help text.
///
/// An empty `value` placeholder declares a boolean switch: the flag takes
/// no argument and [`Args::has`] reports its presence.
#[derive(Debug, Clone)]
pub struct Flag {
    /// Flag name without the leading dashes (e.g. `"records"`).
    pub name: &'static str,
    /// Placeholder shown in usage (e.g. `"N"`); empty for a switch.
    pub value: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// A parse failure, carrying a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments for one binary.
#[derive(Debug, Clone)]
pub struct Args {
    program: String,
    about: &'static str,
    flags: Vec<Flag>,
    values: BTreeMap<String, String>,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Parses `std::env::args()` against the declared flags.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] for unknown flags or missing values. If
    /// `--help` is present, prints usage and exits successfully.
    pub fn parse(
        about: &'static str,
        flags: Vec<Flag>,
        argv: impl IntoIterator<Item = String>,
    ) -> Result<Args, ArgError> {
        let mut argv = argv.into_iter();
        let program = argv.next().unwrap_or_else(|| "mlc".into());
        let mut args = Args {
            program,
            about,
            flags,
            values: BTreeMap::new(),
            positional: Vec::new(),
        };
        while let Some(token) = argv.next() {
            if token == "--help" || token == "-h" {
                println!("{}", args.usage());
                std::process::exit(0);
            }
            if let Some(name) = token.strip_prefix("--") {
                let Some(flag) = args.flags.iter().find(|f| f.name == name) else {
                    return Err(ArgError(format!(
                        "unknown flag --{name}\n\n{}",
                        args.usage()
                    )));
                };
                if flag.value.is_empty() {
                    // A boolean switch: presence is the value.
                    args.values.insert(name.to_string(), "true".to_string());
                } else {
                    let value = argv
                        .next()
                        .ok_or_else(|| ArgError(format!("flag --{name} requires a value")))?;
                    args.values.insert(name.to_string(), value);
                }
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// The raw value of a flag, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was passed.
    pub fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// A flag parsed to `T`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value {v:?} for --{name}"))),
        }
    }

    /// A required flag parsed to `T`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] if missing or unparseable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self.get(name).ok_or_else(|| {
            ArgError(format!(
                "missing required flag --{name}\n\n{}",
                self.usage()
            ))
        })?;
        v.parse()
            .map_err(|_| ArgError(format!("invalid value {v:?} for --{name}")))
    }

    /// The generated usage text.
    pub fn usage(&self) -> String {
        let mut out = format!(
            "{}\n\nusage: {} [flags]\n\nflags:\n",
            self.about, self.program
        );
        for f in &self.flags {
            if f.value.is_empty() {
                out.push_str(&format!("  --{}  {}\n", f.name, f.help));
            } else {
                out.push_str(&format!("  --{} <{}>  {}\n", f.name, f.value, f.help));
            }
        }
        out.push_str("  --help  show this message\n");
        out
    }
}

/// Parses a human-friendly size: plain bytes, or with a `K`/`M`/`G`
/// suffix (powers of two).
///
/// # Errors
///
/// Returns an [`ArgError`] for malformed sizes.
///
/// # Examples
///
/// ```
/// use mlc_cli::args::parse_size;
///
/// assert_eq!(parse_size("512K").unwrap(), 512 * 1024);
/// assert_eq!(parse_size("4M").unwrap(), 4 * 1024 * 1024);
/// assert_eq!(parse_size("64").unwrap(), 64);
/// assert!(parse_size("12Q").is_err());
/// ```
pub fn parse_size(text: &str) -> Result<u64, ArgError> {
    let text = text.trim();
    let (digits, mult) = match text.chars().last() {
        Some('K') | Some('k') => (&text[..text.len() - 1], 1u64 << 10),
        Some('M') | Some('m') => (&text[..text.len() - 1], 1u64 << 20),
        Some('G') | Some('g') => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| ArgError(format!("invalid size {text:?}")))?;
    n.checked_mul(mult)
        .ok_or_else(|| ArgError(format!("size {text:?} overflows")))
}

/// Parses an inclusive power-of-two size range `LO:HI` into a ladder,
/// or a single size into a one-element list.
///
/// # Errors
///
/// Returns an [`ArgError`] for malformed ranges.
///
/// # Examples
///
/// ```
/// use mlc_cli::args::parse_size_range;
///
/// let sizes = parse_size_range("4K:16K").unwrap();
/// assert_eq!(sizes, vec![4096, 8192, 16384]);
/// assert_eq!(parse_size_range("64K").unwrap(), vec![65536]);
/// ```
pub fn parse_size_range(text: &str) -> Result<Vec<u64>, ArgError> {
    match text.split_once(':') {
        None => Ok(vec![parse_size(text)?]),
        Some((lo, hi)) => {
            let lo = parse_size(lo)?;
            let hi = parse_size(hi)?;
            if !lo.is_power_of_two() || !hi.is_power_of_two() || lo > hi {
                return Err(ArgError(format!(
                    "range {text:?} must be powers of two with LO <= HI"
                )));
            }
            let mut out = Vec::new();
            let mut s = lo;
            while s <= hi {
                out.push(s);
                s <<= 1;
            }
            Ok(out)
        }
    }
}

/// Parses a flag value against a closed set of named choices, returning
/// the mapped value and, on failure, an error that lists every valid
/// spelling.
///
/// # Errors
///
/// Returns an [`ArgError`] naming the flag and the valid choices.
///
/// # Examples
///
/// ```
/// use mlc_cli::args::parse_choice;
///
/// let mode = parse_choice("mode", "fast", &[("fast", 1), ("slow", 2)]).unwrap();
/// assert_eq!(mode, 1);
/// let err = parse_choice::<i32>("mode", "warp", &[("fast", 1), ("slow", 2)]).unwrap_err();
/// assert!(err.to_string().contains("fast, slow"));
/// ```
pub fn parse_choice<T: Clone>(
    flag: &str,
    value: &str,
    choices: &[(&str, T)],
) -> Result<T, ArgError> {
    choices
        .iter()
        .find(|(name, _)| *name == value)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| {
            let names: Vec<&str> = choices.iter().map(|(name, _)| *name).collect();
            ArgError(format!(
                "invalid value {value:?} for --{flag} (choices: {})",
                names.join(", ")
            ))
        })
}

/// Parses an inclusive integer range `LO:HI` (or single value).
///
/// # Errors
///
/// Returns an [`ArgError`] for malformed ranges.
pub fn parse_int_range(text: &str) -> Result<Vec<u64>, ArgError> {
    match text.split_once(':') {
        None => Ok(vec![text
            .parse()
            .map_err(|_| ArgError(format!("invalid integer {text:?}")))?]),
        Some((lo, hi)) => {
            let lo: u64 = lo
                .parse()
                .map_err(|_| ArgError(format!("invalid integer {lo:?}")))?;
            let hi: u64 = hi
                .parse()
                .map_err(|_| ArgError(format!("invalid integer {hi:?}")))?;
            if lo > hi {
                return Err(ArgError(format!("range {text:?} has LO > HI")));
            }
            Ok((lo..=hi).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags() -> Vec<Flag> {
        vec![
            Flag {
                name: "records",
                value: "N",
                help: "trace length",
            },
            Flag {
                name: "out",
                value: "PATH",
                help: "output file",
            },
        ]
    }

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        let argv = std::iter::once("prog".to_string()).chain(tokens.iter().map(|s| s.to_string()));
        Args::parse("test tool", flags(), argv)
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse(&["--records", "100", "trace.din"]).unwrap();
        assert_eq!(a.get("records"), Some("100"));
        assert_eq!(a.get_or("records", 0usize).unwrap(), 100);
        assert_eq!(a.positional, vec!["trace.din"]);
        assert_eq!(a.get("out"), None);
        assert_eq!(a.get_or("missing-ok", 7u32).unwrap(), 7);
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["--nope", "1"]).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let argv = std::iter::once("prog".to_string())
            .chain(["--verbose", "trace.din"].iter().map(|s| s.to_string()));
        let a = Args::parse(
            "test tool",
            vec![Flag {
                name: "verbose",
                value: "",
                help: "say more",
            }],
            argv,
        )
        .unwrap();
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        // The following token is positional, not the switch's value.
        assert_eq!(a.positional, vec!["trace.din"]);
        assert!(a.usage().contains("--verbose  say more"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&["--records"]).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = parse(&[]).unwrap();
        assert!(a.require::<usize>("records").is_err());
    }

    #[test]
    fn usage_lists_flags() {
        let a = parse(&[]).unwrap();
        let u = a.usage();
        assert!(u.contains("--records <N>"));
        assert!(u.contains("--out <PATH>"));
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("16").unwrap(), 16);
        assert_eq!(parse_size("2K").unwrap(), 2048);
        assert_eq!(parse_size("3m").unwrap(), 3 << 20);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert!(parse_size("x").is_err());
        assert!(parse_size("999999999999G").is_err());
    }

    #[test]
    fn size_ranges() {
        assert_eq!(
            parse_size_range("8K:32K").unwrap(),
            vec![8192, 16384, 32768]
        );
        assert_eq!(parse_size_range("4K").unwrap(), vec![4096]);
        assert!(parse_size_range("3K:8K").is_err());
        assert!(parse_size_range("32K:8K").is_err());
    }

    #[test]
    fn choices() {
        let table = [("exhaustive", 0u8), ("onepass", 1u8)];
        assert_eq!(parse_choice("engine", "onepass", &table).unwrap(), 1);
        assert_eq!(parse_choice("engine", "exhaustive", &table).unwrap(), 0);
        let err = parse_choice::<u8>("engine", "fast", &table).unwrap_err();
        assert!(err.to_string().contains("--engine"));
        assert!(err.to_string().contains("exhaustive, onepass"));
    }

    #[test]
    fn int_ranges() {
        assert_eq!(parse_int_range("1:4").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_int_range("7").unwrap(), vec![7]);
        assert!(parse_int_range("4:1").is_err());
        assert!(parse_int_range("a:b").is_err());
    }
}
