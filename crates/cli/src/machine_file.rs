//! Machine description files.
//!
//! The paper's simulator "reads a file that specifies the depth of the
//! cache hierarchy and the configuration of each cache" (§2). This
//! module reproduces that interface with a small INI-style text format:
//!
//! ```text
//! # the paper's base machine
//! cpu.cycle_ns = 10
//!
//! [level L1]
//! split = true        # 2 KB I + 2 KB D halves
//! size = 4K           # combined size
//! block = 16
//! ways = 1
//! cycles = 1
//!
//! [level L2]
//! size = 512K
//! block = 32
//! ways = 1
//! cycles = 3
//!
//! [memory]
//! read_ns = 180
//! write_ns = 100
//! gap_ns = 120
//! ```
//!
//! Sections may repeat `[level NAME]` to any depth (upstream first).
//! Optional per-level keys: `write_cycles` (default 2×`cycles`),
//! `write_buffer` (default 4), `bus_bytes` (default 16), `bus_cycles`
//! (default: the paper's convention), `replacement`
//! (`lru`/`fifo`/`random`), `write_policy` (`write-back`/`write-through`),
//! `alloc` (`allocate`/`no-allocate`), `prefetch` (`none`/`next-block`),
//! `fetch_blocks` (default 1), `sub_blocks` (default 1), `victim_entries`
//! (default 0).

use std::fmt;

use mlc_cache::{AllocPolicy, ByteSize, CacheConfig, Prefetch, Replacement, WritePolicy};
use mlc_check::{Diagnostic, RuleId, SourceMap, Span};
use mlc_sim::{CpuConfig, HierarchyConfig, LevelCacheConfig, LevelConfig, MemoryConfig};

use crate::args::{parse_size, ArgError};

/// A machine-description parse error: what went wrong and, when the
/// failure is attributable to one line, the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineFileError {
    /// 1-based line number, when a single line is at fault.
    pub line: Option<u32>,
    /// What went wrong.
    pub message: String,
}

impl MachineFileError {
    /// An error at `line` (1-based; 0 means "no particular line").
    fn at(line: usize, message: impl Into<String>) -> Self {
        MachineFileError {
            line: u32::try_from(line).ok().filter(|&l| l > 0),
            message: message.into(),
        }
    }

    /// An error about the file as a whole.
    fn whole_file(message: impl Into<String>) -> Self {
        MachineFileError {
            line: None,
            message: message.into(),
        }
    }

    /// Renders the error as an `MLC000` diagnostic, so parse failures
    /// surface through the same reporting pipeline as lint findings.
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::new(
            RuleId::ParseError,
            self.message.clone(),
            self.line.map(Span::line),
        )
    }
}

impl fmt::Display for MachineFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for MachineFileError {}

impl From<MachineFileError> for ArgError {
    fn from(e: MachineFileError) -> Self {
        ArgError(e.to_string())
    }
}

/// Parses a machine description into a [`HierarchyConfig`].
///
/// The configuration is validated; use [`parse_machine_with_spans`] to
/// obtain an unvalidated configuration plus its [`SourceMap`] (the linter
/// wants both, so that organisational errors become diagnostics rather
/// than hard failures).
///
/// # Errors
///
/// Returns an [`ArgError`] with the offending line number for syntax
/// errors, unknown keys, and invalid cache organisations.
pub fn parse_machine(text: &str) -> Result<HierarchyConfig, ArgError> {
    let (config, _) = parse_machine_with_spans(text)?;
    config
        .validate()
        .map_err(|e| ArgError(format!("invalid machine: {e}")))?;
    Ok(config)
}

/// Parses a machine description, returning the configuration together
/// with a [`SourceMap`] locating every section and key on its line.
///
/// Unlike [`parse_machine`] this does **not** run
/// [`HierarchyConfig::validate`]: syntactically well-formed but
/// organisationally invalid machines parse successfully here so the
/// linter can report every problem (rule `MLC015` and friends) instead of
/// stopping at the first.
///
/// # Errors
///
/// Returns a [`MachineFileError`] for syntax errors, unknown keys, and
/// cache geometries the builder itself rejects.
pub fn parse_machine_with_spans(
    text: &str,
) -> Result<(HierarchyConfig, SourceMap), MachineFileError> {
    let mut cpu = CpuConfig::default();
    let mut memory = MemoryConfig::default();
    let mut levels: Vec<LevelConfig> = Vec::new();
    let mut section = Section::Top;
    let mut map = SourceMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(line_no, "unterminated section header"))?
                .trim();
            if let Section::Level(b) = std::mem::replace(&mut section, Section::Top) {
                levels.push(b.build(line_no)?);
            }
            section = if header.eq_ignore_ascii_case("memory") {
                map.begin_memory(line_no as u32);
                Section::Memory
            } else if let Some(name) = header.strip_prefix("level") {
                let name = name.trim();
                if name.is_empty() {
                    return Err(err(line_no, "level section needs a name: [level L1]"));
                }
                map.begin_level(line_no as u32);
                Section::Level(LevelBuilder::new(name))
            } else {
                return Err(err(line_no, &format!("unknown section [{header}]")));
            };
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected key = value"))?;
        let key = key.trim();
        let value = value.trim();
        match &mut section {
            Section::Top => match key {
                "cpu.cycle_ns" => {
                    cpu.cycle_ns = parse_f64(value, line_no)?;
                    map.record_cpu_key(key, line_no as u32);
                }
                other => return Err(err(line_no, &format!("unknown key {other:?}"))),
            },
            Section::Memory => {
                match key {
                    "read_ns" => memory.read_ns = parse_f64(value, line_no)?,
                    "write_ns" => memory.write_ns = parse_f64(value, line_no)?,
                    "gap_ns" => memory.gap_ns = parse_f64(value, line_no)?,
                    "scale" => memory = memory.scaled(parse_f64(value, line_no)?),
                    other => return Err(err(line_no, &format!("unknown memory key {other:?}"))),
                }
                map.record_memory_key(key, line_no as u32);
            }
            Section::Level(b) => {
                b.set(key, value, line_no)?;
                map.record_level_key(key, line_no as u32);
            }
        }
    }
    if let Section::Level(b) = section {
        levels.push(b.build(0)?);
    }
    if levels.is_empty() {
        return Err(MachineFileError::whole_file(
            "machine file declares no cache levels",
        ));
    }
    Ok((
        HierarchyConfig {
            cpu,
            levels,
            memory,
        },
        map,
    ))
}

/// Renders the paper's base machine in the file format — a starting
/// point for custom machines (`mlc-run --emit-base`).
pub fn base_machine_text() -> &'static str {
    "# The ISCA 1989 base machine (paper section 2)\n\
     cpu.cycle_ns = 10\n\
     \n\
     [level L1]\n\
     split = true\n\
     size = 4K\n\
     block = 16\n\
     ways = 1\n\
     cycles = 1\n\
     \n\
     [level L2]\n\
     size = 512K\n\
     block = 32\n\
     ways = 1\n\
     cycles = 3\n\
     \n\
     [memory]\n\
     read_ns = 180\n\
     write_ns = 100\n\
     gap_ns = 120\n"
}

/// Renders a [`HierarchyConfig`] in the machine description format, such
/// that `parse_machine(&render_machine(&c))` reproduces `c` exactly.
pub fn render_machine(config: &HierarchyConfig) -> String {
    use std::fmt::Write;

    let mut out = String::new();
    let _ = writeln!(out, "cpu.cycle_ns = {}", config.cpu.cycle_ns);
    for level in &config.levels {
        let _ = writeln!(out, "\n[level {}]", level.name);
        let cache = match level.cache {
            LevelCacheConfig::Unified(c) => {
                let _ = writeln!(out, "size = {}", c.geometry().total_bytes());
                c
            }
            LevelCacheConfig::Split { icache, dcache } => {
                // The format expresses split levels as equal halves; that
                // is the only split shape it can produce, matching the
                // paper's base machine.
                debug_assert_eq!(icache, dcache, "format renders equal halves");
                let _ = writeln!(out, "split = true");
                let _ = writeln!(
                    out,
                    "size = {}",
                    icache.geometry().total_bytes() + dcache.geometry().total_bytes()
                );
                icache
            }
        };
        let _ = writeln!(out, "block = {}", cache.geometry().block_bytes());
        let _ = writeln!(out, "ways = {}", cache.geometry().ways());
        let _ = writeln!(out, "cycles = {}", level.read_cycles);
        let _ = writeln!(out, "write_cycles = {}", level.write_cycles);
        let _ = writeln!(out, "write_buffer = {}", level.write_buffer_entries);
        let _ = writeln!(out, "bus_bytes = {}", level.refill_bus_bytes);
        if let Some(c) = level.refill_bus_cycles {
            let _ = writeln!(out, "bus_cycles = {c}");
        }
        let _ = writeln!(
            out,
            "replacement = {}",
            match cache.replacement() {
                Replacement::Lru => "lru",
                Replacement::Fifo => "fifo",
                Replacement::Random => "random",
            }
        );
        let _ = writeln!(
            out,
            "write_policy = {}",
            match cache.write_policy() {
                WritePolicy::WriteBack => "write-back",
                WritePolicy::WriteThrough => "write-through",
            }
        );
        let _ = writeln!(
            out,
            "alloc = {}",
            match cache.alloc_policy() {
                AllocPolicy::WriteAllocate => "allocate",
                AllocPolicy::NoWriteAllocate => "no-allocate",
            }
        );
        let _ = writeln!(
            out,
            "prefetch = {}",
            match cache.prefetch() {
                Prefetch::None => "none",
                Prefetch::NextBlock => "next-block",
            }
        );
        let _ = writeln!(out, "fetch_blocks = {}", cache.fetch_blocks());
        let _ = writeln!(out, "sub_blocks = {}", cache.sub_blocks());
        let _ = writeln!(out, "victim_entries = {}", cache.victim_entries());
    }
    let _ = writeln!(out, "\n[memory]");
    let _ = writeln!(out, "read_ns = {}", config.memory.read_ns);
    let _ = writeln!(out, "write_ns = {}", config.memory.write_ns);
    let _ = writeln!(out, "gap_ns = {}", config.memory.gap_ns);
    out
}

enum Section {
    Top,
    Memory,
    /// Inside a `[level ...]` section, accumulating its keys — carrying
    /// the builder in the variant makes "level section without a builder"
    /// unrepresentable.
    Level(LevelBuilder),
}

struct LevelBuilder {
    name: String,
    split: bool,
    size: Option<u64>,
    block: u64,
    ways: u32,
    cycles: Option<u64>,
    write_cycles: Option<u64>,
    write_buffer: usize,
    bus_bytes: u64,
    bus_cycles: Option<u64>,
    replacement: Replacement,
    write_policy: WritePolicy,
    alloc: AllocPolicy,
    prefetch: Prefetch,
    fetch_blocks: u32,
    sub_blocks: u32,
    victim_entries: u32,
}

impl LevelBuilder {
    fn new(name: &str) -> Self {
        LevelBuilder {
            name: name.to_string(),
            split: false,
            size: None,
            block: 16,
            ways: 1,
            cycles: None,
            write_cycles: None,
            write_buffer: 4,
            bus_bytes: 16,
            bus_cycles: None,
            replacement: Replacement::Lru,
            write_policy: WritePolicy::WriteBack,
            alloc: AllocPolicy::WriteAllocate,
            prefetch: Prefetch::None,
            fetch_blocks: 1,
            sub_blocks: 1,
            victim_entries: 0,
        }
    }

    fn set(&mut self, key: &str, value: &str, line: usize) -> Result<(), MachineFileError> {
        match key {
            "split" => self.split = parse_bool(value, line)?,
            "size" => self.size = Some(parse_size(value).map_err(|e| err(line, &e.to_string()))?),
            "block" => self.block = parse_size(value).map_err(|e| err(line, &e.to_string()))?,
            "ways" => self.ways = parse_u64(value, line)? as u32,
            "cycles" => self.cycles = Some(parse_u64(value, line)?),
            "write_cycles" => self.write_cycles = Some(parse_u64(value, line)?),
            "write_buffer" => self.write_buffer = parse_u64(value, line)? as usize,
            "bus_bytes" => {
                self.bus_bytes = parse_size(value).map_err(|e| err(line, &e.to_string()))?
            }
            "bus_cycles" => self.bus_cycles = Some(parse_u64(value, line)?),
            "fetch_blocks" => self.fetch_blocks = parse_u64(value, line)? as u32,
            "sub_blocks" => self.sub_blocks = parse_u64(value, line)? as u32,
            "victim_entries" => self.victim_entries = parse_u64(value, line)? as u32,
            "prefetch" => {
                self.prefetch = match value.to_ascii_lowercase().as_str() {
                    "none" => Prefetch::None,
                    "next-block" => Prefetch::NextBlock,
                    other => return Err(err(line, &format!("unknown prefetch {other:?}"))),
                }
            }
            "replacement" => {
                self.replacement = match value.to_ascii_lowercase().as_str() {
                    "lru" => Replacement::Lru,
                    "fifo" => Replacement::Fifo,
                    "random" => Replacement::Random,
                    other => return Err(err(line, &format!("unknown replacement {other:?}"))),
                }
            }
            "write_policy" => {
                self.write_policy = match value.to_ascii_lowercase().as_str() {
                    "write-back" | "wb" => WritePolicy::WriteBack,
                    "write-through" | "wt" => WritePolicy::WriteThrough,
                    other => return Err(err(line, &format!("unknown write_policy {other:?}"))),
                }
            }
            "alloc" => {
                self.alloc = match value.to_ascii_lowercase().as_str() {
                    "allocate" | "write-allocate" => AllocPolicy::WriteAllocate,
                    "no-allocate" | "no-write-allocate" => AllocPolicy::NoWriteAllocate,
                    other => return Err(err(line, &format!("unknown alloc {other:?}"))),
                }
            }
            other => return Err(err(line, &format!("unknown level key {other:?}"))),
        }
        Ok(())
    }

    fn cache_config(&self, bytes: u64, line: usize) -> Result<CacheConfig, MachineFileError> {
        CacheConfig::builder()
            .total(ByteSize::new(bytes))
            .block_bytes(self.block)
            .ways(self.ways)
            .replacement(self.replacement)
            .write_policy(self.write_policy)
            .alloc_policy(self.alloc)
            .prefetch(self.prefetch)
            .fetch_blocks(self.fetch_blocks)
            .sub_blocks(self.sub_blocks)
            .victim_entries(self.victim_entries)
            .build()
            .map_err(|e| err(line, &format!("level {}: {e}", self.name)))
    }

    fn build(self, line: usize) -> Result<LevelConfig, MachineFileError> {
        let size = self
            .size
            .ok_or_else(|| err(line, &format!("level {} is missing `size`", self.name)))?;
        let cycles = self
            .cycles
            .ok_or_else(|| err(line, &format!("level {} is missing `cycles`", self.name)))?;
        let cache = if self.split {
            let half = self.cache_config(size / 2, line)?;
            LevelCacheConfig::Split {
                icache: half,
                dcache: half,
            }
        } else {
            LevelCacheConfig::Unified(self.cache_config(size, line)?)
        };
        let mut level = LevelConfig::new(self.name.clone(), cache, cycles);
        level.write_cycles = self.write_cycles.unwrap_or(2 * cycles);
        level.write_buffer_entries = self.write_buffer;
        level.refill_bus_bytes = self.bus_bytes;
        level.refill_bus_cycles = self.bus_cycles;
        Ok(level)
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn err(line: usize, msg: &str) -> MachineFileError {
    MachineFileError::at(line, msg)
}

fn parse_f64(value: &str, line: usize) -> Result<f64, MachineFileError> {
    value
        .parse()
        .map_err(|_| err(line, &format!("invalid number {value:?}")))
}

fn parse_u64(value: &str, line: usize) -> Result<u64, MachineFileError> {
    value
        .parse()
        .map_err(|_| err(line, &format!("invalid integer {value:?}")))
}

fn parse_bool(value: &str, line: usize) -> Result<bool, MachineFileError> {
    match value.to_ascii_lowercase().as_str() {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(err(line, &format!("invalid boolean {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_machine_text_parses_to_base_machine() {
        let parsed = parse_machine(base_machine_text()).unwrap();
        let expected = mlc_sim::machine::base_machine();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn three_level_machine() {
        let text = "\
            cpu.cycle_ns = 5\n\
            [level L1]\n size = 8K\n block = 32\n cycles = 1\n split = true\n\
            [level L2]\n size = 256K\n block = 32\n cycles = 4\n ways = 2\n\
            [level L3]\n size = 4M\n block = 64\n cycles = 9\n write_buffer = 8\n\
            [memory]\n read_ns = 360\n";
        let config = parse_machine(text).unwrap();
        assert_eq!(config.depth(), 3);
        assert_eq!(config.cpu.cycle_ns, 5.0);
        assert_eq!(config.levels[2].write_buffer_entries, 8);
        assert_eq!(config.memory.read_ns, 360.0);
        assert_eq!(config.memory.write_ns, 100.0); // default retained
        match config.levels[1].cache {
            LevelCacheConfig::Unified(c) => assert_eq!(c.geometry().ways(), 2),
            _ => panic!("L2 should be unified"),
        }
    }

    #[test]
    fn policies_parse() {
        let text = "\
            [level L1]\n size = 4K\n cycles = 1\n replacement = fifo\n\
            write_policy = wt\n alloc = no-allocate\n";
        let config = parse_machine(text).unwrap();
        match config.levels[0].cache {
            LevelCacheConfig::Unified(c) => {
                assert_eq!(c.replacement(), Replacement::Fifo);
                assert_eq!(c.write_policy(), WritePolicy::WriteThrough);
                assert_eq!(c.alloc_policy(), AllocPolicy::NoWriteAllocate);
            }
            _ => panic!("unified expected"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\n[level L1] # trailing\nsize = 4K # bytes\ncycles = 1\n";
        assert!(parse_machine(text).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_machine("[level L1]\nsize = 4K\nbogus = 1\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
        let e = parse_machine("nonsense\n").unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
    }

    #[test]
    fn missing_required_keys_rejected() {
        assert!(parse_machine("[level L1]\ncycles = 1\n").is_err());
        assert!(parse_machine("[level L1]\nsize = 4K\n").is_err());
        assert!(parse_machine("").is_err());
    }

    #[test]
    fn unknown_sections_and_keys_rejected() {
        assert!(parse_machine("[bogus]\n").is_err());
        assert!(parse_machine("cpu.unknown = 1\n").is_err());
        assert!(parse_machine("[memory]\nvoltage = 5\n").is_err());
    }

    #[test]
    fn render_round_trips_base_machine() {
        let base = mlc_sim::machine::base_machine();
        let text = render_machine(&base);
        let parsed = parse_machine(&text).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn render_round_trips_exotic_machine() {
        let text = "\
            cpu.cycle_ns = 5\n\
            [level L1]\n size = 8K\n block = 32\n cycles = 1\n split = true\n\
            replacement = fifo\n victim_entries = 4\n\
            [level L2]\n size = 256K\n block = 32\n cycles = 4\n ways = 2\n\
            write_policy = wt\n alloc = no-allocate\n prefetch = next-block\n\
            bus_cycles = 7\n write_buffer = 8\n\
            [memory]\n read_ns = 360\n gap_ns = 0\n";
        let config = parse_machine(text).unwrap();
        let round = parse_machine(&render_machine(&config)).unwrap();
        assert_eq!(round, config);
    }

    #[test]
    fn invalid_organisation_rejected() {
        // 24-byte blocks are not a power of two.
        let e = parse_machine("[level L1]\nsize = 4K\nblock = 24\ncycles = 1\n").unwrap_err();
        assert!(e.to_string().contains("power of two"), "{e}");
    }
}
