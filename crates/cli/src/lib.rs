//! Command-line tooling for the `mlc` workspace.
//!
//! The binaries mirror the workflow of the paper's simulation
//! environment (§2):
//!
//! * `mlc-gen` — generate synthetic multiprogramming traces to `.din` or
//!   binary files;
//! * `mlc-run` — simulate a trace against a machine description file
//!   (the paper's "file that specifies the depth of the cache hierarchy
//!   and the configuration of each cache");
//! * `mlc-sweep` — sweep the L2 design space over a trace and emit the
//!   execution-time grid as CSV;
//! * `mlc-lint` — statically check machine description files against the
//!   paper's hierarchy assumptions (see `mlc-check`).
//!
//! The library part hosts the argument parser ([`args`]), the machine
//! description format ([`machine_file`]), the lint driver ([`lint`]),
//! and the shared observability plumbing ([`obs`]: `--progress`,
//! `--metrics-out`, `--manifest-out`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod lint;
pub mod machine_file;
pub mod obs;

use std::fs::File;
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};

use mlc_trace::{binary, din, slice, FaultPolicy, IngestReport, TraceError, TraceRecord};

use crate::args::{Args, Flag};

/// Reads a trace file, dispatching on extension: `.din` is parsed as
/// Dinero text; anything else as the `mlc` binary format (both the
/// fixed-width and the delta-compressed layout are handled).
///
/// # Errors
///
/// Returns a [`TraceError`] on I/O or parse failure.
pub fn read_trace_file(path: &Path) -> Result<Vec<TraceRecord>, TraceError> {
    if path.extension().is_some_and(|e| e == "din") {
        let file = File::open(path)?;
        din::read_din(BufReader::new(file))
    } else {
        // Binary traces go through the zero-copy slice decoder: one
        // read into memory, then straight slice decode (no per-record
        // reader round trips).
        let bytes = std::fs::read(path)?;
        slice::read_binary_slice(&bytes)
    }
}

/// The `--trace-faults` flag shared by every trace-reading binary.
pub fn trace_faults_flag() -> Flag {
    Flag {
        name: "trace-faults",
        value: "POLICY",
        help: "malformed trace records: fail (default) or skip:N \
               (quarantine up to N records to <trace>.quarantine)",
    }
}

/// Resolves `--trace-faults` from parsed arguments (default: `fail`).
///
/// # Errors
///
/// Returns a description of the accepted forms for an invalid value.
pub fn parse_trace_faults(args: &Args) -> Result<FaultPolicy, String> {
    match args.get("trace-faults") {
        None => Ok(FaultPolicy::Fail),
        Some(v) => FaultPolicy::parse(v),
    }
}

/// The quarantine sidecar path for `trace`: `<trace>.quarantine`.
pub fn quarantine_path(trace: &Path) -> PathBuf {
    let mut os = trace.as_os_str().to_os_string();
    os.push(".quarantine");
    PathBuf::from(os)
}

/// A writer that creates a *process-unique temp file* on first write,
/// so clean reads leave no sidecar behind and — crucially — two jobs
/// concurrently ingesting the same trace never interleave their
/// quarantine lines in one file. The finished temp file is atomically
/// renamed onto the real sidecar path by [`LazyFile::publish`]; the
/// last writer wins whole, which is always a complete, self-consistent
/// sidecar.
#[derive(Debug)]
struct LazyFile {
    /// The final sidecar path the temp file is renamed onto.
    path: PathBuf,
    /// The unique in-progress path (`<sidecar>.<pid>-<n>.tmp`).
    tmp: PathBuf,
    file: Option<File>,
}

impl LazyFile {
    fn new(path: PathBuf) -> LazyFile {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let mut os = path.as_os_str().to_os_string();
        os.push(format!(
            ".{}-{}.tmp",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        LazyFile {
            path,
            tmp: PathBuf::from(os),
            file: None,
        }
    }

    /// If anything was quarantined, atomically moves the temp file onto
    /// the sidecar path and returns that path; otherwise removes any
    /// stale sidecar from a previous run and returns `None`.
    fn publish(self) -> io::Result<Option<PathBuf>> {
        if self.file.is_some() {
            std::fs::rename(&self.tmp, &self.path)?;
            Ok(Some(self.path))
        } else {
            let _ = std::fs::remove_file(&self.path);
            Ok(None)
        }
    }
}

impl Write for LazyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.file.is_none() {
            self.file = Some(File::create(&self.tmp)?);
        }
        // Invariant: populated just above when absent.
        self.file
            .as_mut()
            .expect("file created on first write")
            .write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.file {
            Some(f) => f.flush(),
            None => Ok(()),
        }
    }
}

/// [`read_trace_file`] under a [`FaultPolicy`]: with
/// [`FaultPolicy::Skip`], malformed records are written to a
/// `<trace>.quarantine` sidecar (created lazily, only when something is
/// actually quarantined) and skipped. A stale sidecar from a previous
/// run is removed when this read quarantines nothing. Returns the
/// records, the ingest report, and the sidecar path when one was
/// written.
///
/// # Errors
///
/// Returns a [`TraceError`] on I/O failure, on parse failure under
/// [`FaultPolicy::Fail`], or ([`TraceError::FaultBudget`]) once more
/// than the `Skip` budget has been quarantined.
pub fn read_trace_file_with(
    path: &Path,
    policy: FaultPolicy,
) -> Result<(Vec<TraceRecord>, IngestReport, Option<PathBuf>), TraceError> {
    if policy == FaultPolicy::Fail {
        return read_trace_file(path).map(|records| (records, IngestReport::default(), None));
    }
    let mut sidecar = LazyFile::new(quarantine_path(path));
    let result = if path.extension().is_some_and(|e| e == "din") {
        let file = File::open(path)?;
        din::read_din_with(BufReader::new(file), policy, Some(&mut sidecar))
    } else {
        let bytes = std::fs::read(path)?;
        slice::read_binary_slice_with(&bytes, policy, Some(&mut sidecar))
    };
    // Publish even when the read failed (e.g. the fault budget was
    // exceeded): the partial sidecar is exactly the debugging evidence
    // the error message points at.
    let written = sidecar.publish().map_err(TraceError::Io)?;
    let (records, report) = result?;
    Ok((records, report, written))
}

/// Writes a trace file, dispatching on extension: `.din` writes Dinero
/// text, `.mlcz` the delta-compressed binary layout, anything else the
/// fixed-width binary layout.
///
/// # Errors
///
/// Returns a [`TraceError`] on I/O failure.
pub fn write_trace_file(path: &Path, records: &[TraceRecord]) -> Result<(), TraceError> {
    let file = File::create(path)?;
    if path.extension().is_some_and(|e| e == "din") {
        din::write_din(file, records.iter().copied())
    } else if path.extension().is_some_and(|e| e == "mlcz") {
        binary::write_compressed(file, records)
    } else {
        binary::write_binary(file, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_file_round_trips_both_formats() {
        let dir = std::env::temp_dir().join("mlc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let records = vec![
            TraceRecord::ifetch(0x4),
            TraceRecord::read(0x1a40),
            TraceRecord::write(0x1a44),
        ];
        for name in ["t.din", "t.mlct", "t.mlcz"] {
            let path = dir.join(name);
            write_trace_file(&path, &records).unwrap();
            assert_eq!(read_trace_file(&path).unwrap(), records, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_trace_file(Path::new("/nonexistent/trace.din")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn degraded_read_writes_then_clears_sidecar() {
        let dir = std::env::temp_dir().join("mlc_cli_quarantine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din");
        std::fs::write(&path, "2 4\nnot a record\n0 8\n").unwrap();

        let policy = FaultPolicy::Skip { budget: 4 };
        let (records, report, sidecar) = read_trace_file_with(&path, policy).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.quarantined, 1);
        let sidecar = sidecar.expect("one record was quarantined");
        assert_eq!(sidecar, quarantine_path(&path));
        assert!(std::fs::read_to_string(&sidecar)
            .unwrap()
            .contains("not a record"));

        // A clean re-read removes the now-stale sidecar.
        std::fs::write(&path, "2 4\n0 8\n").unwrap();
        let (_, report, none) = read_trace_file_with(&path, policy).unwrap();
        assert_eq!(report.quarantined, 0);
        assert!(none.is_none());
        assert!(!sidecar.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_degraded_reads_do_not_interleave_sidecars() {
        // The daemon ingests the same trace from several jobs at once.
        // Each read quarantines to its own temp file and atomically
        // renames it over the sidecar path, so the survivor must be one
        // complete sidecar — never an interleaving of several writers.
        let dir = std::env::temp_dir().join("mlc_cli_quarantine_race_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din");
        std::fs::write(&path, "2 4\nbad line one\nbad line two\n0 8\n").unwrap();
        let policy = FaultPolicy::Skip { budget: 8 };

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let path: &Path = &path;
                    scope.spawn(move || read_trace_file_with(path, policy).unwrap())
                })
                .collect();
            for h in handles {
                let (records, report, sidecar) = h.join().unwrap();
                assert_eq!(records.len(), 2);
                assert_eq!(report.quarantined, 2);
                assert_eq!(sidecar, Some(quarantine_path(&path)));
            }
        });

        let body = std::fs::read_to_string(quarantine_path(&path)).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "interleaved sidecar: {body:?}");
        assert!(lines[0].contains("bad line one"), "{body:?}");
        assert!(lines[1].contains("bad line two"), "{body:?}");
        // No temp debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fail_policy_leaves_no_sidecar() {
        let dir = std::env::temp_dir().join("mlc_cli_quarantine_fail_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din");
        std::fs::write(&path, "garbage\n").unwrap();
        assert!(read_trace_file_with(&path, FaultPolicy::Fail).is_err());
        assert!(!quarantine_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
