//! Command-line tooling for the `mlc` workspace.
//!
//! The binaries mirror the workflow of the paper's simulation
//! environment (§2):
//!
//! * `mlc-gen` — generate synthetic multiprogramming traces to `.din` or
//!   binary files;
//! * `mlc-run` — simulate a trace against a machine description file
//!   (the paper's "file that specifies the depth of the cache hierarchy
//!   and the configuration of each cache");
//! * `mlc-sweep` — sweep the L2 design space over a trace and emit the
//!   execution-time grid as CSV;
//! * `mlc-lint` — statically check machine description files against the
//!   paper's hierarchy assumptions (see `mlc-check`).
//!
//! The library part hosts the argument parser ([`args`]), the machine
//! description format ([`machine_file`]), the lint driver ([`lint`]),
//! and the shared observability plumbing ([`obs`]: `--progress`,
//! `--metrics-out`, `--manifest-out`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod args;
pub mod lint;
pub mod machine_file;
pub mod obs;

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use mlc_trace::{binary, din, TraceError, TraceRecord};

/// Reads a trace file, dispatching on extension: `.din` is parsed as
/// Dinero text; anything else as the `mlc` binary format (both the
/// fixed-width and the delta-compressed layout are handled).
///
/// # Errors
///
/// Returns a [`TraceError`] on I/O or parse failure.
pub fn read_trace_file(path: &Path) -> Result<Vec<TraceRecord>, TraceError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    if path.extension().is_some_and(|e| e == "din") {
        din::read_din(reader)
    } else {
        binary::read_binary(reader)
    }
}

/// Writes a trace file, dispatching on extension: `.din` writes Dinero
/// text, `.mlcz` the delta-compressed binary layout, anything else the
/// fixed-width binary layout.
///
/// # Errors
///
/// Returns a [`TraceError`] on I/O failure.
pub fn write_trace_file(path: &Path, records: &[TraceRecord]) -> Result<(), TraceError> {
    let file = File::create(path)?;
    if path.extension().is_some_and(|e| e == "din") {
        din::write_din(file, records.iter().copied())
    } else if path.extension().is_some_and(|e| e == "mlcz") {
        binary::write_compressed(file, records)
    } else {
        binary::write_binary(file, records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_file_round_trips_both_formats() {
        let dir = std::env::temp_dir().join("mlc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let records = vec![
            TraceRecord::ifetch(0x4),
            TraceRecord::read(0x1a40),
            TraceRecord::write(0x1a44),
        ];
        for name in ["t.din", "t.mlct", "t.mlcz"] {
            let path = dir.join(name);
            write_trace_file(&path, &records).unwrap();
            assert_eq!(read_trace_file(&path).unwrap(), records, "{name}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_trace_file(Path::new("/nonexistent/trace.din")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }
}
