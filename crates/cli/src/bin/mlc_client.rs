//! `mlc-client` — talk to a running `mlc-serve` daemon.
//!
//! ```text
//! mlc-client --socket store/mlc-serve.sock submit --trace trace.din \
//!            --sizes 16K:4M --cycles 1:10 --out grid.csv
//! mlc-client --socket … status --key fnv1a64:…
//! mlc-client --socket … fetch  --key fnv1a64:… --out grid.csv
//! mlc-client --socket … ping
//! mlc-client --socket … shutdown
//! ```
//!
//! `submit` prints grep-able `key=` / `source=` / `rows_resumed=` lines
//! on stdout; `--out` writes the execution-time grid as CSV in exactly
//! the layout `mlc-sweep --out` uses, so downstream tooling cannot tell
//! whether a grid came from a live sweep or the daemon's cache.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-client: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-client: the client requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::io::{BufRead, BufReader, Lines, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;

    use mlc_cli::args::{parse_int_range, parse_size, parse_size_range, Args, Flag};
    use mlc_core::{DesignGrid, Table};
    use mlc_serve::{Event, Request, SubmitRequest, PROTO};

    fn flags() -> Vec<Flag> {
        vec![
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket of the mlc-serve daemon",
            },
            Flag {
                name: "key",
                value: "KEY",
                help: "job key for status/fetch (fnv1a64:…)",
            },
            Flag {
                name: "trace",
                value: "PATH",
                help: "submit: input trace, as a path the *server* can read",
            },
            Flag {
                name: "sizes",
                value: "LO:HI",
                help: "submit: L2 size range, powers of two (default 16K:4M)",
            },
            Flag {
                name: "cycles",
                value: "LO:HI",
                help: "submit: L2 cycle-time range in CPU cycles (default 1:10)",
            },
            Flag {
                name: "ways",
                value: "W",
                help: "submit: L2 associativity (default 1)",
            },
            Flag {
                name: "l1",
                value: "SIZE",
                help: "submit: combined split-L1 size (default 4K)",
            },
            Flag {
                name: "warmup-frac",
                value: "F",
                help: "submit: fraction of the trace excluded from statistics (default 0.25)",
            },
            Flag {
                name: "engine",
                value: "NAME",
                help: "submit: grid engine, onepass (default) or exhaustive",
            },
            Flag {
                name: "no-wait",
                value: "",
                help: "submit: return after acceptance instead of streaming to completion",
            },
            Flag {
                name: "out",
                value: "PATH",
                help: "write the received grid as CSV (mlc-sweep --out layout)",
            },
            Flag {
                name: "events-out",
                value: "PATH",
                help: "append every received event line (raw JSONL) to PATH",
            },
        ]
    }

    /// A connected session: the line stream plus an optional raw-event
    /// tee for debugging and CI assertions.
    struct Session {
        out: UnixStream,
        lines: Lines<BufReader<UnixStream>>,
        tee: Option<std::fs::File>,
    }

    impl Session {
        fn connect(socket: &PathBuf, tee: Option<&str>) -> Result<Session, String> {
            let stream = UnixStream::connect(socket)
                .map_err(|e| format!("connecting to {}: {e}", socket.display()))?;
            let out = stream.try_clone().map_err(|e| e.to_string())?;
            let tee = tee
                .map(|p| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(p)
                })
                .transpose()
                .map_err(|e| e.to_string())?;
            let mut session = Session {
                out,
                lines: BufReader::new(stream).lines(),
                tee,
            };
            match session.recv()? {
                Event::Hello { proto, .. } if proto == PROTO => Ok(session),
                Event::Hello { proto, .. } => {
                    Err(format!("server speaks {proto}, this client speaks {PROTO}"))
                }
                other => Err(format!("expected hello, got {other:?}")),
            }
        }

        fn send(&mut self, request: &Request) -> Result<(), String> {
            let mut line = request.to_line();
            line.push('\n');
            self.out
                .write_all(line.as_bytes())
                .map_err(|e| e.to_string())
        }

        fn recv(&mut self) -> Result<Event, String> {
            let line = self
                .lines
                .next()
                .ok_or("server closed the connection")?
                .map_err(|e| e.to_string())?;
            if let Some(tee) = &mut self.tee {
                let _ = writeln!(tee, "{line}");
            }
            Event::parse(&line)
        }
    }

    /// Writes the grid CSV byte-identically to `mlc-sweep --out`.
    fn write_grid_csv(grid: &DesignGrid, out: &str) -> Result<(), String> {
        let mut headers: Vec<String> = vec!["t_L2 \\ size".into()];
        headers.extend(grid.sizes.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut csv = Table::new("grid", &header_refs);
        for (j, &c) in grid.cycles.iter().enumerate() {
            let mut row = vec![format!("{c}")];
            row.extend((0..grid.sizes.len()).map(|i| {
                if grid.total[i][j] == DesignGrid::FAILED {
                    "FAILED".to_string()
                } else {
                    grid.total[i][j].to_string()
                }
            }));
            csv.row(row);
        }
        csv.write_csv(out).map_err(|e| e.to_string())?;
        eprintln!("wrote {out}");
        Ok(())
    }

    fn submit(args: &Args, session: &mut Session) -> Result<(), String> {
        let request = SubmitRequest {
            trace: args
                .require::<PathBuf>("trace")
                .map_err(|e| e.to_string())?,
            l1_bytes: parse_size(args.get("l1").unwrap_or("4K")).map_err(|e| e.to_string())?,
            ways: args.get_or("ways", 1).map_err(|e| e.to_string())?,
            sizes: parse_size_range(args.get("sizes").unwrap_or("16K:4M"))
                .map_err(|e| e.to_string())?,
            cycles: parse_int_range(args.get("cycles").unwrap_or("1:10"))
                .map_err(|e| e.to_string())?,
            engine: args.get("engine").unwrap_or("onepass").to_string(),
            warmup_frac: args
                .get_or("warmup-frac", 0.25)
                .map_err(|e| e.to_string())?,
            wait: !args.has("no-wait"),
        };
        let wait = request.wait;
        session.send(&Request::Submit(request))?;
        match session.recv()? {
            Event::Accepted {
                key,
                rows_total,
                coalesced,
            } => {
                println!("key={key}");
                println!("rows_total={rows_total}");
                println!("coalesced={coalesced}");
            }
            Event::Error { message } => return Err(message),
            other => return Err(format!("expected accepted, got {other:?}")),
        }
        if !wait {
            return Ok(());
        }
        loop {
            match session.recv()? {
                Event::Progress {
                    rows_done,
                    rows_total,
                    row,
                    ..
                } => eprintln!("row {row} done ({rows_done}/{rows_total})"),
                Event::Done {
                    source,
                    rows_resumed,
                    grid,
                    ..
                } => {
                    println!("source={}", source.as_str());
                    println!("rows_resumed={rows_resumed}");
                    if let Some(out) = args.get("out") {
                        write_grid_csv(&grid, out)?;
                    }
                    return Ok(());
                }
                Event::Error { message } => return Err(message),
                other => return Err(format!("unexpected event: {other:?}")),
            }
        }
    }

    fn fetch(args: &Args, session: &mut Session) -> Result<(), String> {
        let key: String = args.require("key").map_err(|e| e.to_string())?;
        session.send(&Request::Fetch { key })?;
        match session.recv()? {
            Event::Done {
                key, source, grid, ..
            } => {
                println!("key={key}");
                println!("source={}", source.as_str());
                if let Some(out) = args.get("out") {
                    write_grid_csv(&grid, out)?;
                }
                Ok(())
            }
            Event::Error { message } => Err(message),
            other => Err(format!("expected done, got {other:?}")),
        }
    }

    fn status(args: &Args, session: &mut Session) -> Result<(), String> {
        let key: String = args.require("key").map_err(|e| e.to_string())?;
        session.send(&Request::Status { key })?;
        match session.recv()? {
            Event::Status {
                key,
                state,
                rows_done,
                rows_total,
            } => {
                println!("key={key}");
                println!("state={state}");
                if state == "running" {
                    println!("rows_done={rows_done}");
                    println!("rows_total={rows_total}");
                }
                Ok(())
            }
            Event::Error { message } => Err(message),
            other => Err(format!("expected status, got {other:?}")),
        }
    }

    fn ping(session: &mut Session) -> Result<(), String> {
        session.send(&Request::Ping)?;
        match session.recv()? {
            Event::Pong {
                proto,
                version,
                stats,
            } => {
                println!("proto={proto}");
                println!("version={version}");
                println!("jobs_computed={}", stats.jobs_computed);
                println!("jobs_recovered={}", stats.jobs_recovered);
                println!("jobs_coalesced={}", stats.jobs_coalesced);
                println!("mem_entries={}", stats.mem_entries);
                println!("disk_entries={}", stats.disk_entries);
                Ok(())
            }
            Event::Error { message } => Err(message),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    fn shutdown(session: &mut Session) -> Result<(), String> {
        session.send(&Request::Shutdown)?;
        match session.recv()? {
            Event::Bye => {
                println!("shutdown=requested");
                Ok(())
            }
            Event::Error { message } => Err(message),
            other => Err(format!("expected bye, got {other:?}")),
        }
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-client: submit sweeps to (and query) an mlc-serve daemon; \
             commands: submit | status | fetch | ping | shutdown",
            flags(),
            std::env::args(),
        )?;
        let socket: PathBuf = args.require("socket")?;
        let command = match args.positional.as_slice() {
            [one] => one.as_str(),
            [] => return Err("missing command: submit | status | fetch | ping | shutdown".into()),
            more => return Err(format!("expected one command, got {more:?}").into()),
        };
        let mut session = Session::connect(&socket, args.get("events-out"))?;
        match command {
            "submit" => submit(&args, &mut session)?,
            "status" => status(&args, &mut session)?,
            "fetch" => fetch(&args, &mut session)?,
            "ping" => ping(&mut session)?,
            "shutdown" => shutdown(&mut session)?,
            other => {
                return Err(format!(
                    "unknown command '{other}': submit | status | fetch | ping | shutdown"
                )
                .into())
            }
        }
        Ok(())
    }
}
