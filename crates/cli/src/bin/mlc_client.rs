//! `mlc-client` — talk to a running `mlc-serve` daemon.
//!
//! ```text
//! mlc-client --socket store/mlc-serve.sock submit --trace trace.din \
//!            --sizes 16K:4M --cycles 1:10 --out grid.csv
//! mlc-client --socket … status --key fnv1a64:…
//! mlc-client --socket … fetch  --key fnv1a64:… --out grid.csv
//! mlc-client --socket … stats --format table
//! mlc-client --socket … top
//! mlc-client --socket … ping
//! mlc-client --socket … shutdown
//! ```
//!
//! `submit` prints grep-able `key=` / `source=` / `rows_resumed=` /
//! `trace_id=` lines on stdout; `--out` writes the execution-time grid
//! as CSV in exactly the layout `mlc-sweep --out` uses, so downstream
//! tooling cannot tell whether a grid came from a live sweep or the
//! daemon's cache. Every submit carries a trace id (`--trace-id`, or
//! one minted locally) that the server stamps into its events, journal
//! headers, and lifecycle spans.
//!
//! `stats` fetches the server's `mlc-stats/1` telemetry document
//! (`--format json` for the raw doc, `table` for per-stage
//! p50/p90/p99 latencies and tier hit rates); `top` polls it into a
//! live dashboard. `ping` is thin liveness only.
//!
//! Transient failures — a daemon still starting, an `overloaded` shed,
//! a `timeout` response, a disk that was briefly full — are retried
//! with bounded exponential backoff plus jitter (`--retries`,
//! `--retry-max-ms`). Retrying a submit is **idempotent** by
//! construction: job keys are content-addressed, so the retry is the
//! same job and is answered from the cache if the first attempt's
//! computation finished meanwhile. `--deadline-ms` bounds how long the
//! server may hold the response to each attempt.
//!
//! The undocumented-in-`--help`-prose `stall` command exists for the
//! chaos harness: it connects, optionally writes half a request
//! (`--half-line`), and then holds the socket without reading for
//! `--hold-ms` — a deliberately abusive peer the daemon must reap.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-client: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-client: the client requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::io::{BufRead, BufReader, Lines, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::time::Duration;

    use mlc_cli::args::{parse_int_range, parse_size, parse_size_range, Args, Flag};
    use mlc_core::{DesignGrid, Table};
    use mlc_obs::json::JsonValue;
    use mlc_obs::Log2Histogram;
    use mlc_serve::{Event, Request, SubmitRequest, PROTO};

    fn flags() -> Vec<Flag> {
        vec![
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket of the mlc-serve daemon",
            },
            Flag {
                name: "key",
                value: "KEY",
                help: "job key for status/fetch (fnv1a64:…)",
            },
            Flag {
                name: "trace",
                value: "PATH",
                help: "submit: input trace, as a path the *server* can read",
            },
            Flag {
                name: "sizes",
                value: "LO:HI",
                help: "submit: L2 size range, powers of two (default 16K:4M)",
            },
            Flag {
                name: "cycles",
                value: "LO:HI",
                help: "submit: L2 cycle-time range in CPU cycles (default 1:10)",
            },
            Flag {
                name: "ways",
                value: "W",
                help: "submit: L2 associativity (default 1)",
            },
            Flag {
                name: "l1",
                value: "SIZE",
                help: "submit: combined split-L1 size (default 4K)",
            },
            Flag {
                name: "warmup-frac",
                value: "F",
                help: "submit: fraction of the trace excluded from statistics (default 0.25)",
            },
            Flag {
                name: "engine",
                value: "NAME",
                help: "submit: grid engine, onepass (default) or exhaustive",
            },
            Flag {
                name: "no-wait",
                value: "",
                help: "submit: return after acceptance instead of streaming to completion",
            },
            Flag {
                name: "trace-id",
                value: "ID",
                help: "submit: trace context to stamp through events, journal, \
                       and spans (default: minted locally)",
            },
            Flag {
                name: "format",
                value: "FMT",
                help: "stats: 'table' (default) or 'json' (the raw mlc-stats/1 doc)",
            },
            Flag {
                name: "interval-ms",
                value: "MS",
                help: "top: refresh period (default 1000)",
            },
            Flag {
                name: "iterations",
                value: "N",
                help: "top: refresh N times then exit; 0 = until interrupted \
                       (default 0)",
            },
            Flag {
                name: "deadline-ms",
                value: "MS",
                help: "submit: server-side response deadline per attempt; \
                       a 'timeout' answer is retried (default 0 = none)",
            },
            Flag {
                name: "retries",
                value: "N",
                help: "retry transient failures (connect, overloaded, \
                       timeout, retryable errors) up to N times (default 2)",
            },
            Flag {
                name: "retry-max-ms",
                value: "MS",
                help: "cap each exponential-backoff delay at MS (default 2000)",
            },
            Flag {
                name: "out",
                value: "PATH",
                help: "write the received grid as CSV (mlc-sweep --out layout)",
            },
            Flag {
                name: "events-out",
                value: "PATH",
                help: "append every received event line (raw JSONL) to PATH",
            },
            Flag {
                name: "hold-ms",
                value: "MS",
                help: "stall: hold the connection open without reading for MS \
                       (default 35000)",
            },
            Flag {
                name: "half-line",
                value: "",
                help: "stall: write half a request before stalling",
            },
        ]
    }

    /// A client-side failure, split by whether a fresh attempt against
    /// the same daemon can succeed.
    #[derive(Debug)]
    struct CErr {
        message: String,
        retryable: bool,
    }

    impl CErr {
        fn fatal(message: impl Into<String>) -> CErr {
            CErr {
                message: message.into(),
                retryable: false,
            }
        }

        fn transient(message: impl Into<String>) -> CErr {
            CErr {
                message: message.into(),
                retryable: true,
            }
        }
    }

    /// A tiny xorshift PRNG for backoff jitter — decorrelates the retry
    /// storms of many clients shed at the same instant, with no
    /// dependency and no reproducibility requirement.
    struct Jitter(u64);

    impl Jitter {
        fn seeded() -> Jitter {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64)
                .unwrap_or(0);
            Jitter(nanos ^ (u64::from(std::process::id()) << 17) | 1)
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// Backoff for `attempt` (1-based): 100ms doubling, capped at
        /// `max_ms`, jittered ±25%.
        fn backoff_ms(&mut self, attempt: u32, max_ms: u64) -> u64 {
            let base = 100u64.saturating_mul(1u64 << attempt.saturating_sub(1).min(20)); // 100, 200, 400, …
            let capped = base.min(max_ms.max(1));
            let quarter = (capped / 4).max(1);
            capped - quarter / 2 + self.next() % quarter
        }
    }

    /// A connected session: the line stream plus an optional raw-event
    /// tee for debugging and CI assertions.
    struct Session {
        out: UnixStream,
        lines: Lines<BufReader<UnixStream>>,
        tee: Option<std::fs::File>,
    }

    impl Session {
        fn connect(socket: &PathBuf, tee: Option<&str>) -> Result<Session, CErr> {
            let stream = UnixStream::connect(socket)
                .map_err(|e| CErr::transient(format!("connecting to {}: {e}", socket.display())))?;
            let out = stream
                .try_clone()
                .map_err(|e| CErr::transient(e.to_string()))?;
            let tee = tee
                .map(|p| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(p)
                })
                .transpose()
                .map_err(|e| CErr::fatal(e.to_string()))?;
            let mut session = Session {
                out,
                lines: BufReader::new(stream).lines(),
                tee,
            };
            match session.recv()? {
                Event::Hello { proto, .. } if proto == PROTO => Ok(session),
                Event::Hello { proto, .. } => Err(CErr::fatal(format!(
                    "server speaks {proto}, this client speaks {PROTO}"
                ))),
                // The daemon's handler pool is full: typed rejection
                // instead of a greeting. Back off and try again.
                Event::Overloaded { reason } => {
                    Err(CErr::transient(format!("server overloaded: {reason}")))
                }
                other => Err(CErr::fatal(format!("expected hello, got {other:?}"))),
            }
        }

        /// Bounds every read on this session's socket (both clone fds
        /// share the socket, so this covers the line stream too).
        fn set_read_timeout(&self, timeout: Duration) -> Result<(), CErr> {
            self.out
                .set_read_timeout(Some(timeout))
                .map_err(|e| CErr::fatal(e.to_string()))
        }

        fn send(&mut self, request: &Request) -> Result<(), CErr> {
            let mut line = request.to_line();
            line.push('\n');
            self.out
                .write_all(line.as_bytes())
                .map_err(|e| CErr::transient(e.to_string()))
        }

        fn recv(&mut self) -> Result<Event, CErr> {
            let line = self
                .lines
                .next()
                .ok_or_else(|| CErr::transient("server closed the connection"))?
                .map_err(|e| CErr::transient(e.to_string()))?;
            if let Some(tee) = &mut self.tee {
                let _ = writeln!(tee, "{line}");
            }
            Event::parse(&line).map_err(CErr::fatal)
        }
    }

    /// Writes the grid CSV byte-identically to `mlc-sweep --out`.
    fn write_grid_csv(grid: &DesignGrid, out: &str) -> Result<(), CErr> {
        let mut headers: Vec<String> = vec!["t_L2 \\ size".into()];
        headers.extend(grid.sizes.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut csv = Table::new("grid", &header_refs);
        for (j, &c) in grid.cycles.iter().enumerate() {
            let mut row = vec![format!("{c}")];
            row.extend((0..grid.sizes.len()).map(|i| {
                if grid.total[i][j] == DesignGrid::FAILED {
                    "FAILED".to_string()
                } else {
                    grid.total[i][j].to_string()
                }
            }));
            csv.row(row);
        }
        csv.write_csv(out).map_err(|e| CErr::fatal(e.to_string()))?;
        eprintln!("wrote {out}");
        Ok(())
    }

    /// Maps a terminal server answer that is not the one the command
    /// wanted into the right client error.
    fn unexpected(context: &str, event: Event) -> CErr {
        match event {
            Event::Error { message, retryable } => CErr { message, retryable },
            Event::Overloaded { reason } => CErr::transient(format!("server overloaded: {reason}")),
            Event::Timeout { key } => CErr::transient(format!(
                "deadline expired for {key}; the job continues server-side"
            )),
            other => CErr::fatal(format!("expected {context}, got {other:?}")),
        }
    }

    fn submit(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let deadline_ms: u64 = args
            .get_or("deadline-ms", 0u64)
            .map_err(|e| CErr::fatal(e.to_string()))?;
        let request = SubmitRequest {
            trace: args
                .require::<PathBuf>("trace")
                .map_err(|e| CErr::fatal(e.to_string()))?,
            l1_bytes: parse_size(args.get("l1").unwrap_or("4K"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            ways: args
                .get_or("ways", 1)
                .map_err(|e| CErr::fatal(e.to_string()))?,
            sizes: parse_size_range(args.get("sizes").unwrap_or("16K:4M"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            cycles: parse_int_range(args.get("cycles").unwrap_or("1:10"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            engine: args.get("engine").unwrap_or("onepass").to_string(),
            warmup_frac: args
                .get_or("warmup-frac", 0.25)
                .map_err(|e| CErr::fatal(e.to_string()))?,
            wait: !args.has("no-wait"),
            deadline_ms,
            // A client-minted id makes the trace end-to-end: the same
            // id appears in this process's output and in the server's
            // journal header and span timeline.
            trace_id: args
                .get("trace-id")
                .map(str::to_owned)
                .unwrap_or_else(mlc_obs::mint_trace_id),
        };
        if deadline_ms > 0 {
            // Belt and braces: if the server never answers `timeout`
            // (wedged, chaos-delayed), give up locally a bit later.
            session.set_read_timeout(Duration::from_millis(deadline_ms.saturating_add(5_000)))?;
        }
        let wait = request.wait;
        session.send(&Request::Submit(request))?;
        match session.recv()? {
            Event::Accepted {
                key,
                rows_total,
                coalesced,
                trace_id,
            } => {
                println!("key={key}");
                println!("rows_total={rows_total}");
                println!("coalesced={coalesced}");
                // The server's view of the context: ours, or — for a
                // bare coalesced follower — the id of the job joined.
                println!("trace_id={trace_id}");
            }
            other => return Err(unexpected("accepted", other)),
        }
        if !wait {
            return Ok(());
        }
        loop {
            match session.recv()? {
                Event::Progress {
                    rows_done,
                    rows_total,
                    row,
                    ..
                } => eprintln!("row {row} done ({rows_done}/{rows_total})"),
                Event::Done {
                    source,
                    rows_resumed,
                    grid,
                    dropped,
                    ..
                } => {
                    println!("source={}", source.as_str());
                    println!("rows_resumed={rows_resumed}");
                    if dropped > 0 {
                        println!("events_dropped={dropped}");
                        eprintln!(
                            "note: {dropped} progress event(s) were dropped under \
                             load; the grid itself is complete"
                        );
                    }
                    if let Some(out) = args.get("out") {
                        write_grid_csv(&grid, out)?;
                    }
                    return Ok(());
                }
                other => return Err(unexpected("progress or done", other)),
            }
        }
    }

    fn fetch(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let key: String = args
            .require("key")
            .map_err(|e| CErr::fatal(e.to_string()))?;
        session.send(&Request::Fetch { key })?;
        match session.recv()? {
            Event::Done {
                key, source, grid, ..
            } => {
                println!("key={key}");
                println!("source={}", source.as_str());
                if let Some(out) = args.get("out") {
                    write_grid_csv(&grid, out)?;
                }
                Ok(())
            }
            other => Err(unexpected("done", other)),
        }
    }

    fn status(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let key: String = args
            .require("key")
            .map_err(|e| CErr::fatal(e.to_string()))?;
        session.send(&Request::Status { key })?;
        match session.recv()? {
            Event::Status {
                key,
                state,
                rows_done,
                rows_total,
                events_dropped,
            } => {
                println!("key={key}");
                println!("state={state}");
                if state == "running" {
                    println!("rows_done={rows_done}");
                    println!("rows_total={rows_total}");
                    println!("events_dropped={events_dropped}");
                }
                Ok(())
            }
            other => Err(unexpected("status", other)),
        }
    }

    /// Thin liveness probe. Counters moved to `stats` (mlc-stats/1).
    fn ping(session: &mut Session) -> Result<(), CErr> {
        session.send(&Request::Ping)?;
        match session.recv()? {
            Event::Pong {
                proto,
                version,
                uptime_ms,
            } => {
                println!("proto={proto}");
                println!("version={version}");
                println!("uptime_ms={uptime_ms}");
                Ok(())
            }
            other => Err(unexpected("pong", other)),
        }
    }

    /// Fetches one `mlc-stats/1` document over `session`.
    fn fetch_stats(session: &mut Session) -> Result<JsonValue, CErr> {
        session.send(&Request::Stats)?;
        match session.recv()? {
            Event::Stats { doc } => Ok(doc),
            other => Err(unexpected("stats", other)),
        }
    }

    /// A numeric field wherever it sits in the doc (integral floats
    /// arrive as JSON integers, so accept both).
    fn num_at(doc: &JsonValue, path: &[&str]) -> Option<f64> {
        let mut v = doc;
        for key in path {
            v = v.get(key)?;
        }
        match v {
            JsonValue::U64(n) => Some(*n as f64),
            JsonValue::I64(n) => Some(*n as f64),
            JsonValue::F64(f) => Some(*f),
            _ => None,
        }
    }

    fn fmt_us(v: Option<u64>) -> String {
        match v {
            None => "-".into(),
            Some(us) if us >= 10_000 => format!("{:.1}ms", us as f64 / 1000.0),
            Some(us) => format!("{us}us"),
        }
    }

    fn fmt_ratio(v: Option<f64>) -> String {
        v.map(|r| format!("{:.1}%", r * 100.0))
            .unwrap_or_else(|| "-".into())
    }

    /// Renders the `mlc-stats/1` document as the human table `stats
    /// --format table` and `top` print.
    fn render_stats_table(doc: &JsonValue) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let str_at = |path: &[&str]| -> String {
            let mut v = doc;
            for key in path {
                match v.get(key) {
                    Some(next) => v = next,
                    None => return "-".into(),
                }
            }
            v.as_str().map(str::to_owned).unwrap_or_else(|| "-".into())
        };
        let count = |path: &[&str]| num_at(doc, path).unwrap_or(0.0) as u64;
        let uptime_s = count(&["uptime_ms"]) as f64 / 1000.0;
        let _ = writeln!(
            out,
            "{} · server v{} · up {uptime_s:.1}s",
            str_at(&["schema"]),
            str_at(&["version"]),
        );
        let _ = writeln!(
            out,
            "jobs: {} computed, {} recovered, {} coalesced, {} in flight \
             | shed {} timeout {} | events dropped {}",
            count(&["counters", "jobs_computed"]),
            count(&["counters", "jobs_recovered"]),
            count(&["counters", "jobs_coalesced"]),
            count(&["counters", "jobs_inflight"]),
            count(&["counters", "jobs_shed"]),
            count(&["counters", "jobs_timeout"]),
            count(&["counters", "events_dropped"]),
        );
        let _ = writeln!(
            out,
            "tiers: mem {} hit(s) ({} cached) | disk {} hit(s) ({} cached, {} B) \
             | miss {} | hit rate mem {} disk {} overall {}",
            count(&["tiers", "memory", "hits"]),
            count(&["tiers", "memory", "entries"]),
            count(&["tiers", "disk", "hits"]),
            count(&["tiers", "disk", "entries"]),
            count(&["tiers", "disk", "bytes"]),
            count(&["tiers", "misses"]),
            fmt_ratio(num_at(doc, &["hit_ratio", "memory"])),
            fmt_ratio(num_at(doc, &["hit_ratio", "disk"])),
            fmt_ratio(num_at(doc, &["hit_ratio", "overall"])),
        );
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
            "stage", "count", "p50", "p90", "p99", "max"
        );
        if let Some(JsonValue::Object(stages)) = doc.get("stages") {
            for (name, hist) in stages {
                // Rebuild the exact histogram from the wire buckets;
                // quantiles come out bit-identical to the server's.
                let Some(hist) = Log2Histogram::from_json(hist) else {
                    continue;
                };
                if hist.is_empty() {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:<16} {:>8} {:>9} {:>9} {:>9} {:>9}",
                    name,
                    hist.count(),
                    fmt_us(hist.p50()),
                    fmt_us(hist.p90()),
                    fmt_us(hist.p99()),
                    fmt_us(Some(hist.max())),
                );
            }
        }
        out
    }

    fn stats(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let doc = fetch_stats(session)?;
        match args.get("format").unwrap_or("table") {
            "json" => println!("{}", doc.to_string_compact()),
            "table" => print!("{}", render_stats_table(&doc)),
            other => {
                return Err(CErr::fatal(format!(
                    "unknown --format '{other}': json | table"
                )))
            }
        }
        Ok(())
    }

    /// The live dashboard: polls `stats` over one session and redraws.
    fn top(args: &Args, session: &mut Session) -> Result<(), CErr> {
        use std::io::IsTerminal as _;
        let interval: u64 = args
            .get_or("interval-ms", 1_000u64)
            .map_err(|e| CErr::fatal(e.to_string()))?;
        let iterations: u64 = args
            .get_or("iterations", 0u64)
            .map_err(|e| CErr::fatal(e.to_string()))?;
        let live = std::io::stdout().is_terminal();
        let mut i = 0u64;
        loop {
            let doc = fetch_stats(session)?;
            if live {
                // Clear and home — a poor man's curses, no deps.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render_stats_table(&doc));
            let _ = std::io::Write::flush(&mut std::io::stdout());
            i += 1;
            if iterations > 0 && i >= iterations {
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(interval.max(50)));
        }
    }

    fn shutdown(session: &mut Session) -> Result<(), CErr> {
        session.send(&Request::Shutdown)?;
        match session.recv()? {
            Event::Bye => {
                println!("shutdown=requested");
                Ok(())
            }
            other => Err(unexpected("bye", other)),
        }
    }

    /// The chaos harness's abusive peer: connect, optionally write half
    /// a request line, then hold the socket open without ever reading.
    /// A hardened daemon reaps this connection at its I/O timeout;
    /// success here just means we held on as long as asked (the server
    /// closing on us early is fine too — that *is* the reap).
    fn stall(args: &Args, socket: &PathBuf) -> Result<(), String> {
        let hold_ms: u64 = args
            .get_or("hold-ms", 35_000u64)
            .map_err(|e| e.to_string())?;
        let mut stream = UnixStream::connect(socket)
            .map_err(|e| format!("connecting to {}: {e}", socket.display()))?;
        if args.has("half-line") {
            // Half a `ping`: a request the server can never finish
            // parsing, from a peer that never finishes sending.
            let _ = stream.write_all(b"{\"op\":\"pi");
            let _ = stream.flush();
        }
        std::thread::sleep(Duration::from_millis(hold_ms));
        println!("stalled_ms={hold_ms}");
        Ok(())
    }

    fn execute(command: &str, args: &Args, socket: &PathBuf) -> Result<(), CErr> {
        let mut session = Session::connect(socket, args.get("events-out"))?;
        match command {
            "submit" => submit(args, &mut session),
            "status" => status(args, &mut session),
            "fetch" => fetch(args, &mut session),
            "stats" => stats(args, &mut session),
            "top" => top(args, &mut session),
            "ping" => ping(&mut session),
            "shutdown" => shutdown(&mut session),
            other => Err(CErr::fatal(format!(
                "unknown command '{other}': submit | status | fetch | stats | top | ping | \
                 shutdown | stall"
            ))),
        }
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-client: submit sweeps to (and query) an mlc-serve daemon; \
             commands: submit | status | fetch | stats | top | ping | shutdown | stall",
            flags(),
            std::env::args(),
        )?;
        let socket: PathBuf = args.require("socket")?;
        let command = match args.positional.as_slice() {
            [one] => one.as_str(),
            [] => {
                return Err(
                    "missing command: submit | status | fetch | stats | top | ping \
                            | shutdown | stall"
                        .into(),
                )
            }
            more => return Err(format!("expected one command, got {more:?}").into()),
        };
        if command == "stall" {
            return stall(&args, &socket).map_err(Into::into);
        }
        let retries: u32 = args.get_or("retries", 2u32)?;
        let retry_max_ms: u64 = args.get_or("retry-max-ms", 2_000u64)?;
        let mut jitter = Jitter::seeded();
        let mut attempt = 0u32;
        loop {
            match execute(command, &args, &socket) {
                Ok(()) => return Ok(()),
                Err(e) if e.retryable && attempt < retries => {
                    attempt += 1;
                    let delay = jitter.backoff_ms(attempt, retry_max_ms);
                    eprintln!(
                        "mlc-client: transient failure ({}); retry {attempt}/{retries} in {delay}ms",
                        e.message
                    );
                    std::thread::sleep(Duration::from_millis(delay));
                }
                Err(e) => return Err(e.message.into()),
            }
        }
    }
}
