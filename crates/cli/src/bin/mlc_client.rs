//! `mlc-client` — talk to a running `mlc-serve` daemon.
//!
//! ```text
//! mlc-client --socket store/mlc-serve.sock submit --trace trace.din \
//!            --sizes 16K:4M --cycles 1:10 --out grid.csv
//! mlc-client --socket … status --key fnv1a64:…
//! mlc-client --socket … fetch  --key fnv1a64:… --out grid.csv
//! mlc-client --socket … ping
//! mlc-client --socket … shutdown
//! ```
//!
//! `submit` prints grep-able `key=` / `source=` / `rows_resumed=` lines
//! on stdout; `--out` writes the execution-time grid as CSV in exactly
//! the layout `mlc-sweep --out` uses, so downstream tooling cannot tell
//! whether a grid came from a live sweep or the daemon's cache.
//!
//! Transient failures — a daemon still starting, an `overloaded` shed,
//! a `timeout` response, a disk that was briefly full — are retried
//! with bounded exponential backoff plus jitter (`--retries`,
//! `--retry-max-ms`). Retrying a submit is **idempotent** by
//! construction: job keys are content-addressed, so the retry is the
//! same job and is answered from the cache if the first attempt's
//! computation finished meanwhile. `--deadline-ms` bounds how long the
//! server may hold the response to each attempt.
//!
//! The undocumented-in-`--help`-prose `stall` command exists for the
//! chaos harness: it connects, optionally writes half a request
//! (`--half-line`), and then holds the socket without reading for
//! `--hold-ms` — a deliberately abusive peer the daemon must reap.

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-client: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-client: the client requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::io::{BufRead, BufReader, Lines, Write};
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;
    use std::time::Duration;

    use mlc_cli::args::{parse_int_range, parse_size, parse_size_range, Args, Flag};
    use mlc_core::{DesignGrid, Table};
    use mlc_serve::{Event, Request, SubmitRequest, PROTO};

    fn flags() -> Vec<Flag> {
        vec![
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket of the mlc-serve daemon",
            },
            Flag {
                name: "key",
                value: "KEY",
                help: "job key for status/fetch (fnv1a64:…)",
            },
            Flag {
                name: "trace",
                value: "PATH",
                help: "submit: input trace, as a path the *server* can read",
            },
            Flag {
                name: "sizes",
                value: "LO:HI",
                help: "submit: L2 size range, powers of two (default 16K:4M)",
            },
            Flag {
                name: "cycles",
                value: "LO:HI",
                help: "submit: L2 cycle-time range in CPU cycles (default 1:10)",
            },
            Flag {
                name: "ways",
                value: "W",
                help: "submit: L2 associativity (default 1)",
            },
            Flag {
                name: "l1",
                value: "SIZE",
                help: "submit: combined split-L1 size (default 4K)",
            },
            Flag {
                name: "warmup-frac",
                value: "F",
                help: "submit: fraction of the trace excluded from statistics (default 0.25)",
            },
            Flag {
                name: "engine",
                value: "NAME",
                help: "submit: grid engine, onepass (default) or exhaustive",
            },
            Flag {
                name: "no-wait",
                value: "",
                help: "submit: return after acceptance instead of streaming to completion",
            },
            Flag {
                name: "deadline-ms",
                value: "MS",
                help: "submit: server-side response deadline per attempt; \
                       a 'timeout' answer is retried (default 0 = none)",
            },
            Flag {
                name: "retries",
                value: "N",
                help: "retry transient failures (connect, overloaded, \
                       timeout, retryable errors) up to N times (default 2)",
            },
            Flag {
                name: "retry-max-ms",
                value: "MS",
                help: "cap each exponential-backoff delay at MS (default 2000)",
            },
            Flag {
                name: "out",
                value: "PATH",
                help: "write the received grid as CSV (mlc-sweep --out layout)",
            },
            Flag {
                name: "events-out",
                value: "PATH",
                help: "append every received event line (raw JSONL) to PATH",
            },
            Flag {
                name: "hold-ms",
                value: "MS",
                help: "stall: hold the connection open without reading for MS \
                       (default 35000)",
            },
            Flag {
                name: "half-line",
                value: "",
                help: "stall: write half a request before stalling",
            },
        ]
    }

    /// A client-side failure, split by whether a fresh attempt against
    /// the same daemon can succeed.
    #[derive(Debug)]
    struct CErr {
        message: String,
        retryable: bool,
    }

    impl CErr {
        fn fatal(message: impl Into<String>) -> CErr {
            CErr {
                message: message.into(),
                retryable: false,
            }
        }

        fn transient(message: impl Into<String>) -> CErr {
            CErr {
                message: message.into(),
                retryable: true,
            }
        }
    }

    /// A tiny xorshift PRNG for backoff jitter — decorrelates the retry
    /// storms of many clients shed at the same instant, with no
    /// dependency and no reproducibility requirement.
    struct Jitter(u64);

    impl Jitter {
        fn seeded() -> Jitter {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64)
                .unwrap_or(0);
            Jitter(nanos ^ (u64::from(std::process::id()) << 17) | 1)
        }

        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        /// Backoff for `attempt` (1-based): 100ms doubling, capped at
        /// `max_ms`, jittered ±25%.
        fn backoff_ms(&mut self, attempt: u32, max_ms: u64) -> u64 {
            let base = 100u64.saturating_mul(1u64 << attempt.saturating_sub(1).min(20)); // 100, 200, 400, …
            let capped = base.min(max_ms.max(1));
            let quarter = (capped / 4).max(1);
            capped - quarter / 2 + self.next() % quarter
        }
    }

    /// A connected session: the line stream plus an optional raw-event
    /// tee for debugging and CI assertions.
    struct Session {
        out: UnixStream,
        lines: Lines<BufReader<UnixStream>>,
        tee: Option<std::fs::File>,
    }

    impl Session {
        fn connect(socket: &PathBuf, tee: Option<&str>) -> Result<Session, CErr> {
            let stream = UnixStream::connect(socket)
                .map_err(|e| CErr::transient(format!("connecting to {}: {e}", socket.display())))?;
            let out = stream
                .try_clone()
                .map_err(|e| CErr::transient(e.to_string()))?;
            let tee = tee
                .map(|p| {
                    std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(p)
                })
                .transpose()
                .map_err(|e| CErr::fatal(e.to_string()))?;
            let mut session = Session {
                out,
                lines: BufReader::new(stream).lines(),
                tee,
            };
            match session.recv()? {
                Event::Hello { proto, .. } if proto == PROTO => Ok(session),
                Event::Hello { proto, .. } => Err(CErr::fatal(format!(
                    "server speaks {proto}, this client speaks {PROTO}"
                ))),
                // The daemon's handler pool is full: typed rejection
                // instead of a greeting. Back off and try again.
                Event::Overloaded { reason } => {
                    Err(CErr::transient(format!("server overloaded: {reason}")))
                }
                other => Err(CErr::fatal(format!("expected hello, got {other:?}"))),
            }
        }

        /// Bounds every read on this session's socket (both clone fds
        /// share the socket, so this covers the line stream too).
        fn set_read_timeout(&self, timeout: Duration) -> Result<(), CErr> {
            self.out
                .set_read_timeout(Some(timeout))
                .map_err(|e| CErr::fatal(e.to_string()))
        }

        fn send(&mut self, request: &Request) -> Result<(), CErr> {
            let mut line = request.to_line();
            line.push('\n');
            self.out
                .write_all(line.as_bytes())
                .map_err(|e| CErr::transient(e.to_string()))
        }

        fn recv(&mut self) -> Result<Event, CErr> {
            let line = self
                .lines
                .next()
                .ok_or_else(|| CErr::transient("server closed the connection"))?
                .map_err(|e| CErr::transient(e.to_string()))?;
            if let Some(tee) = &mut self.tee {
                let _ = writeln!(tee, "{line}");
            }
            Event::parse(&line).map_err(CErr::fatal)
        }
    }

    /// Writes the grid CSV byte-identically to `mlc-sweep --out`.
    fn write_grid_csv(grid: &DesignGrid, out: &str) -> Result<(), CErr> {
        let mut headers: Vec<String> = vec!["t_L2 \\ size".into()];
        headers.extend(grid.sizes.iter().map(|s| s.to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut csv = Table::new("grid", &header_refs);
        for (j, &c) in grid.cycles.iter().enumerate() {
            let mut row = vec![format!("{c}")];
            row.extend((0..grid.sizes.len()).map(|i| {
                if grid.total[i][j] == DesignGrid::FAILED {
                    "FAILED".to_string()
                } else {
                    grid.total[i][j].to_string()
                }
            }));
            csv.row(row);
        }
        csv.write_csv(out).map_err(|e| CErr::fatal(e.to_string()))?;
        eprintln!("wrote {out}");
        Ok(())
    }

    /// Maps a terminal server answer that is not the one the command
    /// wanted into the right client error.
    fn unexpected(context: &str, event: Event) -> CErr {
        match event {
            Event::Error { message, retryable } => CErr { message, retryable },
            Event::Overloaded { reason } => CErr::transient(format!("server overloaded: {reason}")),
            Event::Timeout { key } => CErr::transient(format!(
                "deadline expired for {key}; the job continues server-side"
            )),
            other => CErr::fatal(format!("expected {context}, got {other:?}")),
        }
    }

    fn submit(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let deadline_ms: u64 = args
            .get_or("deadline-ms", 0u64)
            .map_err(|e| CErr::fatal(e.to_string()))?;
        let request = SubmitRequest {
            trace: args
                .require::<PathBuf>("trace")
                .map_err(|e| CErr::fatal(e.to_string()))?,
            l1_bytes: parse_size(args.get("l1").unwrap_or("4K"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            ways: args
                .get_or("ways", 1)
                .map_err(|e| CErr::fatal(e.to_string()))?,
            sizes: parse_size_range(args.get("sizes").unwrap_or("16K:4M"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            cycles: parse_int_range(args.get("cycles").unwrap_or("1:10"))
                .map_err(|e| CErr::fatal(e.to_string()))?,
            engine: args.get("engine").unwrap_or("onepass").to_string(),
            warmup_frac: args
                .get_or("warmup-frac", 0.25)
                .map_err(|e| CErr::fatal(e.to_string()))?,
            wait: !args.has("no-wait"),
            deadline_ms,
        };
        if deadline_ms > 0 {
            // Belt and braces: if the server never answers `timeout`
            // (wedged, chaos-delayed), give up locally a bit later.
            session.set_read_timeout(Duration::from_millis(deadline_ms.saturating_add(5_000)))?;
        }
        let wait = request.wait;
        session.send(&Request::Submit(request))?;
        match session.recv()? {
            Event::Accepted {
                key,
                rows_total,
                coalesced,
            } => {
                println!("key={key}");
                println!("rows_total={rows_total}");
                println!("coalesced={coalesced}");
            }
            other => return Err(unexpected("accepted", other)),
        }
        if !wait {
            return Ok(());
        }
        loop {
            match session.recv()? {
                Event::Progress {
                    rows_done,
                    rows_total,
                    row,
                    ..
                } => eprintln!("row {row} done ({rows_done}/{rows_total})"),
                Event::Done {
                    source,
                    rows_resumed,
                    grid,
                    ..
                } => {
                    println!("source={}", source.as_str());
                    println!("rows_resumed={rows_resumed}");
                    if let Some(out) = args.get("out") {
                        write_grid_csv(&grid, out)?;
                    }
                    return Ok(());
                }
                other => return Err(unexpected("progress or done", other)),
            }
        }
    }

    fn fetch(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let key: String = args
            .require("key")
            .map_err(|e| CErr::fatal(e.to_string()))?;
        session.send(&Request::Fetch { key })?;
        match session.recv()? {
            Event::Done {
                key, source, grid, ..
            } => {
                println!("key={key}");
                println!("source={}", source.as_str());
                if let Some(out) = args.get("out") {
                    write_grid_csv(&grid, out)?;
                }
                Ok(())
            }
            other => Err(unexpected("done", other)),
        }
    }

    fn status(args: &Args, session: &mut Session) -> Result<(), CErr> {
        let key: String = args
            .require("key")
            .map_err(|e| CErr::fatal(e.to_string()))?;
        session.send(&Request::Status { key })?;
        match session.recv()? {
            Event::Status {
                key,
                state,
                rows_done,
                rows_total,
            } => {
                println!("key={key}");
                println!("state={state}");
                if state == "running" {
                    println!("rows_done={rows_done}");
                    println!("rows_total={rows_total}");
                }
                Ok(())
            }
            other => Err(unexpected("status", other)),
        }
    }

    fn ping(session: &mut Session) -> Result<(), CErr> {
        session.send(&Request::Ping)?;
        match session.recv()? {
            Event::Pong {
                proto,
                version,
                stats,
            } => {
                println!("proto={proto}");
                println!("version={version}");
                println!("uptime_ms={}", stats.uptime_ms);
                println!("jobs_computed={}", stats.jobs_computed);
                println!("jobs_recovered={}", stats.jobs_recovered);
                println!("jobs_coalesced={}", stats.jobs_coalesced);
                println!("jobs_shed={}", stats.jobs_shed);
                println!("jobs_timeout={}", stats.jobs_timeout);
                println!("mem_entries={}", stats.mem_entries);
                println!("disk_entries={}", stats.disk_entries);
                println!("disk_bytes={}", stats.disk_bytes);
                println!("disk_evictions={}", stats.disk_evictions);
                println!("disk_evicted_bytes={}", stats.disk_evicted_bytes);
                println!("handlers_active={}", stats.handlers_active);
                println!("spool_orphans={}", stats.spool_orphans);
                Ok(())
            }
            other => Err(unexpected("pong", other)),
        }
    }

    fn shutdown(session: &mut Session) -> Result<(), CErr> {
        session.send(&Request::Shutdown)?;
        match session.recv()? {
            Event::Bye => {
                println!("shutdown=requested");
                Ok(())
            }
            other => Err(unexpected("bye", other)),
        }
    }

    /// The chaos harness's abusive peer: connect, optionally write half
    /// a request line, then hold the socket open without ever reading.
    /// A hardened daemon reaps this connection at its I/O timeout;
    /// success here just means we held on as long as asked (the server
    /// closing on us early is fine too — that *is* the reap).
    fn stall(args: &Args, socket: &PathBuf) -> Result<(), String> {
        let hold_ms: u64 = args
            .get_or("hold-ms", 35_000u64)
            .map_err(|e| e.to_string())?;
        let mut stream = UnixStream::connect(socket)
            .map_err(|e| format!("connecting to {}: {e}", socket.display()))?;
        if args.has("half-line") {
            // Half a `ping`: a request the server can never finish
            // parsing, from a peer that never finishes sending.
            let _ = stream.write_all(b"{\"op\":\"pi");
            let _ = stream.flush();
        }
        std::thread::sleep(Duration::from_millis(hold_ms));
        println!("stalled_ms={hold_ms}");
        Ok(())
    }

    fn execute(command: &str, args: &Args, socket: &PathBuf) -> Result<(), CErr> {
        let mut session = Session::connect(socket, args.get("events-out"))?;
        match command {
            "submit" => submit(args, &mut session),
            "status" => status(args, &mut session),
            "fetch" => fetch(args, &mut session),
            "ping" => ping(&mut session),
            "shutdown" => shutdown(&mut session),
            other => Err(CErr::fatal(format!(
                "unknown command '{other}': submit | status | fetch | ping | shutdown | stall"
            ))),
        }
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-client: submit sweeps to (and query) an mlc-serve daemon; \
             commands: submit | status | fetch | ping | shutdown | stall",
            flags(),
            std::env::args(),
        )?;
        let socket: PathBuf = args.require("socket")?;
        let command = match args.positional.as_slice() {
            [one] => one.as_str(),
            [] => {
                return Err(
                    "missing command: submit | status | fetch | ping | shutdown | stall".into(),
                )
            }
            more => return Err(format!("expected one command, got {more:?}").into()),
        };
        if command == "stall" {
            return stall(&args, &socket).map_err(Into::into);
        }
        let retries: u32 = args.get_or("retries", 2u32)?;
        let retry_max_ms: u64 = args.get_or("retry-max-ms", 2_000u64)?;
        let mut jitter = Jitter::seeded();
        let mut attempt = 0u32;
        loop {
            match execute(command, &args, &socket) {
                Ok(()) => return Ok(()),
                Err(e) if e.retryable && attempt < retries => {
                    attempt += 1;
                    let delay = jitter.backoff_ms(attempt, retry_max_ms);
                    eprintln!(
                        "mlc-client: transient failure ({}); retry {attempt}/{retries} in {delay}ms",
                        e.message
                    );
                    std::thread::sleep(Duration::from_millis(delay));
                }
                Err(e) => return Err(e.message.into()),
            }
        }
    }
}
