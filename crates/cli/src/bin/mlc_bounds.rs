//! `mlc-bounds` — guaranteed per-level miss bounds from static
//! must/may analysis, with an optional sim-vs-bounds cross-check.
//!
//! ```text
//! mlc-bounds --trace t.din                      # base machine, human table
//! mlc-bounds --trace t.din --machine m.mlc      # a described machine
//! mlc-bounds --trace t.din --format json        # mlc-bounds/1 JSON
//! mlc-bounds --trace t.din --check              # also simulate and verify
//! ```
//!
//! Exit status: 0 on success, 1 when `--check` finds the simulator
//! outside the guaranteed bounds (or on other failures), 2 on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use mlc_check::SourceMap;
use mlc_cli::args::{Args, Flag};
use mlc_cli::obs::{obs_flags, Observability};
use mlc_obs::json::JsonValue;
use mlc_obs::{digest_records_hex, RunManifest};
use mlc_wcet::analyze;

fn flags() -> Vec<Flag> {
    let mut flags = vec![
        Flag {
            name: "trace",
            value: "PATH",
            help: "input trace (.din or mlc binary)",
        },
        Flag {
            name: "machine",
            value: "PATH",
            help: "machine description file (default: the paper's base machine)",
        },
        Flag {
            name: "format",
            value: "FMT",
            help: "output format: human (default) or json",
        },
        Flag {
            name: "check",
            value: "",
            help: "cold-simulate the trace and verify misses fall inside the bounds",
        },
        mlc_cli::trace_faults_flag(),
    ];
    flags.extend(obs_flags());
    flags
}

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-bounds: guaranteed per-level miss bounds via static must/may analysis",
        flags(),
        std::env::args(),
    )?;
    let trace_path: PathBuf = args.require("trace")?;
    let format = args.get("format").unwrap_or("human");
    if format != "human" && format != "json" {
        return Err(format!("unknown format {format:?} (expected human or json)").into());
    }
    let fault_policy = mlc_cli::parse_trace_faults(&args)?;
    let obs = Observability::from_args(&args)?;

    let (config, map) = match args.get("machine") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let (config, map) = mlc_cli::machine_file::parse_machine_with_spans(&text)?;
            (config, map)
        }
        None => (mlc_sim::machine::base_machine(), SourceMap::new()),
    };

    eprintln!("reading {} …", trace_path.display());
    let timer = obs.metrics.time_phase("read_trace");
    let (records, ingest, sidecar) = mlc_cli::read_trace_file_with(&trace_path, fault_policy)?;
    timer.stop();
    if ingest.quarantined > 0 {
        eprintln!(
            "warning: quarantined {} malformed trace record(s){}",
            ingest.quarantined,
            sidecar
                .map(|p| format!("; see {}", p.display()))
                .unwrap_or_default()
        );
    }
    if records.is_empty() {
        return Err("trace is empty".into());
    }

    let mut manifest = RunManifest::new("mlc-bounds", env!("CARGO_PKG_VERSION"));
    manifest.command(std::env::args().skip(1));
    if obs.metrics.is_enabled() {
        let digest = digest_records_hex(&records);
        manifest.trace(
            &trace_path.display().to_string(),
            records.len() as u64,
            0,
            &digest,
        );
    }
    manifest.param("machine_depth", config.depth() as u64);

    let timer = obs.metrics.time_phase("analyze");
    let report = analyze(&config, &records)?;
    timer.stop();
    obs.metrics
        .add("bounds.trace_records", report.trace_records);

    // Optional oracle: a cold simulation must land inside the bounds.
    let measured = if args.has("check") {
        let timer = obs.metrics.time_phase("simulate");
        let result = mlc_sim::simulate(config.clone(), records.iter().copied())?;
        timer.stop();
        Some(
            result
                .levels
                .iter()
                .map(|l| l.cache.read_misses())
                .collect::<Vec<u64>>(),
        )
    } else {
        None
    };
    let check = measured.as_ref().map(|m| report.check(m, &map));
    let oracle_ok = check.as_ref().is_none_or(|c| !c.has_errors());

    if format == "json" {
        let mut json = report.to_json();
        if let (Some(m), Some(c)) = (&measured, &check) {
            if let JsonValue::Object(fields) = &mut json {
                fields.push((
                    "measured_read_misses".into(),
                    JsonValue::Array(m.iter().map(|&v| v.into()).collect()),
                ));
                fields.push(("oracle_ok".into(), (!c.has_errors()).into()));
            }
        }
        println!("{}", json.to_string_pretty());
    } else {
        println!(
            "trace: {} records ({} reads){}",
            report.trace_records,
            report.read_records,
            if report.writes_widen {
                "; write traffic widens bounds below L1"
            } else {
                ""
            }
        );
        println!("{}", report.table());
        println!(
            "read-path cycles in [{}, {}] (worst-case bound {:.2} ns at {} ns/cycle)",
            report.read_cycles_lo,
            report.read_cycles_hi,
            report.read_cycles_hi as f64 * config.cpu.cycle_ns,
            config.cpu.cycle_ns
        );
        if let (Some(m), Some(c)) = (&measured, &check) {
            println!("cold simulation read misses per level: {m:?}");
            if c.is_clean() {
                println!("oracle: simulated misses fall inside every guaranteed bound");
            } else {
                print!("{}", c.render_human(&trace_path.display().to_string()));
            }
        }
    }
    obs.finish(&mut manifest)?;
    Ok(oracle_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("mlc-bounds: {e}");
            ExitCode::from(2)
        }
    }
}
