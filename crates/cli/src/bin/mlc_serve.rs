//! `mlc-serve` — the sweep daemon: accepts sweep jobs over a Unix
//! socket, answers repeats from a content-addressed two-tier result
//! cache, and resumes crash-interrupted sweeps on restart.
//!
//! ```text
//! mlc-serve --store /var/tmp/mlc-store
//! mlc-serve --store store --socket /tmp/mlc.sock --mem-entries 16
//! ```
//!
//! Stop it with `mlc-client --socket … shutdown` (or a signal; a
//! killed server recovers its in-flight sweeps on the next start).

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-serve: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-serve: the daemon requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::Duration;

    use mlc_cli::args::{parse_size, Args, Flag};
    use mlc_cli::obs::{obs_flags, Observability};
    use mlc_obs::RunManifest;
    use mlc_serve::{net, FaultInjector, Server, ServerConfig, TraceLoader};

    fn flags() -> Vec<Flag> {
        let mut flags = vec![
            Flag {
                name: "store",
                value: "DIR",
                help: "result store root (cache/ and jobs/ live under it)",
            },
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket to listen on (default <store>/mlc-serve.sock)",
            },
            Flag {
                name: "mem-entries",
                value: "N",
                help: "capacity of the in-memory cache tier, in grids (default 8)",
            },
            Flag {
                name: "disk-budget",
                value: "SIZE",
                help: "byte budget for the committed disk tier, e.g. 64M \
                       (LRU eviction; default unbounded)",
            },
            Flag {
                name: "io-timeout-ms",
                value: "MS",
                help: "per-connection socket read/write timeout; 0 disables \
                       (default 30000)",
            },
            Flag {
                name: "max-handlers",
                value: "N",
                help: "max live connection handlers; over-cap connects get a \
                       typed 'overloaded' rejection (default 64)",
            },
            Flag {
                name: "max-jobs",
                value: "N",
                help: "max concurrent sweep jobs; further submissions are \
                       shed (default 32)",
            },
            Flag {
                name: "drain-ms",
                value: "MS",
                help: "on shutdown, wait up to MS for in-flight jobs to \
                       finish; journals of the rest stay resumable \
                       (default 10000)",
            },
            Flag {
                name: "stats-out",
                value: "PATH",
                help: "flight recorder: append one mlc-stats/1 snapshot line \
                       to PATH every --stats-every-ms (JSONL)",
            },
            Flag {
                name: "stats-every-ms",
                value: "MS",
                help: "flight-recorder snapshot period (default 1000)",
            },
            Flag {
                name: "stats-max-bytes",
                value: "SIZE",
                help: "rotate the flight recorder to PATH.1 when it grows \
                       past SIZE, e.g. 4M (default 16M)",
            },
            Flag {
                name: "events-out",
                value: "PATH",
                help: "on shutdown, write the server's request-lifecycle \
                       spans as a Perfetto/Chrome trace to PATH",
            },
            mlc_cli::trace_faults_flag(),
        ];
        flags.extend(obs_flags());
        flags
    }

    /// Trace ingestion for the daemon: the same quarantine-aware path
    /// the CLI binaries use, so a `skip:N` fault policy behaves
    /// identically whether a sweep runs via `mlc-sweep` or the server.
    /// Quarantine diagnostics are stamped with the requesting
    /// submission's trace id — in the warning, and in a `.ctx` file
    /// next to the quarantine sidecar (the sidecar itself stays pure
    /// rejected-records, its format untouched).
    fn loader(policy: mlc_trace::FaultPolicy) -> TraceLoader {
        Box::new(move |path, trace_id| {
            let (records, ingest, sidecar) =
                mlc_cli::read_trace_file_with(path, policy).map_err(|e| e.to_string())?;
            if ingest.quarantined > 0 {
                let ctx = if trace_id.is_empty() {
                    String::new()
                } else {
                    format!(" [trace_id {trace_id}]")
                };
                eprintln!(
                    "warning: quarantined {} malformed trace record(s){}{ctx}",
                    ingest.quarantined,
                    sidecar
                        .as_ref()
                        .map(|p| format!("; see {}", p.display()))
                        .unwrap_or_default()
                );
                if let (Some(sidecar), false) = (sidecar, trace_id.is_empty()) {
                    let meta = mlc_obs::json::JsonValue::object([
                        ("schema".into(), "mlc-quarantine-ctx/1".into()),
                        ("trace_id".into(), trace_id.into()),
                        ("quarantined".into(), ingest.quarantined.into()),
                    ]);
                    let mut line = meta.to_string_compact();
                    line.push('\n');
                    let _ = std::fs::write(suffixed(&sidecar, ".ctx"), line);
                }
            }
            Ok(records)
        })
    }

    /// `path` with `suffix` appended to its full file name (keeping
    /// any existing extension, unlike `Path::with_extension`).
    fn suffixed(path: &std::path::Path, suffix: &str) -> PathBuf {
        let mut name = path.as_os_str().to_owned();
        name.push(suffix);
        PathBuf::from(name)
    }

    /// The flight recorder: appends one compact `mlc-stats/1` snapshot
    /// line to `path` every `every`, rotating to `<path>.1` when the
    /// file grows past `max_bytes`. Runs until `server` reports
    /// shutdown; polls the flag at sub-second granularity so shutdown
    /// is never held up by a long snapshot period.
    fn flight_recorder(
        server: Arc<Server>,
        path: PathBuf,
        every: Duration,
        max_bytes: u64,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            use std::io::Write as _;
            while !server.shutdown_requested() {
                let wake = std::time::Instant::now() + every;
                while std::time::Instant::now() < wake {
                    if server.shutdown_requested() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50.min(every.as_millis() as u64)));
                }
                // Rotate first, so one snapshot never splits across
                // files and the pair is bounded by ~2x the budget.
                if std::fs::metadata(&path).is_ok_and(|m| m.len() >= max_bytes) {
                    let _ = std::fs::rename(&path, suffixed(&path, ".1"));
                }
                let mut line = server
                    .stats_doc(env!("CARGO_PKG_VERSION"))
                    .to_string_compact();
                line.push('\n');
                let written = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| f.write_all(line.as_bytes()));
                if let Err(e) = written {
                    eprintln!("mlc-serve: flight recorder write failed: {e}");
                }
            }
        })
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-serve: sweep-as-a-service daemon with a content-addressed result cache",
            flags(),
            std::env::args(),
        )?;
        let store: PathBuf = args.require("store")?;
        let socket = args
            .get("socket")
            .map(PathBuf::from)
            .unwrap_or_else(|| store.join("mlc-serve.sock"));
        let obs = Observability::from_args(&args)?;
        let mut config = ServerConfig::new(&store);
        config.mem_entries = args.get_or("mem-entries", 8usize)?;
        config.disk_budget = args.get("disk-budget").map(parse_size).transpose()?;
        let io_timeout_ms: u64 = args.get_or("io-timeout-ms", 30_000u64)?;
        config.io_timeout = (io_timeout_ms > 0).then(|| Duration::from_millis(io_timeout_ms));
        config.max_handlers = args.get_or("max-handlers", 64usize)?;
        config.max_jobs = args.get_or("max-jobs", 32usize)?;
        config.metrics = obs.metrics.clone();
        let drain_ms: u64 = args.get_or("drain-ms", 10_000u64)?;
        let stats_out = args.get("stats-out").map(PathBuf::from);
        let stats_every_ms: u64 = args.get_or("stats-every-ms", 1_000u64)?;
        let stats_max_bytes = args
            .get("stats-max-bytes")
            .map(parse_size)
            .transpose()?
            .unwrap_or(16 << 20);
        let events_out = args.get("events-out").map(PathBuf::from);
        if events_out.is_some() {
            // Retain a bounded span timeline for the Perfetto export;
            // histograms and counters record regardless.
            config.span_retention = 65_536;
        }
        // Test hook: widen the per-row window so CI can kill the
        // daemon mid-sweep deterministically.
        if let Ok(ms) = std::env::var("MLC_SERVE_ROW_DELAY_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("MLC_SERVE_ROW_DELAY_MS: '{ms}' is not an integer"))?;
            config.row_delay = Duration::from_millis(ms);
        }
        // Test hook: bounded fault budgets for the chaos smoke, e.g.
        // MLC_SERVE_CHAOS=journal-enospc=2,load-delay-ms=50. Budgets
        // drain as faults fire, so an outage heals without a restart.
        if let Ok(spec) = std::env::var("MLC_SERVE_CHAOS") {
            config.chaos =
                Arc::new(FaultInjector::parse(&spec).map_err(|e| format!("MLC_SERVE_CHAOS: {e}"))?);
            if config.chaos.is_armed() {
                eprintln!("mlc-serve: CHAOS ARMED ({spec})");
            }
        }
        let policy = mlc_cli::parse_trace_faults(&args)?;

        let server = Server::new(config, loader(policy))?;
        let report = server.recover();
        for key in &report.resumed {
            eprintln!("resumed in-flight sweep {key}");
        }
        for err in &report.errors {
            eprintln!("spool entry not resumed: {err}");
        }
        let stats = server.stats();
        if stats.spool_orphans > 0 {
            eprintln!(
                "janitor removed {} orphaned spool file(s)",
                stats.spool_orphans
            );
        }
        let budget_note = args
            .get("disk-budget")
            .map(|b| format!(", {}B of {b} disk budget used", stats.disk_bytes))
            .unwrap_or_default();
        eprintln!(
            "mlc-serve listening on {} (store {}, {} cached result(s), {} resumed{budget_note})",
            socket.display(),
            store.display(),
            stats.disk_entries,
            report.resumed.len(),
        );
        let recorder = stats_out.map(|path| {
            eprintln!(
                "mlc-serve: flight recorder on {} every {stats_every_ms}ms \
                 (rotate at {stats_max_bytes} bytes)",
                path.display()
            );
            flight_recorder(
                Arc::clone(&server),
                path,
                Duration::from_millis(stats_every_ms.max(1)),
                stats_max_bytes,
            )
        });
        net::serve(Arc::clone(&server), &socket, env!("CARGO_PKG_VERSION"))?;
        if let Some(recorder) = recorder {
            let _ = recorder.join();
        }
        if server.drain(Duration::from_millis(drain_ms)) {
            eprintln!("mlc-serve: shutdown complete");
        } else {
            eprintln!(
                "mlc-serve: drain timed out after {drain_ms}ms; \
                 unfinished journals stay in the spool, resumable"
            );
        }
        if let Some(path) = events_out {
            // Export after drain, so spans from jobs that finished
            // during the drain window make the timeline.
            let spans = server.telemetry().retained_spans();
            let file = std::fs::File::create(&path)?;
            mlc_obs::write_span_chrome_trace(file, &spans)?;
            eprintln!(
                "mlc-serve: wrote {} span(s) to {} (Perfetto/chrome://tracing)",
                spans.len(),
                path.display()
            );
        }
        let mut manifest = RunManifest::new("mlc-serve", env!("CARGO_PKG_VERSION"));
        obs.finish(&mut manifest)?;
        Ok(())
    }
}
