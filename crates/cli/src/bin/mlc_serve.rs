//! `mlc-serve` — the sweep daemon: accepts sweep jobs over a Unix
//! socket, answers repeats from a content-addressed two-tier result
//! cache, and resumes crash-interrupted sweeps on restart.
//!
//! ```text
//! mlc-serve --store /var/tmp/mlc-store
//! mlc-serve --store store --socket /tmp/mlc.sock --mem-entries 16
//! ```
//!
//! Stop it with `mlc-client --socket … shutdown` (or a signal; a
//! killed server recovers its in-flight sweeps on the next start).

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-serve: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-serve: the daemon requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::path::PathBuf;
    use std::time::Duration;

    use mlc_cli::args::{Args, Flag};
    use mlc_serve::{net, Server, ServerConfig, TraceLoader};

    fn flags() -> Vec<Flag> {
        vec![
            Flag {
                name: "store",
                value: "DIR",
                help: "result store root (cache/ and jobs/ live under it)",
            },
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket to listen on (default <store>/mlc-serve.sock)",
            },
            Flag {
                name: "mem-entries",
                value: "N",
                help: "capacity of the in-memory cache tier, in grids (default 8)",
            },
            mlc_cli::trace_faults_flag(),
        ]
    }

    /// Trace ingestion for the daemon: the same quarantine-aware path
    /// the CLI binaries use, so a `skip:N` fault policy behaves
    /// identically whether a sweep runs via `mlc-sweep` or the server.
    fn loader(policy: mlc_trace::FaultPolicy) -> TraceLoader {
        Box::new(move |path| {
            let (records, ingest, sidecar) =
                mlc_cli::read_trace_file_with(path, policy).map_err(|e| e.to_string())?;
            if ingest.quarantined > 0 {
                eprintln!(
                    "warning: quarantined {} malformed trace record(s){}",
                    ingest.quarantined,
                    sidecar
                        .map(|p| format!("; see {}", p.display()))
                        .unwrap_or_default()
                );
            }
            Ok(records)
        })
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-serve: sweep-as-a-service daemon with a content-addressed result cache",
            flags(),
            std::env::args(),
        )?;
        let store: PathBuf = args.require("store")?;
        let socket = args
            .get("socket")
            .map(PathBuf::from)
            .unwrap_or_else(|| store.join("mlc-serve.sock"));
        let mut config = ServerConfig::new(&store);
        config.mem_entries = args.get_or("mem-entries", 8usize)?;
        // Test hook: widen the per-row window so CI can kill the
        // daemon mid-sweep deterministically.
        if let Ok(ms) = std::env::var("MLC_SERVE_ROW_DELAY_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("MLC_SERVE_ROW_DELAY_MS: '{ms}' is not an integer"))?;
            config.row_delay = Duration::from_millis(ms);
        }
        let policy = mlc_cli::parse_trace_faults(&args)?;

        let server = Server::new(config, loader(policy))?;
        let report = server.recover();
        for key in &report.resumed {
            eprintln!("resumed in-flight sweep {key}");
        }
        for err in &report.errors {
            eprintln!("spool entry not resumed: {err}");
        }
        let stats = server.stats();
        eprintln!(
            "mlc-serve listening on {} (store {}, {} cached result(s), {} resumed)",
            socket.display(),
            store.display(),
            stats.disk_entries,
            report.resumed.len()
        );
        net::serve(server, &socket, env!("CARGO_PKG_VERSION"))?;
        eprintln!("mlc-serve: shutdown complete");
        Ok(())
    }
}
