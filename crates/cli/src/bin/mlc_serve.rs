//! `mlc-serve` — the sweep daemon: accepts sweep jobs over a Unix
//! socket, answers repeats from a content-addressed two-tier result
//! cache, and resumes crash-interrupted sweeps on restart.
//!
//! ```text
//! mlc-serve --store /var/tmp/mlc-store
//! mlc-serve --store store --socket /tmp/mlc.sock --mem-entries 16
//! ```
//!
//! Stop it with `mlc-client --socket … shutdown` (or a signal; a
//! killed server recovers its in-flight sweeps on the next start).

#[cfg(unix)]
fn main() -> std::process::ExitCode {
    match unix::run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-serve: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(not(unix))]
fn main() -> std::process::ExitCode {
    eprintln!("mlc-serve: the daemon requires Unix domain sockets (unix-only)");
    std::process::ExitCode::FAILURE
}

#[cfg(unix)]
mod unix {
    use std::path::PathBuf;
    use std::sync::Arc;
    use std::time::Duration;

    use mlc_cli::args::{parse_size, Args, Flag};
    use mlc_cli::obs::{obs_flags, Observability};
    use mlc_obs::RunManifest;
    use mlc_serve::{net, FaultInjector, Server, ServerConfig, TraceLoader};

    fn flags() -> Vec<Flag> {
        let mut flags = vec![
            Flag {
                name: "store",
                value: "DIR",
                help: "result store root (cache/ and jobs/ live under it)",
            },
            Flag {
                name: "socket",
                value: "PATH",
                help: "Unix socket to listen on (default <store>/mlc-serve.sock)",
            },
            Flag {
                name: "mem-entries",
                value: "N",
                help: "capacity of the in-memory cache tier, in grids (default 8)",
            },
            Flag {
                name: "disk-budget",
                value: "SIZE",
                help: "byte budget for the committed disk tier, e.g. 64M \
                       (LRU eviction; default unbounded)",
            },
            Flag {
                name: "io-timeout-ms",
                value: "MS",
                help: "per-connection socket read/write timeout; 0 disables \
                       (default 30000)",
            },
            Flag {
                name: "max-handlers",
                value: "N",
                help: "max live connection handlers; over-cap connects get a \
                       typed 'overloaded' rejection (default 64)",
            },
            Flag {
                name: "max-jobs",
                value: "N",
                help: "max concurrent sweep jobs; further submissions are \
                       shed (default 32)",
            },
            Flag {
                name: "drain-ms",
                value: "MS",
                help: "on shutdown, wait up to MS for in-flight jobs to \
                       finish; journals of the rest stay resumable \
                       (default 10000)",
            },
            mlc_cli::trace_faults_flag(),
        ];
        flags.extend(obs_flags());
        flags
    }

    /// Trace ingestion for the daemon: the same quarantine-aware path
    /// the CLI binaries use, so a `skip:N` fault policy behaves
    /// identically whether a sweep runs via `mlc-sweep` or the server.
    fn loader(policy: mlc_trace::FaultPolicy) -> TraceLoader {
        Box::new(move |path| {
            let (records, ingest, sidecar) =
                mlc_cli::read_trace_file_with(path, policy).map_err(|e| e.to_string())?;
            if ingest.quarantined > 0 {
                eprintln!(
                    "warning: quarantined {} malformed trace record(s){}",
                    ingest.quarantined,
                    sidecar
                        .map(|p| format!("; see {}", p.display()))
                        .unwrap_or_default()
                );
            }
            Ok(records)
        })
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        let args = Args::parse(
            "mlc-serve: sweep-as-a-service daemon with a content-addressed result cache",
            flags(),
            std::env::args(),
        )?;
        let store: PathBuf = args.require("store")?;
        let socket = args
            .get("socket")
            .map(PathBuf::from)
            .unwrap_or_else(|| store.join("mlc-serve.sock"));
        let obs = Observability::from_args(&args)?;
        let mut config = ServerConfig::new(&store);
        config.mem_entries = args.get_or("mem-entries", 8usize)?;
        config.disk_budget = args.get("disk-budget").map(parse_size).transpose()?;
        let io_timeout_ms: u64 = args.get_or("io-timeout-ms", 30_000u64)?;
        config.io_timeout = (io_timeout_ms > 0).then(|| Duration::from_millis(io_timeout_ms));
        config.max_handlers = args.get_or("max-handlers", 64usize)?;
        config.max_jobs = args.get_or("max-jobs", 32usize)?;
        config.metrics = obs.metrics.clone();
        let drain_ms: u64 = args.get_or("drain-ms", 10_000u64)?;
        // Test hook: widen the per-row window so CI can kill the
        // daemon mid-sweep deterministically.
        if let Ok(ms) = std::env::var("MLC_SERVE_ROW_DELAY_MS") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("MLC_SERVE_ROW_DELAY_MS: '{ms}' is not an integer"))?;
            config.row_delay = Duration::from_millis(ms);
        }
        // Test hook: bounded fault budgets for the chaos smoke, e.g.
        // MLC_SERVE_CHAOS=journal-enospc=2,load-delay-ms=50. Budgets
        // drain as faults fire, so an outage heals without a restart.
        if let Ok(spec) = std::env::var("MLC_SERVE_CHAOS") {
            config.chaos =
                Arc::new(FaultInjector::parse(&spec).map_err(|e| format!("MLC_SERVE_CHAOS: {e}"))?);
            if config.chaos.is_armed() {
                eprintln!("mlc-serve: CHAOS ARMED ({spec})");
            }
        }
        let policy = mlc_cli::parse_trace_faults(&args)?;

        let server = Server::new(config, loader(policy))?;
        let report = server.recover();
        for key in &report.resumed {
            eprintln!("resumed in-flight sweep {key}");
        }
        for err in &report.errors {
            eprintln!("spool entry not resumed: {err}");
        }
        let stats = server.stats();
        if stats.spool_orphans > 0 {
            eprintln!(
                "janitor removed {} orphaned spool file(s)",
                stats.spool_orphans
            );
        }
        let budget_note = args
            .get("disk-budget")
            .map(|b| format!(", {}B of {b} disk budget used", stats.disk_bytes))
            .unwrap_or_default();
        eprintln!(
            "mlc-serve listening on {} (store {}, {} cached result(s), {} resumed{budget_note})",
            socket.display(),
            store.display(),
            stats.disk_entries,
            report.resumed.len(),
        );
        net::serve(Arc::clone(&server), &socket, env!("CARGO_PKG_VERSION"))?;
        if server.drain(Duration::from_millis(drain_ms)) {
            eprintln!("mlc-serve: shutdown complete");
        } else {
            eprintln!(
                "mlc-serve: drain timed out after {drain_ms}ms; \
                 unfinished journals stay in the spool, resumable"
            );
        }
        let mut manifest = RunManifest::new("mlc-serve", env!("CARGO_PKG_VERSION"));
        obs.finish(&mut manifest)?;
        Ok(())
    }
}
