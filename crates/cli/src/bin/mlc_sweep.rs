//! `mlc-sweep` — sweep the L2 design space over a trace.
//!
//! ```text
//! mlc-sweep --trace trace.din --sizes 16K:4M --cycles 1:10 --ways 1 \
//!           --engine onepass --out grid.csv
//! mlc-sweep --trace trace.din --journal sweep.jsonl            # checkpoint
//! mlc-sweep --trace trace.din --journal sweep.jsonl --resume   # continue
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;

use mlc_cache::ByteSize;
use mlc_cli::args::{parse_choice, parse_int_range, parse_size_range, Args, Flag};
use mlc_cli::machine_file;
use mlc_cli::obs::{obs_flags, Observability};
use mlc_core::{
    constant_performance_lines, fmt_f2, slopes_cycles_per_doubling, verify_grids, DesignGrid,
    Explorer, GridRow, SlopeRegion, SweepEngine, Table,
};
use mlc_obs::json::JsonValue;
use mlc_obs::{digest_records_hex, JournalHeader, JournalRow, JournalWriter, RunManifest};
use mlc_sim::machine::BaseMachine;
use mlc_sim::HierarchyConfig;

fn flags() -> Vec<Flag> {
    let mut flags = vec![
        Flag {
            name: "trace",
            value: "PATH",
            help: "input trace (.din or mlc binary)",
        },
        Flag {
            name: "sizes",
            value: "LO:HI",
            help: "L2 size range, powers of two (default 16K:4M)",
        },
        Flag {
            name: "cycles",
            value: "LO:HI",
            help: "L2 cycle-time range in CPU cycles (default 1:10)",
        },
        Flag {
            name: "ways",
            value: "W",
            help: "L2 associativity (default 1)",
        },
        Flag {
            name: "l1",
            value: "SIZE",
            help: "combined split-L1 size (default 4K)",
        },
        Flag {
            name: "warmup-frac",
            value: "F",
            help: "fraction of the trace excluded from statistics (default 0.25)",
        },
        Flag {
            name: "engine",
            value: "NAME",
            help: "grid engine: onepass (default; one simulation per size) or exhaustive",
        },
        Flag {
            name: "cross-check",
            value: "",
            help: "run both engines and fail unless they agree cycle-exact",
        },
        Flag {
            name: "out",
            value: "PATH",
            help: "write the execution-time grid as CSV",
        },
        Flag {
            name: "isoperf",
            value: "BOOL",
            help: "also print lines of constant performance (default true)",
        },
        Flag {
            name: "lint",
            value: "",
            help: "lint every swept configuration before simulating",
        },
        Flag {
            name: "deny-warnings",
            value: "",
            help: "with --lint, treat warnings as failures",
        },
        Flag {
            name: "journal",
            value: "PATH",
            help: "append each completed grid row to a crash-consistent journal",
        },
        Flag {
            name: "resume",
            value: "",
            help: "with --journal, replay completed rows and compute only the rest",
        },
        Flag {
            name: "max-point-failures",
            value: "N",
            help: "tolerate up to N failed grid rows before exiting nonzero (default 0)",
        },
        mlc_cli::trace_faults_flag(),
    ];
    flags.extend(obs_flags());
    flags
}

/// Builds every grid point's configuration up front, so an invalid
/// combination surfaces as a typed error here instead of a panic inside
/// the parallel sweep. Returns the first point's configuration (for the
/// manifest's resolved machine description).
fn validate_grid(
    l1: ByteSize,
    sizes: &[ByteSize],
    cycles: &[u64],
    ways: u32,
) -> Result<HierarchyConfig, String> {
    let mut first = None;
    for &size in sizes {
        for &c in cycles {
            let config = BaseMachine::new()
                .l1_total(l1)
                .l2_total(size)
                .l2_cycles(c)
                .l2_ways(ways)
                .build()
                .map_err(|e| format!("invalid grid point [L2 {size}, {c} cycles]: {e}"))?;
            if first.is_none() {
                first = Some(config);
            }
        }
    }
    first.ok_or_else(|| "empty grid: need at least one size and one cycle time".into())
}

/// Lints every grid point of the sweep, deduplicating findings that
/// repeat across points (a degenerate corner usually taints a whole row
/// or column). Returns false when the sweep should not proceed.
fn lint_sweep(
    l1: ByteSize,
    sizes: &[ByteSize],
    cycles: &[u64],
    ways: u32,
    deny_warnings: bool,
) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    let mut report = mlc_check::Report::clean();
    for &size in sizes {
        for &c in cycles {
            let config = BaseMachine::new()
                .l1_total(l1)
                .l2_total(size)
                .l2_cycles(c)
                .l2_ways(ways)
                .build();
            let point = format!("[L2 {size}, {c} cycles]");
            match config {
                Ok(config) => {
                    for d in mlc_cli::lint::lint_config(&config).diagnostics {
                        if seen.insert((d.rule, d.message.clone())) {
                            let mut d = d;
                            d.message = format!("{point} {}", d.message);
                            report.push(d);
                        }
                    }
                }
                Err(e) => {
                    if seen.insert((mlc_check::RuleId::ParseError, e.to_string())) {
                        report.push(mlc_check::Diagnostic::new(
                            mlc_check::RuleId::ParseError,
                            format!("{point} {e}"),
                            None,
                        ));
                    }
                }
            }
        }
    }
    eprint!("{}", report.render_human("sweep"));
    !report.should_fail(deny_warnings)
}

/// Rejects a resumed journal whose sweep definition differs from the
/// current invocation, naming the first mismatching field.
fn verify_header(journal: &JournalHeader, run: &JournalHeader) -> Result<(), String> {
    fn check<T: PartialEq + std::fmt::Debug>(field: &str, j: &T, r: &T) -> Result<(), String> {
        if j == r {
            Ok(())
        } else {
            Err(format!(
                "journal {field} mismatch: journal has {j:?}, this run has {r:?}; \
                 rerun with matching flags or remove the journal"
            ))
        }
    }
    check("trace_digest", &journal.trace_digest, &run.trace_digest)?;
    check("engine", &journal.engine, &run.engine)?;
    check("l1_bytes", &journal.l1_bytes, &run.l1_bytes)?;
    check("warmup", &journal.warmup, &run.warmup)?;
    check("ways", &journal.ways, &run.ways)?;
    check("sizes", &journal.sizes, &run.sizes)?;
    check("cycles", &journal.cycles, &run.cycles)?;
    Ok(())
}

/// Opens the sweep journal: fresh for `--journal`, replayed for
/// `--journal --resume`. A resumed journal must have been written by an
/// identical sweep definition (see [`verify_header`]); its torn tail,
/// if any, is crash debris and is truncated away by
/// [`JournalWriter::resume`]. Returns the writer plus the rows already
/// committed.
fn open_journal(
    path: &Path,
    resume: bool,
    header: &JournalHeader,
) -> Result<(JournalWriter, Vec<GridRow>), Box<dyn std::error::Error>> {
    if !path.exists() {
        if resume {
            eprintln!("journal {} not found; starting fresh", path.display());
        }
        return Ok((JournalWriter::create(path, header)?, Vec::new()));
    }
    if !resume {
        return Err(format!(
            "journal {} already exists; pass --resume to continue it or remove the file",
            path.display()
        )
        .into());
    }
    // Resume validates the whole journal and truncates any torn tail
    // itself before the writer appends anything.
    let (writer, journal) = JournalWriter::resume(path)?;
    if journal.torn_tail {
        eprintln!("warning: dropped torn partial line at the journal tail (crash debris)");
    }
    verify_header(&journal.header, header)?;
    let rows = (0..header.sizes.len() as u64)
        .filter_map(|i| journal.row_for(i))
        .map(|r| GridRow {
            size_idx: r.row as usize,
            total: r.total.clone(),
            l2_local: r.l2_local,
            l2_global: r.l2_global,
            m_l1_global: r.m_l1_global,
            cpu_cycle_ns: r.cpu_cycle_ns,
        })
        .collect();
    Ok((writer, rows))
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-sweep: L2 design-space exploration over a trace",
        flags(),
        std::env::args(),
    )?;
    let trace_path: PathBuf = args.require("trace")?;
    let sizes: Vec<ByteSize> = parse_size_range(args.get("sizes").unwrap_or("16K:4M"))?
        .into_iter()
        .map(ByteSize::new)
        .collect();
    let cycles = parse_int_range(args.get("cycles").unwrap_or("1:10"))?;
    let ways: u32 = args.get_or("ways", 1)?;
    let l1 = ByteSize::new(mlc_cli::args::parse_size(args.get("l1").unwrap_or("4K"))?);
    let warmup_frac: f64 = args.get_or("warmup-frac", 0.25)?;
    let engine = match args.get("engine") {
        None => SweepEngine::OnePass,
        Some(v) => parse_choice(
            "engine",
            v,
            &[
                ("exhaustive", SweepEngine::Exhaustive),
                ("onepass", SweepEngine::OnePass),
            ],
        )?,
    };

    let journal_path = args.get("journal").map(PathBuf::from);
    let resume = args.has("resume");
    let max_point_failures: u64 = args.get_or("max-point-failures", 0)?;
    let fault_policy = mlc_cli::parse_trace_faults(&args)?;
    if resume && journal_path.is_none() {
        return Err("--resume requires --journal".into());
    }
    if journal_path.is_some() && args.has("cross-check") {
        return Err("--journal cannot be combined with --cross-check".into());
    }

    if args.has("lint") && !lint_sweep(l1, &sizes, &cycles, ways, args.has("deny-warnings")) {
        return Err("sweep configurations failed lint".into());
    }
    let first_config = validate_grid(l1, &sizes, &cycles, ways)?;
    let obs = Observability::from_args(&args)?;

    let timer = obs.metrics.time_phase("read_trace");
    let (trace, ingest, sidecar) = mlc_cli::read_trace_file_with(&trace_path, fault_policy)?;
    timer.stop();
    if ingest.quarantined > 0 {
        eprintln!(
            "warning: quarantined {} malformed trace record(s){}{}",
            ingest.quarantined,
            if ingest.truncated {
                " (input truncated)"
            } else {
                ""
            },
            sidecar
                .map(|p| format!("; see {}", p.display()))
                .unwrap_or_default()
        );
    }
    obs.metrics.add("trace.quarantined", ingest.quarantined);
    let warmup = (trace.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    let passes = match engine {
        SweepEngine::Exhaustive => sizes.len() * cycles.len(),
        SweepEngine::OnePass => sizes.len(),
    };
    eprintln!(
        "sweeping {} sizes x {} cycle times ({engine} engine: {passes} simulations of {} references) …",
        sizes.len(),
        cycles.len(),
        trace.len()
    );

    let mut manifest = RunManifest::new("mlc-sweep", env!("CARGO_PKG_VERSION"));
    manifest.command(std::env::args().skip(1));
    // The journal header pins the digest, so journalling computes it
    // even when metrics are off.
    let digest = if journal_path.is_some() || obs.metrics.is_enabled() {
        let timer = obs.metrics.time_phase("digest_trace");
        let digest = digest_records_hex(&trace);
        timer.stop();
        Some(digest)
    } else {
        None
    };
    if obs.metrics.is_enabled() {
        manifest.trace(
            &trace_path.display().to_string(),
            trace.len() as u64,
            warmup as u64,
            digest.as_deref().expect("metrics enabled implies a digest"),
        );
    }
    manifest.engine(&engine.to_string());
    manifest.param("l1_bytes", l1.get());
    manifest.param(
        "l2_sizes",
        JsonValue::Array(sizes.iter().map(|s| s.to_string().into()).collect()),
    );
    manifest.param(
        "l2_cycles",
        JsonValue::Array(cycles.iter().map(|&c| c.into()).collect()),
    );
    manifest.param("l2_ways", u64::from(ways));
    manifest.param("warmup_frac", warmup_frac);
    manifest.param("cross_check", args.has("cross-check"));
    manifest.param(
        "trace_faults",
        args.get("trace-faults").unwrap_or("fail").to_string(),
    );
    manifest.param("trace_quarantined", ingest.quarantined);
    manifest.param("max_point_failures", max_point_failures);
    if let Some(p) = &journal_path {
        manifest.param("journal", p.display().to_string());
        manifest.param("resume", resume);
    }
    manifest.param("machine", machine_file::render_machine(&first_config));

    let mut base = BaseMachine::new();
    base.l1_total(l1);
    let explorer = Explorer::new(&trace, warmup).with_metrics(&obs.metrics);
    let points = (sizes.len() * cycles.len()) as u64;
    let (grid, failures) = if args.has("cross-check") {
        let progress = obs.progress("exhaustive", points);
        let exhaustive = explorer.with_progress(&progress).l2_grid_with(
            SweepEngine::Exhaustive,
            &base,
            &sizes,
            &cycles,
            ways,
        );
        progress.finish();
        let progress = obs.progress("onepass", points);
        let onepass = explorer.with_progress(&progress).l2_grid_with(
            SweepEngine::OnePass,
            &base,
            &sizes,
            &cycles,
            ways,
        );
        progress.finish();
        verify_grids(&exhaustive, &onepass)
            .map_err(|d| format!("engine cross-check failed: {d}"))?;
        eprintln!(
            "cross-check passed: engines agree cycle-exact on all {} grid points",
            sizes.len() * cycles.len()
        );
        let grid = match engine {
            SweepEngine::Exhaustive => exhaustive,
            SweepEngine::OnePass => onepass,
        };
        (grid, Vec::new())
    } else {
        let header = JournalHeader {
            trace_digest: digest.clone().unwrap_or_default(),
            engine: engine.to_string(),
            l1_bytes: l1.get(),
            warmup: warmup as u64,
            ways: u64::from(ways),
            sizes: sizes.iter().map(|s| s.get()).collect(),
            cycles: cycles.clone(),
            trace_id: None,
        };
        let (journal, completed) = match &journal_path {
            Some(p) => {
                let (writer, rows) = open_journal(p, resume, &header)?;
                (Some(Mutex::new(writer)), rows)
            }
            None => (None, Vec::new()),
        };
        if resume {
            eprintln!(
                "resuming from journal: {} of {} rows already committed",
                completed.len(),
                sizes.len()
            );
        }
        let done: std::collections::BTreeSet<usize> =
            completed.iter().map(|r| r.size_idx).collect();
        let todo: Vec<usize> = (0..sizes.len()).filter(|i| !done.contains(i)).collect();
        let sink_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let sink = |row: &GridRow| {
            if let Some(journal) = &journal {
                let jrow = JournalRow {
                    row: row.size_idx as u64,
                    total: row.total.clone(),
                    l2_local: row.l2_local,
                    l2_global: row.l2_global,
                    m_l1_global: row.m_l1_global,
                    cpu_cycle_ns: row.cpu_cycle_ns,
                };
                // A poisoned lock only means another row panicked; that
                // panic is already isolated, so keep journalling.
                let result = journal
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .append_row(&jrow);
                if let Err(e) = result {
                    sink_error
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .get_or_insert(e);
                }
            }
        };
        let progress = obs.progress(&engine.to_string(), (todo.len() * cycles.len()) as u64);
        let results = explorer
            .with_progress(&progress)
            .try_l2_rows(engine, &base, &sizes, &cycles, ways, &todo, sink);
        progress.finish();
        if let Some(e) = sink_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(format!("journal write failed: {e}").into());
        }
        let mut rows = completed;
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(row) => rows.push(row),
                Err(f) => failures.push(f),
            }
        }
        (
            DesignGrid::from_rows(&sizes, &cycles, ways, &rows),
            failures,
        )
    };

    if !failures.is_empty() {
        eprintln!("{} of {} grid rows failed:", failures.len(), sizes.len());
        for f in &failures {
            eprintln!("  L2 {} (row {}): {}", sizes[f.index], f.index, f.message);
        }
    }
    manifest.param("point_failures", failures.len() as u64);

    let mut headers: Vec<String> = vec!["t_L2 \\ size".into()];
    headers.extend(sizes.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "relative execution time (grid optimum = 1.00)",
        &header_refs,
    );
    for (j, &c) in grid.cycles.iter().enumerate() {
        let mut row = vec![format!("{c}")];
        row.extend((0..sizes.len()).map(|i| {
            if grid.total[i][j] == DesignGrid::FAILED {
                "--".into()
            } else {
                fmt_f2(grid.relative(i, j))
            }
        }));
        table.row(row);
    }
    println!("{table}");

    let isoperf: bool = args.get_or("isoperf", true)?;
    if isoperf && !failures.is_empty() {
        eprintln!("skipping iso-performance analysis: the grid is incomplete");
    }
    if isoperf && failures.is_empty() {
        let levels: Vec<f64> = (1..=10).map(|i| 1.0 + 0.1 * i as f64).collect();
        let lines = constant_performance_lines(&grid, &levels);
        let mut iso = Table::new(
            "iso-performance slopes (cycles per doubling)",
            &["rel", "first segment", "slope", "region"],
        );
        for line in &lines {
            if let Some((at, s)) = slopes_cycles_per_doubling(line).first() {
                iso.row([
                    format!("{:.1}", line.relative),
                    at.to_string(),
                    format!("{s:.2}"),
                    SlopeRegion::classify(*s).to_string(),
                ]);
            }
        }
        println!("{iso}");
    }

    if let Some(out) = args.get("out") {
        let mut csv = Table::new("grid", &header_refs);
        for (j, &c) in grid.cycles.iter().enumerate() {
            let mut row = vec![format!("{c}")];
            row.extend((0..sizes.len()).map(|i| {
                if grid.total[i][j] == DesignGrid::FAILED {
                    "FAILED".to_string()
                } else {
                    grid.total[i][j].to_string()
                }
            }));
            csv.row(row);
        }
        csv.write_csv(out)?;
        eprintln!("wrote {out}");
    }
    println!(
        "L1 global read miss ratio {:.4} (1/M_L1 = {:.1})",
        grid.m_l1_global,
        1.0 / grid.m_l1_global
    );
    obs.finish(&mut manifest)?;
    if failures.len() as u64 > max_point_failures {
        return Err(format!(
            "{} grid row(s) failed; --max-point-failures budget is {max_point_failures}",
            failures.len()
        )
        .into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
