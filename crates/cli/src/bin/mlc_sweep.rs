//! `mlc-sweep` — sweep the L2 design space over a trace.
//!
//! ```text
//! mlc-sweep --trace trace.din --sizes 16K:4M --cycles 1:10 --ways 1 \
//!           --engine onepass --out grid.csv
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mlc_cache::ByteSize;
use mlc_cli::args::{parse_choice, parse_int_range, parse_size_range, Args, Flag};
use mlc_cli::read_trace_file;
use mlc_core::{
    constant_performance_lines, fmt_f2, slopes_cycles_per_doubling, verify_grids, Explorer,
    SlopeRegion, SweepEngine, Table,
};
use mlc_sim::machine::BaseMachine;

fn flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "trace",
            value: "PATH",
            help: "input trace (.din or mlc binary)",
        },
        Flag {
            name: "sizes",
            value: "LO:HI",
            help: "L2 size range, powers of two (default 16K:4M)",
        },
        Flag {
            name: "cycles",
            value: "LO:HI",
            help: "L2 cycle-time range in CPU cycles (default 1:10)",
        },
        Flag {
            name: "ways",
            value: "W",
            help: "L2 associativity (default 1)",
        },
        Flag {
            name: "l1",
            value: "SIZE",
            help: "combined split-L1 size (default 4K)",
        },
        Flag {
            name: "warmup-frac",
            value: "F",
            help: "fraction of the trace excluded from statistics (default 0.25)",
        },
        Flag {
            name: "engine",
            value: "NAME",
            help: "grid engine: onepass (default; one simulation per size) or exhaustive",
        },
        Flag {
            name: "cross-check",
            value: "",
            help: "run both engines and fail unless they agree cycle-exact",
        },
        Flag {
            name: "out",
            value: "PATH",
            help: "write the execution-time grid as CSV",
        },
        Flag {
            name: "isoperf",
            value: "BOOL",
            help: "also print lines of constant performance (default true)",
        },
        Flag {
            name: "lint",
            value: "",
            help: "lint every swept configuration before simulating",
        },
        Flag {
            name: "deny-warnings",
            value: "",
            help: "with --lint, treat warnings as failures",
        },
    ]
}

/// Lints every grid point of the sweep, deduplicating findings that
/// repeat across points (a degenerate corner usually taints a whole row
/// or column). Returns false when the sweep should not proceed.
fn lint_sweep(
    l1: ByteSize,
    sizes: &[ByteSize],
    cycles: &[u64],
    ways: u32,
    deny_warnings: bool,
) -> bool {
    let mut seen = std::collections::BTreeSet::new();
    let mut report = mlc_check::Report::clean();
    for &size in sizes {
        for &c in cycles {
            let config = BaseMachine::new()
                .l1_total(l1)
                .l2_total(size)
                .l2_cycles(c)
                .l2_ways(ways)
                .build();
            let point = format!("[L2 {size}, {c} cycles]");
            match config {
                Ok(config) => {
                    for d in mlc_cli::lint::lint_config(&config).diagnostics {
                        if seen.insert((d.rule, d.message.clone())) {
                            let mut d = d;
                            d.message = format!("{point} {}", d.message);
                            report.push(d);
                        }
                    }
                }
                Err(e) => {
                    if seen.insert((mlc_check::RuleId::ParseError, e.to_string())) {
                        report.push(mlc_check::Diagnostic::new(
                            mlc_check::RuleId::ParseError,
                            format!("{point} {e}"),
                            None,
                        ));
                    }
                }
            }
        }
    }
    eprint!("{}", report.render_human("sweep"));
    !report.should_fail(deny_warnings)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-sweep: L2 design-space exploration over a trace",
        flags(),
        std::env::args(),
    )?;
    let trace_path: PathBuf = args.require("trace")?;
    let sizes: Vec<ByteSize> = parse_size_range(args.get("sizes").unwrap_or("16K:4M"))?
        .into_iter()
        .map(ByteSize::new)
        .collect();
    let cycles = parse_int_range(args.get("cycles").unwrap_or("1:10"))?;
    let ways: u32 = args.get_or("ways", 1)?;
    let l1 = ByteSize::new(mlc_cli::args::parse_size(args.get("l1").unwrap_or("4K"))?);
    let warmup_frac: f64 = args.get_or("warmup-frac", 0.25)?;
    let engine = match args.get("engine") {
        None => SweepEngine::OnePass,
        Some(v) => parse_choice(
            "engine",
            v,
            &[
                ("exhaustive", SweepEngine::Exhaustive),
                ("onepass", SweepEngine::OnePass),
            ],
        )?,
    };

    if args.has("lint") && !lint_sweep(l1, &sizes, &cycles, ways, args.has("deny-warnings")) {
        return Err("sweep configurations failed lint".into());
    }

    let trace = read_trace_file(&trace_path)?;
    let warmup = (trace.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    let passes = match engine {
        SweepEngine::Exhaustive => sizes.len() * cycles.len(),
        SweepEngine::OnePass => sizes.len(),
    };
    eprintln!(
        "sweeping {} sizes x {} cycle times ({engine} engine: {passes} simulations of {} references) …",
        sizes.len(),
        cycles.len(),
        trace.len()
    );

    let mut base = BaseMachine::new();
    base.l1_total(l1);
    let explorer = Explorer::new(&trace, warmup);
    let grid = if args.has("cross-check") {
        let exhaustive =
            explorer.l2_grid_with(SweepEngine::Exhaustive, &base, &sizes, &cycles, ways);
        let onepass = explorer.l2_grid_with(SweepEngine::OnePass, &base, &sizes, &cycles, ways);
        verify_grids(&exhaustive, &onepass)
            .map_err(|d| format!("engine cross-check failed: {d}"))?;
        eprintln!(
            "cross-check passed: engines agree cycle-exact on all {} grid points",
            sizes.len() * cycles.len()
        );
        match engine {
            SweepEngine::Exhaustive => exhaustive,
            SweepEngine::OnePass => onepass,
        }
    } else {
        explorer.l2_grid_with(engine, &base, &sizes, &cycles, ways)
    };

    let mut headers: Vec<String> = vec!["t_L2 \\ size".into()];
    headers.extend(sizes.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "relative execution time (grid optimum = 1.00)",
        &header_refs,
    );
    for (j, &c) in grid.cycles.iter().enumerate() {
        let mut row = vec![format!("{c}")];
        row.extend((0..sizes.len()).map(|i| fmt_f2(grid.relative(i, j))));
        table.row(row);
    }
    println!("{table}");

    if args.get_or("isoperf", true)? {
        let levels: Vec<f64> = (1..=10).map(|i| 1.0 + 0.1 * i as f64).collect();
        let lines = constant_performance_lines(&grid, &levels);
        let mut iso = Table::new(
            "iso-performance slopes (cycles per doubling)",
            &["rel", "first segment", "slope", "region"],
        );
        for line in &lines {
            if let Some((at, s)) = slopes_cycles_per_doubling(line).first() {
                iso.row([
                    format!("{:.1}", line.relative),
                    at.to_string(),
                    format!("{s:.2}"),
                    SlopeRegion::classify(*s).to_string(),
                ]);
            }
        }
        println!("{iso}");
    }

    if let Some(out) = args.get("out") {
        let mut csv = Table::new("grid", &header_refs);
        for (j, &c) in grid.cycles.iter().enumerate() {
            let mut row = vec![format!("{c}")];
            row.extend((0..sizes.len()).map(|i| grid.total[i][j].to_string()));
            csv.row(row);
        }
        csv.write_csv(out)?;
        eprintln!("wrote {out}");
    }
    println!(
        "L1 global read miss ratio {:.4} (1/M_L1 = {:.1})",
        grid.m_l1_global,
        1.0 / grid.m_l1_global
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-sweep: {e}");
            ExitCode::FAILURE
        }
    }
}
