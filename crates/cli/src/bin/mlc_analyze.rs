//! `mlc-analyze` — workload characterisation for a trace file: reference
//! mix, one-pass LRU miss-ratio curve, and 3C miss classification.
//!
//! ```text
//! mlc-analyze --trace trace.din --block 32 --sizes 4K:4M
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mlc_cache::{ByteSize, CacheConfig};
use mlc_cli::args::{parse_size, parse_size_range, Args, Flag};
use mlc_cli::obs::{obs_flags, Observability};
use mlc_core::{classify_misses, AttributionReport, PowerLawMissModel, Table};
use mlc_obs::json::JsonValue;
use mlc_obs::{digest_records_hex, RunManifest};
use mlc_trace::stackdist::lru_stack_distances;
use mlc_trace::TraceStats;

fn flags() -> Vec<Flag> {
    let mut flags = vec![
        Flag {
            name: "trace",
            value: "PATH",
            help: "input trace (.din or mlc binary)",
        },
        Flag {
            name: "block",
            value: "BYTES",
            help: "block granularity for the analysis (default 32)",
        },
        Flag {
            name: "sizes",
            value: "LO:HI",
            help: "cache size ladder for the curves (default 4K:4M)",
        },
        Flag {
            name: "three-c",
            value: "BOOL",
            help: "include the direct-mapped 3C decomposition (default true)",
        },
        Flag {
            name: "attribution",
            value: "",
            help: "simulate the trace and print the cycle ledger vs Equation 1 cross-check",
        },
        Flag {
            name: "machine",
            value: "PATH",
            help:
                "machine description for --attribution/--bounds (default: the paper's base machine)",
        },
        Flag {
            name: "bounds",
            value: "",
            help: "print guaranteed per-level miss bounds from static must/may analysis",
        },
        mlc_cli::trace_faults_flag(),
    ];
    flags.extend(obs_flags());
    flags
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-analyze: workload characterisation (mix, LRU curve, 3C)",
        flags(),
        std::env::args(),
    )?;
    let trace_path: PathBuf = args.require("trace")?;
    let block = parse_size(args.get("block").unwrap_or("32"))?;
    let sizes = parse_size_range(args.get("sizes").unwrap_or("4K:4M"))?;

    let fault_policy = mlc_cli::parse_trace_faults(&args)?;
    let obs = Observability::from_args(&args)?;

    eprintln!("reading {} …", trace_path.display());
    let timer = obs.metrics.time_phase("read_trace");
    let (records, ingest, sidecar) = mlc_cli::read_trace_file_with(&trace_path, fault_policy)?;
    timer.stop();
    if ingest.quarantined > 0 {
        eprintln!(
            "warning: quarantined {} malformed trace record(s){}{}",
            ingest.quarantined,
            if ingest.truncated {
                " (input truncated)"
            } else {
                ""
            },
            sidecar
                .map(|p| format!("; see {}", p.display()))
                .unwrap_or_default()
        );
    }
    obs.metrics.add("trace.quarantined", ingest.quarantined);
    if records.is_empty() {
        return Err("trace is empty".into());
    }

    let mut manifest = RunManifest::new("mlc-analyze", env!("CARGO_PKG_VERSION"));
    manifest.command(std::env::args().skip(1));
    if obs.metrics.is_enabled() {
        let timer = obs.metrics.time_phase("digest_trace");
        let digest = digest_records_hex(&records);
        timer.stop();
        manifest.trace(
            &trace_path.display().to_string(),
            records.len() as u64,
            0,
            &digest,
        );
    }
    manifest.param("block_bytes", block);
    manifest.param(
        "trace_faults",
        args.get("trace-faults").unwrap_or("fail").to_string(),
    );
    manifest.param("trace_quarantined", ingest.quarantined);
    manifest.param(
        "sizes",
        JsonValue::Array(
            sizes
                .iter()
                .map(|&s| ByteSize::new(s).to_string().into())
                .collect(),
        ),
    );

    let timer = obs.metrics.time_phase("stats");
    let stats = TraceStats::from_records(records.iter().copied(), block)?;
    timer.stop();
    println!(
        "references {}  (ifetch {}, loads {}, stores {})",
        stats.total(),
        stats.ifetches,
        stats.reads,
        stats.writes
    );
    println!(
        "data refs per ifetch {:.3}  reads among data {:.3}  footprint {:.1} KB @{}B blocks",
        stats.data_per_ifetch().unwrap_or(f64::NAN),
        stats.read_fraction_of_data().unwrap_or(f64::NAN),
        stats.footprint_bytes() as f64 / 1024.0,
        block
    );

    eprintln!("computing stack distances …");
    let timer = obs.metrics.time_phase("stack_distances");
    let hist = lru_stack_distances(records.iter().copied(), block);
    timer.stop();
    println!(
        "cold misses {} ({:.2}% of references); mean reuse distance {:.1} blocks\n",
        hist.cold_misses(),
        100.0 * hist.cold_misses() as f64 / hist.total() as f64,
        hist.mean_distance().unwrap_or(f64::NAN)
    );

    let include_3c: bool = args.get_or("three-c", true)?;
    manifest.param("three_c", include_3c);
    let progress = obs.progress("analyze", sizes.len() as u64);
    let curve_timer = obs.metrics.time_phase("curve");
    let mut table = Table::new(
        "fully-associative LRU miss-ratio curve (one-pass)",
        if include_3c {
            &[
                "size",
                "FA-LRU miss",
                "DM miss",
                "compulsory",
                "capacity",
                "conflict",
            ][..]
        } else {
            &["size", "FA-LRU miss"][..]
        },
    );
    let mut points = Vec::new();
    for &size in &sizes {
        let fa = hist.miss_ratio_at(size / block);
        points.push((size as f64, fa));
        if include_3c {
            let config = CacheConfig::builder()
                .total(ByteSize::new(size))
                .block_bytes(block)
                .build()?;
            let c = classify_misses(config, &records);
            table.row([
                ByteSize::new(size).to_string(),
                format!("{fa:.4}"),
                format!("{:.4}", c.miss_ratio()),
                format!("{}", c.compulsory),
                format!("{}", c.capacity),
                format!("{}", c.conflict),
            ]);
        } else {
            table.row([ByteSize::new(size).to_string(), format!("{fa:.4}")]);
        }
        progress.tick(1);
    }
    curve_timer.stop();
    progress.finish();
    println!("{table}");

    if let Some(fit) = PowerLawMissModel::fit_declining(&points, 0.10) {
        println!(
            "power-law fit over the declining region: theta {:.3}, x{:.2} per size doubling",
            fit.theta(),
            fit.doubling_factor()
        );
    }
    if args.has("attribution") {
        let config = match args.get("machine") {
            Some(path) => mlc_cli::machine_file::parse_machine(&std::fs::read_to_string(path)?)?,
            None => mlc_sim::machine::base_machine(),
        };
        manifest.param("attribution_depth", config.depth() as u64);
        let warmup = records.len() / 4;
        eprintln!(
            "simulating {} references ({} warmup) for the attribution cross-check …",
            records.len(),
            warmup
        );
        let run = mlc_sim::simulate_with_warmup_attributed(
            config.clone(),
            &records,
            warmup,
            &obs.metrics,
            None,
        )?;
        let report = AttributionReport::from_run(&config, &run.result, &run.ledger);
        println!("{}", report.table());
        match report.total_relative_error() {
            Some(err) => println!(
                "Equation 1 total off by {:+.1}% (refresh and overlap are unmodelled)",
                100.0 * err
            ),
            None => println!("Equation 1 does not apply (machine is not two-level)"),
        }
    }
    if args.has("bounds") {
        let config = match args.get("machine") {
            Some(path) => mlc_cli::machine_file::parse_machine(&std::fs::read_to_string(path)?)?,
            None => mlc_sim::machine::base_machine(),
        };
        let timer = obs.metrics.time_phase("bounds");
        let bounds = mlc_wcet::analyze(&config, &records)?;
        timer.stop();
        manifest.param("bounds_depth", config.depth() as u64);
        println!("{}", bounds.table());
        println!(
            "read-path cycles in [{}, {}]",
            bounds.read_cycles_lo, bounds.read_cycles_hi
        );
        if args.has("attribution") {
            // Cross Equation 1 against the static bounds using a cold
            // simulation (the warmed attribution run would start below
            // the guaranteed cold-fill floor).
            let result = mlc_sim::simulate(config.clone(), records.iter().copied())?;
            let pairs: Vec<(u64, u64)> = bounds.levels.iter().map(|b| (b.lo, b.hi)).collect();
            match mlc_core::bounds_vs_eq1(&config, &result, &pairs) {
                Some(rows) => println!("{}", mlc_core::bounds_vs_eq1_table(&rows)),
                None => println!("bounds-vs-Equation-1 does not apply (machine is not two-level)"),
            }
        }
    }
    obs.metrics.add("analyze.references", stats.total());
    obs.metrics.add("analyze.cold_misses", hist.cold_misses());
    obs.finish(&mut manifest)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-analyze: {e}");
            ExitCode::FAILURE
        }
    }
}
