//! `mlc-lint` — static hierarchy linter for machine description files.
//!
//! ```text
//! mlc-lint machine.mlc                 # human-readable findings
//! mlc-lint --format json machine.mlc   # machine-readable findings
//! mlc-lint --deny-warnings *.mlc       # warnings fail the build too
//! mlc-lint --rules                     # print the rule catalog
//! ```
//!
//! Exit status: 0 when every file is acceptable (no errors; warnings
//! allowed unless `--deny-warnings`), 1 when any file fails, 2 on usage
//! errors.

use std::process::ExitCode;

use mlc_check::ALL_RULES;
use mlc_cli::args::{Args, Flag};
use mlc_cli::lint::lint_machine_text;

fn flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "format",
            value: "FMT",
            help: "output format: human (default) or json",
        },
        Flag {
            name: "deny-warnings",
            value: "",
            help: "treat warnings as failures",
        },
        Flag {
            name: "rules",
            value: "",
            help: "print the rule catalog and exit",
        },
    ]
}

fn print_rule_catalog() {
    for rule in ALL_RULES {
        println!(
            "{}  {:<22} {:<8} {}",
            rule.code(),
            rule.name(),
            rule.severity().label(),
            rule.summary()
        );
    }
}

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-lint: static hierarchy checks for machine description files",
        flags(),
        std::env::args(),
    )?;
    if args.has("rules") {
        print_rule_catalog();
        return Ok(true);
    }
    let format = args.get("format").unwrap_or("human");
    if format != "human" && format != "json" {
        return Err(format!("unknown format {format:?} (expected human or json)").into());
    }
    if args.positional.is_empty() {
        return Err("no machine files given (try `mlc-lint machine.mlc`)".into());
    }
    let deny_warnings = args.has("deny-warnings");

    let mut all_ok = true;
    for path in &args.positional {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let outcome = lint_machine_text(&text);
        match format {
            "json" => println!("{}", outcome.report.render_json(path)),
            _ => print!("{}", outcome.report.render_human(path)),
        }
        if outcome.report.should_fail(deny_warnings) {
            all_ok = false;
        }
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("mlc-lint: {e}");
            ExitCode::from(2)
        }
    }
}
