//! `mlc-gen` — generate synthetic multiprogramming traces.
//!
//! ```text
//! mlc-gen --preset vms1 --records 1000000 --seed 42 --out trace.din
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mlc_cli::args::{Args, Flag};
use mlc_cli::write_trace_file;
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceStats;

fn flags() -> Vec<Flag> {
    vec![
        Flag {
            name: "preset",
            value: "NAME",
            help: "workload preset: vms1..vms3, ultrix, mips1..mips4 (default vms1)",
        },
        Flag {
            name: "records",
            value: "N",
            help: "number of references to generate (default 1000000)",
        },
        Flag {
            name: "seed",
            value: "S",
            help: "RNG seed (default 42)",
        },
        Flag {
            name: "out",
            value: "PATH",
            help: "output file; .din = Dinero text, .mlcz = compressed binary, else fixed binary",
        },
        Flag {
            name: "stats",
            value: "BOOL",
            help: "print trace statistics (default true)",
        },
    ]
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-gen: generate synthetic multiprogramming reference traces",
        flags(),
        std::env::args(),
    )?;
    let preset_name = args.get("preset").unwrap_or("vms1").to_string();
    let preset = Preset::from_name(&preset_name)
        .ok_or_else(|| format!("unknown preset {preset_name:?} (try vms1, mips1, ...)"))?;
    let records: usize = args.get_or("records", 1_000_000)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let out: PathBuf = args.require("out")?;
    let stats: bool = args.get_or("stats", true)?;

    eprintln!("generating {records} references of {preset_name} (seed {seed}) …");
    let mut generator = MultiProgramGenerator::new(preset.config(seed))
        .map_err(|e| format!("invalid preset configuration: {e}"))?;
    let trace = generator.generate_records(records);
    write_trace_file(&out, &trace)?;
    eprintln!("wrote {}", out.display());

    if stats {
        let s = TraceStats::from_records(trace.iter().copied(), 16)?;
        println!(
            "records {}  ifetch {}  loads {}  stores {}",
            s.total(),
            s.ifetches,
            s.reads,
            s.writes
        );
        println!(
            "data refs per ifetch {:.3}  read fraction of data {:.3}  footprint {:.1} KB",
            s.data_per_ifetch().unwrap_or(f64::NAN),
            s.read_fraction_of_data().unwrap_or(f64::NAN),
            s.footprint_bytes() as f64 / 1024.0
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-gen: {e}");
            ExitCode::FAILURE
        }
    }
}
