//! `mlc-run` — simulate a trace against a machine description file.
//!
//! ```text
//! mlc-run --trace trace.din --machine machine.mlc --warmup-frac 0.25
//! mlc-run --emit-base true          # print the base machine description
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use mlc_cli::args::{Args, Flag};
use mlc_cli::machine_file;
use mlc_cli::obs::{event_flags, obs_flags, EventSink, Observability};
use mlc_core::{fmt_ratio, AttributionReport, Table};
use mlc_obs::{digest_records_hex, RunManifest};
use mlc_sim::{simulate_with_warmup_attributed, HierarchyConfig};

fn flags() -> Vec<Flag> {
    let mut flags = vec![
        Flag {
            name: "trace",
            value: "PATH",
            help: "input trace (.din = Dinero text, otherwise mlc binary)",
        },
        Flag {
            name: "machine",
            value: "PATH",
            help: "machine description file (default: the paper's base machine)",
        },
        Flag {
            name: "warmup-frac",
            value: "F",
            help: "fraction of the trace excluded from statistics (default 0.25)",
        },
        Flag {
            name: "emit-base",
            value: "BOOL",
            help: "print the base machine description and exit",
        },
        Flag {
            name: "lint",
            value: "",
            help: "lint the machine description before simulating",
        },
        Flag {
            name: "deny-warnings",
            value: "",
            help: "with --lint, treat warnings as failures",
        },
        mlc_cli::trace_faults_flag(),
    ];
    flags.extend(obs_flags());
    flags.extend(event_flags());
    flags
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(
        "mlc-run: trace-driven multi-level cache hierarchy simulation",
        flags(),
        std::env::args(),
    )?;
    if args.get_or("emit-base", false)? {
        print!("{}", machine_file::base_machine_text());
        return Ok(());
    }

    let trace_path: PathBuf = args.require("trace")?;
    let config: HierarchyConfig = match args.get("machine") {
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            if args.has("lint") {
                let outcome = mlc_cli::lint::lint_machine_text(&text);
                eprint!("{}", outcome.report.render_human(path));
                if outcome.report.should_fail(args.has("deny-warnings")) {
                    return Err("machine description failed lint".into());
                }
            }
            machine_file::parse_machine(&text)?
        }
        None => {
            let config = mlc_sim::machine::base_machine();
            if args.has("lint") {
                let report = mlc_cli::lint::lint_config(&config);
                eprint!("{}", report.render_human("base machine"));
                if report.should_fail(args.has("deny-warnings")) {
                    return Err("machine description failed lint".into());
                }
            }
            config
        }
    };
    let warmup_frac: f64 = args.get_or("warmup-frac", 0.25)?;
    let fault_policy = mlc_cli::parse_trace_faults(&args)?;
    let obs = Observability::from_args(&args)?;
    let events = EventSink::from_args(&args)?;

    eprintln!("reading {} …", trace_path.display());
    let timer = obs.metrics.time_phase("read_trace");
    let (trace, ingest, sidecar) = mlc_cli::read_trace_file_with(&trace_path, fault_policy)?;
    timer.stop();
    if ingest.quarantined > 0 {
        eprintln!(
            "warning: quarantined {} malformed trace record(s){}{}",
            ingest.quarantined,
            if ingest.truncated {
                " (input truncated)"
            } else {
                ""
            },
            sidecar
                .map(|p| format!("; see {}", p.display()))
                .unwrap_or_default()
        );
    }
    obs.metrics.add("trace.quarantined", ingest.quarantined);
    let warmup = (trace.len() as f64 * warmup_frac.clamp(0.0, 0.95)) as usize;
    eprintln!(
        "simulating {} references ({} warmup) on a {}-level hierarchy …",
        trace.len(),
        warmup,
        config.depth()
    );

    let mut manifest = RunManifest::new("mlc-run", env!("CARGO_PKG_VERSION"));
    manifest.command(std::env::args().skip(1));
    if obs.metrics.is_enabled() {
        let timer = obs.metrics.time_phase("digest_trace");
        let digest = digest_records_hex(&trace);
        timer.stop();
        manifest.trace(
            &trace_path.display().to_string(),
            trace.len() as u64,
            warmup as u64,
            &digest,
        );
    }
    manifest.param("warmup_frac", warmup_frac);
    manifest.param(
        "trace_faults",
        args.get("trace-faults").unwrap_or("fail").to_string(),
    );
    manifest.param("trace_quarantined", ingest.quarantined);
    manifest.param("depth", config.depth() as u64);
    manifest.param("machine", machine_file::render_machine(&config));

    if let Some(every) = events.sample_every() {
        manifest.param("events_every", every);
    }
    let run = simulate_with_warmup_attributed(
        config.clone(),
        &trace,
        warmup,
        &obs.metrics,
        events.sample_every(),
    )?;
    let result = &run.result;
    println!(
        "cycles {}  instructions {}  CPI {:.3}  time {:.3} ms",
        result.total_cycles,
        result.instructions,
        result.cpi().unwrap_or(f64::NAN),
        result.execution_time_ns() / 1e6
    );
    let mut table = Table::new("read miss ratios", &["level", "local", "global"]);
    for (i, level) in result.levels.iter().enumerate() {
        table.row([
            level.name.clone(),
            fmt_ratio(result.local_read_miss_ratio(i).unwrap_or(f64::NAN)),
            fmt_ratio(result.global_read_miss_ratio(i).unwrap_or(f64::NAN)),
        ]);
    }
    println!("{table}");
    println!(
        "memory: {} reads, {} writes, {} wait cycles; write stalls/store {:.2}",
        result.memory.reads,
        result.memory.writes,
        result.memory.wait_ticks,
        result.write_cycles_per_store().unwrap_or(f64::NAN)
    );
    if args.has("attribution") {
        let report = AttributionReport::from_run(&config, result, &run.ledger);
        println!("{}", report.table());
        match report.total_relative_error() {
            Some(err) => println!(
                "Equation 1 total off by {:+.1}% (refresh and overlap are unmodelled)",
                100.0 * err
            ),
            None => println!("Equation 1 does not apply (machine is not two-level)"),
        }
    }
    if let Some(tracer) = &run.tracer {
        events.write(
            tracer,
            &run.level_names,
            result.cpu_cycle_ns,
            "mlc-run",
            env!("CARGO_PKG_VERSION"),
        )?;
    }
    obs.finish(&mut manifest)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mlc-run: {e}");
            ExitCode::FAILURE
        }
    }
}
