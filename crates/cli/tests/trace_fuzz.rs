//! Fuzz-style property tests: trace readers must reject arbitrary bytes
//! with errors, never panics.
//!
//! Inputs come from a deterministic seeded PRNG (xoshiro256++), so every
//! run covers the same corpus and failures reproduce exactly.

use mlc_trace::synth::Xoshiro;
use mlc_trace::{binary, din};

fn check(cases: u64, f: impl Fn(&mut Xoshiro) + std::panic::RefUnwindSafe) {
    for case in 0..cases {
        let seed = 0x7ACEu64 ^ 0x9E3779B97F4A7C15u64.wrapping_mul(case + 1);
        let outcome = std::panic::catch_unwind(|| {
            let mut rng = Xoshiro::seed_from_u64(seed);
            f(&mut rng);
        });
        if let Err(payload) = outcome {
            eprintln!("property failed on case {case} (xoshiro seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

fn rand_bytes(rng: &mut Xoshiro, min_len: u64, max_len: u64) -> Vec<u8> {
    let len = min_len + rng.next_below(max_len - min_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn din_reader_never_panics() {
    check(256, |rng| {
        let bytes = rand_bytes(rng, 0, 2000);
        let _ = din::read_din(bytes.as_slice());
    });
}

#[test]
fn binary_reader_never_panics() {
    check(256, |rng| {
        let bytes = rand_bytes(rng, 0, 2000);
        let _ = binary::read_binary(bytes.as_slice());
    });
}

#[test]
fn binary_reader_never_panics_with_valid_magic() {
    check(256, |rng| {
        let mut bytes = rand_bytes(rng, 16, 500);
        bytes[..4].copy_from_slice(b"MLCT");
        bytes[4] = 1 + rng.next_below(2) as u8;
        bytes[5] = 0;
        let _ = binary::read_binary(bytes.as_slice());
    });
}

#[test]
fn compressed_round_trips_arbitrary_records() {
    check(256, |rng| {
        use mlc_trace::{AccessKind, Address, TraceRecord};
        let len = rng.next_below(300);
        let records: Vec<TraceRecord> = (0..len)
            .map(|_| {
                TraceRecord::new(
                    AccessKind::from_din_label(rng.next_below(3) as u8).unwrap(),
                    Address::new(rng.next_u64()),
                )
            })
            .collect();
        let mut buf = Vec::new();
        binary::write_compressed(&mut buf, &records).unwrap();
        assert_eq!(binary::read_binary(buf.as_slice()).unwrap(), records);
    });
}
