//! Fuzz-style property tests: trace readers must reject arbitrary bytes
//! with errors, never panics.

use proptest::prelude::*;

use mlc_trace::{binary, din};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn din_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = din::read_din(bytes.as_slice());
    }

    #[test]
    fn binary_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = binary::read_binary(bytes.as_slice());
    }

    #[test]
    fn binary_reader_never_panics_with_valid_magic(
        mut bytes in prop::collection::vec(any::<u8>(), 16..500),
        version in 1u8..=2,
    ) {
        bytes[..4].copy_from_slice(b"MLCT");
        bytes[4] = version;
        bytes[5] = 0;
        let _ = binary::read_binary(bytes.as_slice());
    }

    #[test]
    fn compressed_round_trips_arbitrary_records(
        raw in prop::collection::vec((0u8..3, any::<u64>()), 0..300)
    ) {
        use mlc_trace::{AccessKind, Address, TraceRecord};
        let records: Vec<TraceRecord> = raw
            .iter()
            .map(|&(k, a)| {
                TraceRecord::new(
                    AccessKind::from_din_label(k).unwrap(),
                    Address::new(a),
                )
            })
            .collect();
        let mut buf = Vec::new();
        binary::write_compressed(&mut buf, &records).unwrap();
        prop_assert_eq!(binary::read_binary(buf.as_slice()).unwrap(), records);
    }
}
