//! End-to-end tests of the CLI binaries, run via Cargo's built
//! executables.

use std::path::PathBuf;
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mlc_bin_e2e");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(name)
}

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .expect("binary should execute");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn gen_run_sweep_analyze_pipeline() {
    let trace = tmp("pipeline.din");
    let trace_str = trace.to_str().unwrap();

    // 1. Generate a small trace.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips2",
            "--records",
            "60000",
            "--seed",
            "7",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "mlc-gen failed: {stderr}");
    assert!(stdout.contains("records 60000"), "{stdout}");
    assert!(trace.exists());

    // 2. Simulate it on the base machine.
    let (ok, stdout, stderr) = run(env!("CARGO_BIN_EXE_mlc-run"), &["--trace", trace_str]);
    assert!(ok, "mlc-run failed: {stderr}");
    assert!(stdout.contains("CPI"), "{stdout}");
    assert!(stdout.contains("L2"), "{stdout}");

    // 3. Simulate against an emitted-then-parsed machine file: results
    //    must match the built-in base machine exactly.
    let (ok, base_text, _) = run(env!("CARGO_BIN_EXE_mlc-run"), &["--emit-base", "true"]);
    assert!(ok);
    let machine = tmp("base.mlc");
    std::fs::write(&machine, &base_text).unwrap();
    let (ok, stdout2, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &["--trace", trace_str, "--machine", machine.to_str().unwrap()],
    );
    assert!(ok, "mlc-run with machine file failed: {stderr}");
    assert_eq!(stdout, stdout2, "machine file must reproduce the default");

    // 4. Sweep a small grid and write CSV.
    let csv = tmp("grid.csv");
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:3",
            "--out",
            csv.to_str().unwrap(),
        ],
    );
    assert!(ok, "mlc-sweep failed: {stderr}");
    assert!(stdout.contains("relative execution time"), "{stdout}");
    let csv_text = std::fs::read_to_string(&csv).unwrap();
    assert!(csv_text.lines().count() >= 4, "{csv_text}");

    // 5. Analyze the trace.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-analyze"),
        &["--trace", trace_str, "--sizes", "4K:64K"],
    );
    assert!(ok, "mlc-analyze failed: {stderr}");
    assert!(stdout.contains("FA-LRU"), "{stdout}");
    assert!(stdout.contains("per size doubling"), "{stdout}");
}

#[test]
fn binaries_reject_bad_input_gracefully() {
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &["--preset", "bogus", "--out", "/tmp/x.din"],
    );
    assert!(!ok);
    assert!(stderr.contains("unknown preset"), "{stderr}");

    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &["--trace", "/nonexistent.din"],
    );
    assert!(!ok);
    assert!(stderr.contains("mlc-run"), "{stderr}");

    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_mlc-sweep"), &["--nope", "1"]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn lint_binary_passes_good_and_fails_bad_machines() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_mlc-lint"), &[&fixture("good_base.mlc")]);
    assert!(ok, "good machine must lint clean: {stdout}");
    assert!(
        stdout.contains("0 error(s), 0 warning(s), 0 advice"),
        "{stdout}"
    );

    // The seeded-bad fixture must fail with >= 8 findings, each carrying
    // a rule code and a line span.
    let (ok, stdout, _) = run(
        env!("CARGO_BIN_EXE_mlc-lint"),
        &[&fixture("bad_hierarchy.mlc")],
    );
    assert!(!ok, "bad machine must fail lint: {stdout}");
    let findings: Vec<&str> = stdout.lines().filter(|l| l.contains("MLC")).collect();
    assert!(findings.len() >= 8, "{stdout}");
    for line in &findings {
        assert!(line.contains("line"), "finding without a span: {line}");
    }

    // Warnings alone pass by default but fail under --deny-warnings.
    let machine = tmp("warn_only.mlc");
    std::fs::write(
        &machine,
        "cpu.cycle_ns = 10\n\n[level L1]\nsize = 4K\ncycles = 1\n\n\
         [level L2]\nsize = 8K\ncycles = 3\n\n[memory]\nread_ns = 180\n",
    )
    .unwrap();
    let machine_str = machine.to_str().unwrap();
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_mlc-lint"), &[machine_str]);
    assert!(ok, "warnings alone must pass: {stdout}");
    assert!(stdout.contains("MLC002"), "{stdout}");
    let (ok, _, _) = run(
        env!("CARGO_BIN_EXE_mlc-lint"),
        &["--deny-warnings", machine_str],
    );
    assert!(!ok, "--deny-warnings must fail on warnings");
}

#[test]
fn lint_binary_emits_json_and_rule_catalog() {
    let (ok, stdout, _) = run(
        env!("CARGO_BIN_EXE_mlc-lint"),
        &["--format", "json", &fixture("bad_degenerate.mlc")],
    );
    assert!(!ok);
    assert!(stdout.contains("\"rule\":\"MLC009\""), "{stdout}");
    assert!(stdout.contains("\"span\":{\"start\":"), "{stdout}");

    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_mlc-lint"), &["--rules"]);
    assert!(ok);
    for code in ["MLC000", "MLC008", "MLC015"] {
        assert!(stdout.contains(code), "catalog missing {code}: {stdout}");
    }
}

#[test]
fn run_and_sweep_honor_lint_flags() {
    // mlc-run --lint refuses a machine with lint errors before touching
    // the trace.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &[
            "--trace",
            "/nonexistent.din",
            "--machine",
            &fixture("bad_hierarchy.mlc"),
            "--lint",
        ],
    );
    assert!(!ok);
    assert!(stderr.contains("failed lint"), "{stderr}");
    assert!(stderr.contains("MLC001"), "{stderr}");

    // A degenerate sweep corner (L2 no bigger than L1) fails --lint
    // --deny-warnings without needing a trace.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            "/nonexistent.din",
            "--sizes",
            "4K:16K",
            "--lint",
            "--deny-warnings",
        ],
    );
    assert!(!ok);
    assert!(stderr.contains("failed lint"), "{stderr}");
}

/// Drops every line carrying a `_ms` timing key — the only fields of a
/// manifest allowed to differ between two runs on identical inputs.
fn strip_timings(manifest: &str) -> Vec<String> {
    manifest
        .lines()
        .filter(|l| !l.contains("_ms\""))
        .map(str::to_owned)
        .collect()
}

#[test]
fn sweep_manifest_is_reproducible_and_metrics_are_structured() {
    let trace = tmp("obs_sweep.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "40000",
            "--seed",
            "3",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    // Two runs with IDENTICAL argv (argv is recorded in the manifest):
    // copy the first manifest aside before the second overwrites it.
    let metrics_path = tmp("obs_sweep.jsonl");
    let manifest_path = tmp("obs_sweep.manifest.json");
    let argv = [
        "--trace",
        trace_str,
        "--sizes",
        "16K:32K",
        "--cycles",
        "1:2",
        "--engine",
        "onepass",
        "--metrics-out",
        metrics_path.to_str().unwrap(),
        "--progress",
    ];
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_mlc-sweep"), &argv);
    assert!(ok, "first sweep failed: {stderr}");
    assert!(
        stderr.contains("progress[onepass]:") && stderr.contains("(100.0%)"),
        "--progress must report on stderr: {stderr}"
    );
    let first = std::fs::read_to_string(&manifest_path).unwrap();
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_mlc-sweep"), &argv);
    assert!(ok, "second sweep failed: {stderr}");
    let second = std::fs::read_to_string(&manifest_path).unwrap();

    // Everything except wall-clock timings reproduces bit-for-bit.
    assert_eq!(strip_timings(&first), strip_timings(&second));

    for needle in [
        "\"schema\": \"mlc-manifest/1\"",
        "\"tool\": \"mlc-sweep\"",
        "\"digest\": \"fnv1a64:",
        "\"records\": 40000",
        "\"engine\": \"onepass\"",
        "\"l2_sizes\": [\"16KB\", \"32KB\"]",
        "\"l2_cycles\": [1, 2]",
        "\"machine\":",
        "grid.size.16KB_ms",
        "read_trace_ms",
    ] {
        assert!(
            first.contains(needle),
            "manifest missing {needle}:\n{first}"
        );
    }

    let jsonl = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(
        jsonl
            .lines()
            .next()
            .unwrap()
            .contains("\"schema\":\"mlc-metrics/1\""),
        "{jsonl}"
    );
    assert!(jsonl.contains("\"event\":\"counter\""), "{jsonl}");
    assert!(
        jsonl.contains("\"name\":\"sweep.lane_passes\""),
        "sweep counters missing: {jsonl}"
    );
    assert!(jsonl.contains("\"event\":\"phase\""), "{jsonl}");
}

#[test]
fn run_manifest_captures_resolved_machine() {
    let trace = tmp("obs_run.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "20000",
            "--seed",
            "5",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    let manifest_path = tmp("obs_run_manifest.json");
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &[
            "--trace",
            trace_str,
            "--manifest-out",
            manifest_path.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    for needle in [
        "\"tool\": \"mlc-run\"",
        "\"digest\": \"fnv1a64:",
        "\"depth\": 2",
        "cpu.cycle_ns",
        "sim.warmup_ms",
        "sim.measure_ms",
    ] {
        assert!(manifest.contains(needle), "missing {needle}:\n{manifest}");
    }
}

#[test]
fn sweep_rejects_invalid_grid_points_with_a_typed_error() {
    // 3 ways at 16K with 32-byte blocks has no power-of-two set count:
    // must be caught up front, not panic mid-sweep.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            "/nonexistent.din",
            "--sizes",
            "16K",
            "--cycles",
            "1",
            "--ways",
            "3",
        ],
    );
    assert!(!ok);
    assert!(
        stderr.contains("invalid grid point"),
        "expected a typed validation error: {stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn sweep_journal_resume_reproduces_an_uninterrupted_run() {
    let trace = tmp("journal.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "40000",
            "--seed",
            "11",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    // Reference: an uninterrupted, journal-free sweep.
    let plain_csv = tmp("journal_plain.csv");
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:3",
            "--out",
            plain_csv.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");

    // Journaled run, then cut the journal back to header + first row —
    // the on-disk shape a SIGKILL mid-sweep leaves behind.
    let journal = tmp("journal.jsonl");
    let _ = std::fs::remove_file(&journal);
    let journal_str = journal.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:3",
            "--journal",
            journal_str,
        ],
    );
    assert!(ok, "journaled sweep failed: {stderr}");
    let full = std::fs::read_to_string(&journal).unwrap();
    assert!(full.contains("mlc-journal/1"), "{full}");
    assert_eq!(full.lines().count(), 4, "header + 3 rows: {full}");
    let keep: String = full.lines().take(2).map(|l| format!("{l}\n")).collect();
    std::fs::write(&journal, keep).unwrap();

    // Resume must replay the committed row, compute the rest, and land
    // on a CSV byte-identical to the uninterrupted run.
    let resumed_csv = tmp("journal_resumed.csv");
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:3",
            "--journal",
            journal_str,
            "--resume",
            "--out",
            resumed_csv.to_str().unwrap(),
        ],
    );
    assert!(ok, "resume failed: {stderr}");
    assert!(
        stderr.contains("resuming from journal: 1 of 3 rows already committed"),
        "{stderr}"
    );
    assert_eq!(
        std::fs::read(&plain_csv).unwrap(),
        std::fs::read(&resumed_csv).unwrap(),
        "resumed grid differs from the uninterrupted one"
    );

    // The journal now pins this grid: a run with different flags must be
    // rejected with a typed mismatch naming the offending field.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:4",
            "--journal",
            journal_str,
            "--resume",
        ],
    );
    assert!(!ok, "cycles mismatch must fail");
    assert!(stderr.contains("journal cycles mismatch"), "{stderr}");

    // An existing journal without --resume is refused, not overwritten.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:64K",
            "--cycles",
            "1:3",
            "--journal",
            journal_str,
        ],
    );
    assert!(!ok);
    assert!(stderr.contains("already exists; pass --resume"), "{stderr}");

    // --resume without --journal is a flag error.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace", trace_str, "--sizes", "16K", "--cycles", "1", "--resume",
        ],
    );
    assert!(!ok);
    assert!(stderr.contains("--resume requires --journal"), "{stderr}");
}

#[test]
fn run_quarantines_malformed_records_under_skip_policy() {
    let trace = tmp("faulty.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "20000",
            "--seed",
            "13",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");
    let mut text = std::fs::read_to_string(&trace).unwrap();
    text.push_str("not a record\n3 zz\n");
    std::fs::write(&trace, &text).unwrap();

    // Strict (default) ingestion fails typed on the first bad line.
    let (ok, _, stderr) = run(env!("CARGO_BIN_EXE_mlc-run"), &["--trace", trace_str]);
    assert!(!ok, "strict read must fail: {stderr}");
    assert!(stderr.contains("line 20001"), "{stderr}");

    // skip:4 absorbs both, reports them, and writes a sidecar.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &["--trace", trace_str, "--trace-faults", "skip:4"],
    );
    assert!(ok, "degraded read must succeed: {stderr}");
    assert!(stdout.contains("CPI"), "{stdout}");
    assert!(
        stderr.contains("quarantined 2 malformed trace record(s)"),
        "{stderr}"
    );
    let sidecar = tmp("faulty.din.quarantine");
    let quarantined = std::fs::read_to_string(&sidecar).unwrap();
    assert_eq!(quarantined.lines().count(), 2, "{quarantined}");
    assert!(quarantined.contains("not a record"), "{quarantined}");

    // A budget of 1 is exceeded by the second bad record: typed failure.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &["--trace", trace_str, "--trace-faults", "skip:1"],
    );
    assert!(!ok);
    assert!(stderr.contains("fault budget exceeded"), "{stderr}");
}

#[test]
fn sweep_failure_budget_gates_the_exit_code() {
    // --max-point-failures with a clean grid is a no-op; the flag is
    // recorded in the manifest.
    let trace = tmp("budget.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "20000",
            "--seed",
            "17",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");
    let manifest_path = tmp("budget.manifest.json");
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-sweep"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "16K:32K",
            "--cycles",
            "1:2",
            "--max-point-failures",
            "2",
            "--manifest-out",
            manifest_path.to_str().unwrap(),
        ],
    );
    assert!(ok, "{stderr}");
    let manifest = std::fs::read_to_string(&manifest_path).unwrap();
    assert!(manifest.contains("\"max_point_failures\": 2"), "{manifest}");
    assert!(manifest.contains("\"point_failures\": 0"), "{manifest}");
}

#[test]
fn gen_is_deterministic_across_invocations() {
    let a = tmp("det_a.din");
    let b = tmp("det_b.din");
    for path in [&a, &b] {
        let (ok, _, stderr) = run(
            env!("CARGO_BIN_EXE_mlc-gen"),
            &[
                "--preset",
                "vms3",
                "--records",
                "20000",
                "--seed",
                "99",
                "--out",
                path.to_str().unwrap(),
                "--stats",
                "false",
            ],
        );
        assert!(ok, "{stderr}");
    }
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same seed must produce identical files"
    );
}

/// Extracts `"value":N` from a `mlc-metrics/1` counter line.
fn counter_value(line: &str) -> u64 {
    let tail = line.split("\"value\":").nth(1).expect("counter line");
    tail.trim_end_matches(['}', '\n'])
        .trim()
        .parse()
        .expect("integer counter")
}

#[test]
fn attribution_and_event_traces_end_to_end() {
    let trace = tmp("attr.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "40000",
            "--seed",
            "21",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    let events_path = tmp("attr_events.jsonl");
    let perfetto_path = tmp("attr_perfetto.json");
    let metrics_path = tmp("attr_metrics.jsonl");
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &[
            "--trace",
            trace_str,
            "--attribution",
            "--events-out",
            events_path.to_str().unwrap(),
            "--events-every",
            "32",
            "--perfetto-out",
            perfetto_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
        ],
    );
    assert!(ok, "attributed run failed: {stderr}");

    // The attribution table cross-checks every Equation 1 term.
    for needle in [
        "execution-time attribution",
        "read_miss.L2",
        "read_miss.memory",
        "refresh_wait",
        "N_total",
        "Equation 1 total off by",
    ] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }

    // mlc-events/1: a meta line, then sampled access lines.
    let events = std::fs::read_to_string(&events_path).unwrap();
    let meta = events.lines().next().unwrap();
    assert!(meta.contains("\"schema\":\"mlc-events/1\""), "{meta}");
    assert!(meta.contains("\"every\":32"), "{meta}");
    assert!(events.contains("\"event\":\"access\""), "{events}");

    // Chrome trace-event JSON with complete ("X") slices.
    let chrome = std::fs::read_to_string(&perfetto_path).unwrap();
    assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("mlc-chrome-trace/1"), "{chrome}");

    // Ledger conservation holds on the exported metrics: the
    // sim.ledger.* counters sum exactly to sim.total_cycles.
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    let ledger_sum: u64 = metrics
        .lines()
        .filter(|l| l.contains("\"event\":\"counter\"") && l.contains("\"name\":\"sim.ledger."))
        .map(counter_value)
        .sum();
    let total = metrics
        .lines()
        .find(|l| l.contains("\"name\":\"sim.total_cycles\""))
        .map(counter_value)
        .expect("total_cycles counter");
    assert!(ledger_sum > 0);
    assert_eq!(ledger_sum, total, "ledger buckets must sum to total_cycles");
    assert!(
        metrics.contains("\"name\":\"sim.read_miss_latency.L1\""),
        "histograms missing: {metrics}"
    );

    // mlc-analyze --attribution reports the same cross-check from a
    // trace alone.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-analyze"),
        &["--trace", trace_str, "--sizes", "4K:16K", "--attribution"],
    );
    assert!(ok, "analyze attribution failed: {stderr}");
    assert!(stdout.contains("execution-time attribution"), "{stdout}");
    assert!(stdout.contains("Equation 1 total off by"), "{stdout}");
}

#[test]
fn bounds_binary_end_to_end() {
    let trace = tmp("bounds.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "20000",
            "--seed",
            "23",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    // Human report with the sim-vs-bounds oracle: must pass, and the
    // table must carry every CHMC column.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-bounds"),
        &["--trace", trace_str, "--check"],
    );
    assert!(ok, "mlc-bounds failed: {stderr}");
    assert!(stdout.contains("Guaranteed read-miss bounds"), "{stdout}");
    for needle in ["L1", "L2", "read-path cycles in ["] {
        assert!(stdout.contains(needle), "missing {needle}:\n{stdout}");
    }
    assert!(
        stdout.contains("oracle: simulated misses fall inside every guaranteed bound"),
        "{stdout}"
    );

    // JSON carries the mlc-bounds/1 schema plus the oracle verdict.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-bounds"),
        &["--trace", trace_str, "--check", "--format", "json"],
    );
    assert!(ok, "json mode failed: {stderr}");
    assert!(stdout.contains("\"schema\": \"mlc-bounds/1\""), "{stdout}");
    assert!(stdout.contains("\"measured_read_misses\""), "{stdout}");
    assert!(stdout.contains("\"oracle_ok\": true"), "{stdout}");

    // An unsupported replacement policy is rejected with the MLC016
    // fix-it, not silently mis-bounded.
    let machine = tmp("bounds_fifo.mlc");
    std::fs::write(
        &machine,
        "cpu.cycle_ns = 10\n\n[level L1]\nsize = 4K\nblock = 16\nways = 2\n\
         replacement = fifo\ncycles = 1\n\n[memory]\nread_ns = 180\n",
    )
    .unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-bounds"),
        &["--trace", trace_str, "--machine", machine.to_str().unwrap()],
    );
    assert!(!ok, "fifo machine must be rejected");
    assert!(stderr.contains("MLC016"), "{stderr}");

    // mlc-analyze --bounds --attribution crosses Equation 1 against the
    // static bounds.
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-analyze"),
        &[
            "--trace",
            trace_str,
            "--sizes",
            "4K:16K",
            "--bounds",
            "--attribution",
        ],
    );
    assert!(ok, "analyze --bounds failed: {stderr}");
    assert!(stdout.contains("Guaranteed read-miss bounds"), "{stdout}");
    assert!(
        stdout.contains("Equation 1 read terms vs guaranteed bounds"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("NO"),
        "a bound failed Equation 1:\n{stdout}"
    );
}

#[test]
fn bad_observability_paths_fail_fast_and_typed() {
    let trace = tmp("badpath.din");
    let trace_str = trace.to_str().unwrap();
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-gen"),
        &[
            "--preset",
            "mips1",
            "--records",
            "1000",
            "--seed",
            "1",
            "--out",
            trace_str,
        ],
    );
    assert!(ok, "{stderr}");

    // A bad --events-out fails before the trace is even read.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-run"),
        &["--trace", trace_str, "--events-out", "no/such/dir/e.jsonl"],
    );
    assert!(!ok);
    assert!(stderr.contains("--events-out"), "{stderr}");
    assert!(stderr.contains("does not exist"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(
        !stderr.contains("reading"),
        "path validation must precede trace ingestion: {stderr}"
    );

    // Same for --metrics-out, across binaries.
    let (ok, _, stderr) = run(
        env!("CARGO_BIN_EXE_mlc-analyze"),
        &["--trace", trace_str, "--metrics-out", "no/such/dir/m.jsonl"],
    );
    assert!(!ok);
    assert!(stderr.contains("--metrics-out"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}
