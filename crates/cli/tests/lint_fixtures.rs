//! Paired good/bad machine-file fixtures for the linter.
//!
//! The good fixtures must lint clean; the seeded-bad fixtures must fire
//! specific rules with exact severities and line spans. Line numbers in
//! the assertions are pinned to the fixture files under
//! `tests/fixtures/` — editing a fixture means re-checking them here.

use std::collections::BTreeSet;

use mlc_check::{RuleId, Severity, Span};
use mlc_cli::lint::{lint_machine_text, LintOutcome};

fn lint_fixture(name: &str) -> LintOutcome {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    lint_machine_text(&text)
}

/// Asserts that exactly one diagnostic for `rule` exists and carries the
/// expected severity and span.
fn assert_finding(outcome: &LintOutcome, rule: RuleId, severity: Severity, span: Span) {
    let matches: Vec<_> = outcome
        .report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .collect();
    assert_eq!(
        matches.len(),
        1,
        "expected exactly one {rule} finding, got {matches:?}"
    );
    let d = matches[0];
    assert_eq!(d.severity, severity, "{rule}: wrong severity in {d:?}");
    assert_eq!(d.span, Some(span), "{rule}: wrong span in {d:?}");
}

#[test]
fn good_base_fixture_is_clean() {
    let outcome = lint_fixture("good_base.mlc");
    assert!(
        outcome.report.is_clean(),
        "{:?}",
        outcome.report.diagnostics
    );
    assert!(outcome.config.is_some());
}

#[test]
fn good_three_level_fixture_is_clean() {
    let outcome = lint_fixture("good_three_level.mlc");
    assert!(
        outcome.report.is_clean(),
        "{:?}",
        outcome.report.diagnostics
    );
    assert_eq!(outcome.config.expect("parses").depth(), 3);
}

#[test]
fn bad_hierarchy_fires_inversion_rules_on_the_right_lines() {
    let outcome = lint_fixture("bad_hierarchy.mlc");
    // L1 (lines 7-14): slow L1, swapped write timing, 12-byte bus.
    assert_finding(&outcome, RuleId::L1Cycle, Severity::Advice, Span::line(12));
    assert_finding(
        &outcome,
        RuleId::WriteCycleInversion,
        Severity::Warning,
        Span::line(13),
    );
    assert_finding(
        &outcome,
        RuleId::BusPowerOfTwo,
        Severity::Error,
        Span::line(14),
    );
    // L2 (lines 16-21): smaller, faster, narrower-blocked than L1, with
    // a one-entry write buffer behind write-through.
    assert_finding(
        &outcome,
        RuleId::CapacityInclusion,
        Severity::Error,
        Span::line(17),
    );
    assert_finding(
        &outcome,
        RuleId::BlockMonotonic,
        Severity::Error,
        Span::line(18),
    );
    assert_finding(
        &outcome,
        RuleId::CycleMonotonic,
        Severity::Error,
        Span::line(19),
    );
    assert_finding(
        &outcome,
        RuleId::WriteBufferDepth,
        Severity::Warning,
        Span::line(20),
    );
    // Write-through at L2 also widens static miss bounds (MLC017).
    assert_finding(
        &outcome,
        RuleId::WritePolicyWidening,
        Severity::Advice,
        Span::line(21),
    );
    // The simulator's own validation also rejects the 12-byte bus; the
    // span recovers to the whole L1 section.
    assert_finding(
        &outcome,
        RuleId::ConfigInvalid,
        Severity::Error,
        Span::lines(7, 14),
    );
    assert_eq!(outcome.report.diagnostics.len(), 9, "no stray findings");
}

#[test]
fn bad_degenerate_fires_shape_rules_on_the_right_lines() {
    let outcome = lint_fixture("bad_degenerate.mlc");
    // L1 (lines 7-13): sub-blocked fetches and a too-wide refill bus.
    assert_finding(
        &outcome,
        RuleId::FetchUnit,
        Severity::Warning,
        Span::line(12),
    );
    assert_finding(
        &outcome,
        RuleId::BusWiderThanBlock,
        Severity::Warning,
        Span::line(13),
    );
    // L2 and L3 are both only 2x their upstream neighbour and as slow as
    // main memory (18 cycles x 10 ns = 180 ns); L3 duplicates L2.
    for (rule, severity, spans) in [
        (
            RuleId::CapacityRatio,
            Severity::Warning,
            [Span::line(16), Span::line(22)],
        ),
        (
            RuleId::DegenerateLevel,
            Severity::Error,
            [Span::line(19), Span::line(25)],
        ),
    ] {
        let found: Vec<_> = outcome
            .report
            .diagnostics
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| {
                assert_eq!(d.severity, severity, "{d:?}");
                d.span.expect("fixture findings carry spans")
            })
            .collect();
        assert_eq!(found, spans, "{rule}");
    }
    assert_finding(
        &outcome,
        RuleId::CycleFlat,
        Severity::Warning,
        Span::line(25),
    );
    assert_finding(
        &outcome,
        RuleId::DuplicateLevel,
        Severity::Warning,
        Span::lines(21, 25),
    );
    assert_eq!(outcome.report.diagnostics.len(), 8, "no stray findings");
}

#[test]
fn bad_syntax_becomes_a_parse_error_diagnostic() {
    let outcome = lint_fixture("bad_syntax.mlc");
    assert!(outcome.config.is_none(), "parse failures yield no config");
    assert_finding(&outcome, RuleId::ParseError, Severity::Error, Span::line(2));
    let d = &outcome.report.diagnostics[0];
    assert!(
        d.message.contains("unterminated section header"),
        "{}",
        d.message
    );
}

/// Acceptance criterion: the seeded-bad fixtures collectively flag at
/// least 8 distinct rules, every finding carrying a line span.
#[test]
fn bad_fixtures_cover_at_least_eight_distinct_rules_with_spans() {
    let mut rules = BTreeSet::new();
    for name in ["bad_hierarchy.mlc", "bad_degenerate.mlc", "bad_syntax.mlc"] {
        let outcome = lint_fixture(name);
        for d in &outcome.report.diagnostics {
            assert!(d.span.is_some(), "{name}: finding without a span: {d:?}");
            rules.insert(d.rule);
        }
    }
    assert!(
        rules.len() >= 8,
        "only {} distinct rules fired: {rules:?}",
        rules.len()
    );
}
