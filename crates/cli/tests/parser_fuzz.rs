//! Fuzz-style property tests: the CLI's parsers must reject arbitrary
//! garbage with errors, never panics.

use proptest::prelude::*;

use mlc_cli::args::{parse_int_range, parse_size, parse_size_range};
use mlc_cli::machine_file::parse_machine;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn machine_parser_never_panics(input in "\\PC*") {
        let _ = parse_machine(&input);
    }

    #[test]
    fn machine_parser_never_panics_on_ini_like(
        lines in prop::collection::vec(
            prop_oneof![
                Just("[level L1]".to_string()),
                Just("[memory]".to_string()),
                "[a-z_.]{1,12} = [A-Za-z0-9]{0,8}",
                Just("size = 4K".to_string()),
                Just("cycles = 1".to_string()),
            ],
            0..20,
        )
    ) {
        let _ = parse_machine(&lines.join("\n"));
    }

    #[test]
    fn size_parsers_never_panic(input in "\\PC{0,20}") {
        let _ = parse_size(&input);
        let _ = parse_size_range(&input);
        let _ = parse_int_range(&input);
    }

    #[test]
    fn render_parse_round_trip(
        l1_log in 11u32..16,
        l2_log in 16u32..23,
        l2_ways_log in 0u32..4,
        cycles in 1u64..12,
        buffer in 1usize..9,
        victim in 0u32..5,
    ) {
        use mlc_cache::{ByteSize, CacheConfig};
        use mlc_cli::machine_file::render_machine;
        use mlc_sim::{CpuConfig, HierarchyConfig, LevelCacheConfig, LevelConfig, MemoryConfig};

        let half = CacheConfig::builder()
            .total(ByteSize::new(1 << (l1_log - 1)))
            .block_bytes(16)
            .victim_entries(victim)
            .build()
            .unwrap();
        let l2 = CacheConfig::builder()
            .total(ByteSize::new(1 << l2_log))
            .block_bytes(32)
            .ways(1 << l2_ways_log)
            .build()
            .unwrap();
        let mut l2_level = LevelConfig::new("L2", LevelCacheConfig::Unified(l2), cycles);
        l2_level.write_buffer_entries = buffer;
        let config = HierarchyConfig {
            cpu: CpuConfig { cycle_ns: 10.0 },
            levels: vec![
                LevelConfig::new(
                    "L1",
                    LevelCacheConfig::Split {
                        icache: half,
                        dcache: half,
                    },
                    1,
                ),
                l2_level,
            ],
            memory: MemoryConfig::default(),
        };
        let parsed = parse_machine(&render_machine(&config)).unwrap();
        prop_assert_eq!(parsed, config);
    }

    #[test]
    fn valid_machines_round_trip_through_validation(
        l1_log in 11u32..16,
        l2_log in 16u32..23,
        cycles in 1u64..12,
    ) {
        let text = format!(
            "[level L1]\nsize = {}\nblock = 16\ncycles = 1\nsplit = true\n\
             [level L2]\nsize = {}\nblock = 32\ncycles = {}\n",
            1u64 << l1_log,
            1u64 << l2_log,
            cycles,
        );
        let config = parse_machine(&text).unwrap();
        prop_assert!(config.validate().is_ok());
        prop_assert_eq!(config.levels[1].read_cycles, cycles);
    }
}
