//! Lines of constant performance and their slopes (Figures 4-2 … 4-4).
//!
//! Taking horizontal slices through the execution-time curves exposes
//! classes of machines with the same performance; plotted in
//! (L2 size, L2 cycle time) space, each class is a *line of constant
//! performance*. The line's slope — CPU cycles of cycle-time slack per
//! size doubling — is the paper's central design-guidance quantity: a
//! slope of 3 cycles/doubling at 10 ns means quadrupling the cache wins
//! as long as it costs less than 60 ns of access time.

use std::fmt;

use mlc_cache::ByteSize;

use crate::explore::DesignGrid;

/// One interpolated point of a constant-performance line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoPoint {
    /// L2 size.
    pub size: ByteSize,
    /// The (fractional) L2 cycle time achieving the target time at this
    /// size.
    pub cycles: f64,
}

/// A line of constant performance across the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct IsoPerfLine {
    /// The execution-time level this line traces, in total cycles.
    pub target_total: f64,
    /// The same level relative to the grid's best point.
    pub relative: f64,
    /// Interpolated points, ascending in size. Sizes where the target is
    /// unreachable within the swept cycle range are absent.
    pub points: Vec<IsoPoint>,
}

impl IsoPerfLine {
    /// The line's interpolated cycle time at `size` (log-size linear
    /// interpolation), if `size` lies within the line's span.
    pub fn cycles_at_size(&self, size_bytes: f64) -> Option<f64> {
        let x = size_bytes.log2();
        for w in self.points.windows(2) {
            let x0 = (w[0].size.get() as f64).log2();
            let x1 = (w[1].size.get() as f64).log2();
            if (x0..=x1).contains(&x) {
                if (x1 - x0).abs() < 1e-12 {
                    return Some(w[0].cycles);
                }
                return Some(w[0].cycles + (w[1].cycles - w[0].cycles) * (x - x0) / (x1 - x0));
            }
        }
        None
    }

    /// The size (bytes, fractional) at which the line crosses cycle time
    /// `cycles`, if it does. Lines rise with size, so this inverts the
    /// interpolation of [`IsoPerfLine::cycles_at_size`].
    pub fn size_at_cycles(&self, cycles: f64) -> Option<f64> {
        for w in self.points.windows(2) {
            let (c0, c1) = (w[0].cycles, w[1].cycles);
            if (c0 <= cycles && cycles <= c1) || (c1 <= cycles && cycles <= c0) {
                let x0 = (w[0].size.get() as f64).log2();
                let x1 = (w[1].size.get() as f64).log2();
                if (c1 - c0).abs() < 1e-12 {
                    return Some(2f64.powf(x0));
                }
                let x = x0 + (x1 - x0) * (cycles - c0) / (c1 - c0);
                return Some(2f64.powf(x));
            }
        }
        None
    }
}

/// Extracts lines of constant performance at the given *relative* levels
/// (e.g. 1.1, 1.2, …) from a design grid. For each size, the cycle time
/// achieving the target is found by linear interpolation down the
/// (monotone) cycle-time column.
pub fn constant_performance_lines(grid: &DesignGrid, relative_levels: &[f64]) -> Vec<IsoPerfLine> {
    let min = grid.min_total() as f64;
    relative_levels
        .iter()
        .map(|&rel| line_at_total(grid, rel * min, rel))
        .collect()
}

/// Extracts lines at *absolute* execution-time levels (total cycles) —
/// used when comparing line families across different machines, where
/// each grid's own minimum would be a different normaliser.
pub fn constant_performance_lines_abs(grid: &DesignGrid, totals: &[f64]) -> Vec<IsoPerfLine> {
    let min = grid.min_total() as f64;
    totals
        .iter()
        .map(|&t| line_at_total(grid, t, t / min))
        .collect()
}

fn line_at_total(grid: &DesignGrid, target: f64, relative: f64) -> IsoPerfLine {
    let mut points = Vec::new();
    for (i, &size) in grid.sizes.iter().enumerate() {
        if let Some(cycles) = invert_column(grid, i, target) {
            points.push(IsoPoint { size, cycles });
        }
    }
    IsoPerfLine {
        target_total: target,
        relative,
        points,
    }
}

/// Finds the cycle time at which size-column `i` reaches `target` total
/// cycles, by linear interpolation; `None` outside the swept range.
fn invert_column(grid: &DesignGrid, i: usize, target: f64) -> Option<f64> {
    let col = &grid.total[i];
    let cycles = &grid.cycles;
    for j in 0..col.len().saturating_sub(1) {
        let (y0, y1) = (col[j] as f64, col[j + 1] as f64);
        if (y0 <= target && target <= y1) || (y1 <= target && target <= y0) {
            let (x0, x1) = (cycles[j] as f64, cycles[j + 1] as f64);
            if (y1 - y0).abs() < 1e-12 {
                return Some(x0);
            }
            return Some(x0 + (x1 - x0) * (target - y0) / (y1 - y0));
        }
    }
    None
}

/// The slope of a line between consecutive sizes, in CPU cycles of
/// cycle-time slack per size doubling. Returned per segment, keyed by the
/// segment's left endpoint.
pub fn slopes_cycles_per_doubling(line: &IsoPerfLine) -> Vec<(ByteSize, f64)> {
    line.points
        .windows(2)
        .map(|w| {
            let doublings = ((w[1].size.get() as f64) / (w[0].size.get() as f64)).log2();
            (w[0].size, (w[1].cycles - w[0].cycles) / doublings)
        })
        .collect()
}

/// The paper's slope regions (Figure 4-2's shading), bounded at 0.75,
/// 1.5 and 3 CPU cycles per doubling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SlopeRegion {
    /// Slope < 0.75 cycles/doubling: growing the cache buys little.
    Flat,
    /// 0.75 ≤ slope < 1.5.
    Moderate,
    /// 1.5 ≤ slope < 3.
    Steep,
    /// Slope ≥ 3 cycles/doubling: "a strong pull towards larger caches".
    VerySteep,
}

impl SlopeRegion {
    /// Classifies a slope by the paper's contour bounds.
    pub fn classify(slope_cycles_per_doubling: f64) -> Self {
        if slope_cycles_per_doubling >= 3.0 {
            SlopeRegion::VerySteep
        } else if slope_cycles_per_doubling >= 1.5 {
            SlopeRegion::Steep
        } else if slope_cycles_per_doubling >= 0.75 {
            SlopeRegion::Moderate
        } else {
            SlopeRegion::Flat
        }
    }
}

impl fmt::Display for SlopeRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SlopeRegion::Flat => "<0.75 cyc/dbl",
            SlopeRegion::Moderate => "0.75-1.5 cyc/dbl",
            SlopeRegion::Steep => "1.5-3 cyc/dbl",
            SlopeRegion::VerySteep => ">=3 cyc/dbl",
        })
    }
}

/// The mean slope per size segment, averaged across a family of lines —
/// the data behind the paper's shaded slope regions.
pub fn slope_profile(grid: &DesignGrid, lines: &[IsoPerfLine]) -> Vec<(ByteSize, f64)> {
    let mut out = Vec::new();
    for k in 0..grid.sizes.len().saturating_sub(1) {
        let seg: Vec<f64> = lines
            .iter()
            .flat_map(|l| {
                slopes_cycles_per_doubling(l)
                    .into_iter()
                    .filter(|(at, _)| *at == grid.sizes[k])
                    .map(|(_, s)| s)
            })
            .collect();
        if !seg.is_empty() {
            out.push((grid.sizes[k], seg.iter().sum::<f64>() / seg.len() as f64));
        }
    }
    out
}

/// The (fractional, log-interpolated) size at which a slope profile
/// first falls below `frac` of its own peak, scanning left to right from
/// the peak — a shape-normalised marker of where the steep region ends.
/// Comparing this marker between two machines measures how far the slope
/// structure shifted, independent of the overall `1/M_L1` slope scaling.
///
/// Returns `None` if the profile never drops below the threshold.
pub fn slope_boundary_size(profile: &[(ByteSize, f64)], frac: f64) -> Option<f64> {
    let peak_idx = profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("slopes are finite"))?
        .0;
    let peak = profile[peak_idx].1;
    if peak <= 0.0 {
        return None;
    }
    let threshold = frac * peak;
    for w in profile[peak_idx..].windows(2) {
        let ((s0, v0), (s1, v1)) = (w[0], w[1]);
        if v0 >= threshold && v1 < threshold {
            let x0 = (s0.get() as f64).log2();
            let x1 = (s1.get() as f64).log2();
            let t = (v0 - threshold) / (v0 - v1);
            return Some(2f64.powf(x0 + t * (x1 - x0)));
        }
    }
    None
}

/// The mean horizontal shift (as a size ratio) between two families of
/// constant-performance lines at equal absolute performance — how far
/// family `b` sits to the right of family `a`. Lines are matched by
/// index; the shift is the geometric mean of per-crossing size ratios at
/// shared cycle-time values.
///
/// Returns `None` if no line pair overlaps.
pub fn mean_line_shift(a: &[IsoPerfLine], b: &[IsoPerfLine]) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for (la, lb) in a.iter().zip(b.iter()) {
        // Probe at each half-cycle over the overlapping cycle range.
        let lo = la
            .points
            .iter()
            .chain(lb.points.iter())
            .map(|p| p.cycles)
            .fold(f64::INFINITY, f64::min);
        let hi = la
            .points
            .iter()
            .chain(lb.points.iter())
            .map(|p| p.cycles)
            .fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() {
            continue;
        }
        let mut t = lo;
        while t <= hi {
            if let (Some(sa), Some(sb)) = (la.size_at_cycles(t), lb.size_at_cycles(t)) {
                if sa > 0.0 && sb > 0.0 {
                    log_sum += (sb / sa).ln();
                    count += 1;
                }
            }
            t += 0.5;
        }
    }
    if count == 0 {
        None
    } else {
        Some((log_sum / count as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic grid where total = 1000 + 100·cycles − 200·log2(size/8KB):
    /// performance improves with size and worsens with cycle time, so the
    /// lines of constant performance have slope exactly 2 cycles/doubling.
    fn synthetic_grid() -> DesignGrid {
        let sizes: Vec<ByteSize> = (0..6).map(|i| ByteSize::kib(8 << i)).collect();
        let cycles: Vec<u64> = (1..=10).collect();
        let total: Vec<Vec<u64>> = (0..sizes.len())
            .map(|i| {
                cycles
                    .iter()
                    .map(|&c| 10_000 + 100 * c - 200 * i as u64)
                    .collect()
            })
            .collect();
        DesignGrid {
            sizes,
            cycles,
            ways: 1,
            total,
            l2_local: vec![0.1; 6],
            l2_global: vec![0.02; 6],
            m_l1_global: 0.1,
            cpu_cycle_ns: 10.0,
        }
    }

    #[test]
    fn lines_have_expected_slope() {
        let grid = synthetic_grid();
        let lines = constant_performance_lines(&grid, &[1.05]);
        let line = &lines[0];
        assert!(line.points.len() >= 3, "line spans several sizes");
        for (_, slope) in slopes_cycles_per_doubling(line) {
            assert!((slope - 2.0).abs() < 1e-9, "slope {slope}");
        }
    }

    #[test]
    fn lines_rise_with_size() {
        let grid = synthetic_grid();
        for line in constant_performance_lines(&grid, &[1.02, 1.05, 1.08]) {
            for w in line.points.windows(2) {
                assert!(w[1].cycles > w[0].cycles);
            }
        }
    }

    #[test]
    fn interpolation_round_trip() {
        let grid = synthetic_grid();
        let line = &constant_performance_lines(&grid, &[1.05])[0];
        let mid_size = 128.0 * 1024.0;
        if let Some(c) = line.cycles_at_size(mid_size) {
            let s = line.size_at_cycles(c).unwrap();
            assert!((s / mid_size - 1.0).abs() < 1e-6, "{s} vs {mid_size}");
        } else {
            panic!("line should span 128KB");
        }
    }

    #[test]
    fn unreachable_targets_have_no_points() {
        let grid = synthetic_grid();
        // Far below the minimum: no column can reach it.
        let lines = constant_performance_lines_abs(&grid, &[100.0]);
        assert!(lines[0].points.is_empty());
    }

    #[test]
    fn slope_regions_classify_paper_bounds() {
        assert_eq!(SlopeRegion::classify(0.5), SlopeRegion::Flat);
        assert_eq!(SlopeRegion::classify(0.75), SlopeRegion::Moderate);
        assert_eq!(SlopeRegion::classify(1.49), SlopeRegion::Moderate);
        assert_eq!(SlopeRegion::classify(1.5), SlopeRegion::Steep);
        assert_eq!(SlopeRegion::classify(3.0), SlopeRegion::VerySteep);
        assert_eq!(SlopeRegion::classify(10.0), SlopeRegion::VerySteep);
        assert!(SlopeRegion::VerySteep.to_string().contains(">=3"));
    }

    #[test]
    fn slope_profile_and_boundary() {
        let grid = synthetic_grid();
        let lines = constant_performance_lines(&grid, &[1.02, 1.05]);
        let profile = slope_profile(&grid, &lines);
        assert!(!profile.is_empty());
        for (_, s) in &profile {
            assert!((s - 2.0).abs() < 1e-9, "constant 2 cyc/dbl everywhere");
        }
        // A constant profile never falls below half its peak.
        assert!(slope_boundary_size(&profile, 0.5).is_none());

        // A synthetic declining profile crosses half-peak between 32 and
        // 64 KB.
        let declining = vec![
            (ByteSize::kib(8), 4.0),
            (ByteSize::kib(16), 3.0),
            (ByteSize::kib(32), 2.5),
            (ByteSize::kib(64), 1.0),
            (ByteSize::kib(128), 0.5),
        ];
        let b = slope_boundary_size(&declining, 0.5).unwrap();
        assert!(
            b > 32.0 * 1024.0 && b < 64.0 * 1024.0,
            "boundary {b} should interpolate between 32K and 64K"
        );
    }

    #[test]
    fn shift_between_identical_families_is_one() {
        let grid = synthetic_grid();
        let lines = constant_performance_lines(&grid, &[1.05, 1.1]);
        let shift = mean_line_shift(&lines, &lines).unwrap();
        assert!((shift - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shift_detects_displaced_family() {
        let grid = synthetic_grid();
        let lines = constant_performance_lines(&grid, &[1.05]);
        // Displace every point one doubling to the right.
        let shifted: Vec<IsoPerfLine> = lines
            .iter()
            .map(|l| IsoPerfLine {
                points: l
                    .points
                    .iter()
                    .map(|p| IsoPoint {
                        size: ByteSize::new(p.size.get() * 2),
                        cycles: p.cycles,
                    })
                    .collect(),
                ..l.clone()
            })
            .collect();
        let shift = mean_line_shift(&lines, &shifted).unwrap();
        assert!((shift - 2.0).abs() < 1e-6, "shift {shift}");
    }

    #[test]
    fn no_overlap_gives_none() {
        let a = vec![IsoPerfLine {
            target_total: 1.0,
            relative: 1.0,
            points: vec![],
        }];
        assert!(mean_line_shift(&a, &a).is_none());
    }
}
