//! Design-space exploration: the parameter sweeps behind every figure.
//!
//! An [`Explorer`] owns nothing but a borrowed trace and a warm-up count;
//! each sweep builds machine variants with
//! [`BaseMachine`](mlc_sim::machine::BaseMachine), simulates every grid
//! point in parallel, and returns a queryable grid.

use mlc_cache::{ByteSize, CacheConfig};
use mlc_obs::{Metrics, Progress};
use mlc_sim::machine::BaseMachine;
use mlc_sim::{
    simulate_timing_sweep_observed, simulate_with_warmup, simulate_with_warmup_observed, solo,
    LevelCacheConfig, SimResult,
};
use mlc_trace::TraceRecord;

use crate::par::{par_map, try_par_map, PointFailure};
use crate::stack::SoloMissSweep;
use crate::timing::SweepEngine;

/// The three miss-ratio families of Figure 3 at one L2 size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissRatioPoint {
    /// L2 total size.
    pub size: ByteSize,
    /// L2 local read miss ratio (misses / references reaching L2).
    pub local: f64,
    /// L2 global read miss ratio (misses / CPU read references).
    pub global: f64,
    /// L2 solo read miss ratio (the L2 alone in the system).
    pub solo: f64,
}

/// Execution times over an (L2 size × L2 cycle time) grid at fixed
/// associativity — the raw material of Figures 4-1 through 5-3.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignGrid {
    /// The swept L2 sizes (ascending).
    pub sizes: Vec<ByteSize>,
    /// The swept L2 cycle times, in CPU cycles (ascending).
    pub cycles: Vec<u64>,
    /// The L2 associativity of every point.
    pub ways: u32,
    /// `total[size_idx][cycle_idx]` = total execution cycles.
    pub total: Vec<Vec<u64>>,
    /// L2 local read miss ratio per size (independent of cycle time).
    pub l2_local: Vec<f64>,
    /// L2 global read miss ratio per size.
    pub l2_global: Vec<f64>,
    /// L1 global read miss ratio (independent of the L2 organisation).
    pub m_l1_global: f64,
    /// CPU cycle time, for ns conversions.
    pub cpu_cycle_ns: f64,
}

/// One completed size-row of a [`DesignGrid`]: every cycle time priced
/// at a single L2 size. The unit of checkpointing — sweeps journal one
/// of these per completed size, and resume replays them.
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// Index into the swept size list.
    pub size_idx: usize,
    /// Total execution cycles per swept cycle time.
    pub total: Vec<u64>,
    /// L2 local read miss ratio at this size.
    pub l2_local: f64,
    /// L2 global read miss ratio at this size.
    pub l2_global: f64,
    /// L1 global read miss ratio (size-independent, repeated per row).
    pub m_l1_global: f64,
    /// CPU cycle time in ns (size-independent, repeated per row).
    pub cpu_cycle_ns: f64,
}

/// A [`DesignGrid`] that may be missing rows, plus the typed reasons.
///
/// Failed rows hold [`DesignGrid::FAILED`] in every `total` cell and
/// `NaN` miss ratios; `failures[k].index` is the failed *size index*.
#[derive(Debug, Clone)]
pub struct PartialGrid {
    /// The grid, with failed rows marked by sentinels.
    pub grid: DesignGrid,
    /// One entry per failed size row, ascending by size index.
    pub failures: Vec<PointFailure>,
}

impl PartialGrid {
    /// Whether every row completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

impl DesignGrid {
    /// Sentinel stored in `total` for grid points whose simulation
    /// failed (or was never run). Skipped by [`DesignGrid::min_total`].
    pub const FAILED: u64 = u64::MAX;

    /// Assembles a grid from completed rows; rows absent from `rows`
    /// are filled with [`DesignGrid::FAILED`] / `NaN` sentinels.
    ///
    /// # Panics
    ///
    /// Panics if a row's `size_idx` or `total` length does not match the
    /// grid definition.
    pub fn from_rows(
        sizes: &[ByteSize],
        cycles: &[u64],
        ways: u32,
        rows: &[GridRow],
    ) -> DesignGrid {
        let mut total = vec![vec![Self::FAILED; cycles.len()]; sizes.len()];
        let mut l2_local = vec![f64::NAN; sizes.len()];
        let mut l2_global = vec![f64::NAN; sizes.len()];
        let mut m_l1 = f64::NAN;
        let mut cpu_cycle_ns = 10.0;
        for row in rows {
            assert!(row.size_idx < sizes.len(), "row index out of grid");
            assert_eq!(row.total.len(), cycles.len(), "row width mismatch");
            total[row.size_idx] = row.total.clone();
            l2_local[row.size_idx] = row.l2_local;
            l2_global[row.size_idx] = row.l2_global;
            m_l1 = row.m_l1_global;
            cpu_cycle_ns = row.cpu_cycle_ns;
        }
        DesignGrid {
            sizes: sizes.to_vec(),
            cycles: cycles.to_vec(),
            ways,
            total,
            l2_local,
            l2_global,
            m_l1_global: m_l1,
            cpu_cycle_ns,
        }
    }

    /// The fastest execution time anywhere on the grid, ignoring failed
    /// points; [`DesignGrid::FAILED`] when every point failed.
    pub fn min_total(&self) -> u64 {
        self.total
            .iter()
            .flat_map(|row| row.iter().copied())
            .filter(|&v| v != Self::FAILED)
            .min()
            .unwrap_or(Self::FAILED)
    }

    /// Execution time relative to the grid's own best point — the
    /// paper's "relative execution time" axis.
    pub fn relative(&self, size_idx: usize, cycle_idx: usize) -> f64 {
        self.total[size_idx][cycle_idx] as f64 / self.min_total() as f64
    }

    /// One size's `(cycle_time, total_cycles)` column, for break-even
    /// interpolation.
    pub fn column(&self, size_idx: usize) -> Vec<(u64, u64)> {
        self.cycles
            .iter()
            .copied()
            .zip(self.total[size_idx].iter().copied())
            .collect()
    }
}

/// A sweep driver over one reference trace.
///
/// # Examples
///
/// ```no_run
/// use mlc_cache::ByteSize;
/// use mlc_core::Explorer;
/// use mlc_sim::machine::BaseMachine;
/// use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
///
/// let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(1)).expect("valid");
/// let trace = gen.generate_records(1_000_000);
/// let explorer = Explorer::new(&trace, 250_000);
/// let sizes: Vec<ByteSize> = (3..=12).map(|i| ByteSize::kib(1 << i)).collect();
/// let curve = explorer.miss_ratio_curve(&BaseMachine::new(), &sizes);
/// assert_eq!(curve.len(), sizes.len());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Explorer<'t> {
    trace: &'t [TraceRecord],
    warmup: usize,
    metrics: Option<&'t Metrics>,
    progress: Option<&'t Progress>,
}

impl<'t> Explorer<'t> {
    /// Creates an explorer over `trace`, excluding the first `warmup`
    /// records from all statistics.
    pub fn new(trace: &'t [TraceRecord], warmup: usize) -> Self {
        Explorer {
            trace,
            warmup,
            metrics: None,
            progress: None,
        }
    }

    /// Feeds per-phase timings and event counts from every sweep into
    /// `metrics`. Sweeps record one `grid.size.<size>` phase per swept
    /// L2 size plus the per-pass `sweep.*` / `sim.*` / `solo.*` phases
    /// of the underlying drivers.
    pub fn with_metrics(mut self, metrics: &'t Metrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Ticks `progress` once per completed grid point (or per size, for
    /// miss-ratio curves) from inside the parallel sweep loops.
    pub fn with_progress(mut self, progress: &'t Progress) -> Self {
        self.progress = Some(progress);
        self
    }

    /// The trace being swept.
    pub fn trace(&self) -> &'t [TraceRecord] {
        self.trace
    }

    fn metrics(&self) -> Metrics {
        self.metrics.cloned().unwrap_or_default()
    }

    fn tick(&self, n: u64) {
        if let Some(progress) = self.progress {
            progress.tick(n);
        }
    }

    /// Runs one machine variant.
    ///
    /// # Panics
    ///
    /// Panics if `base` produces an invalid configuration — sweeps are
    /// driven from validated size lists, so this indicates a caller bug.
    pub fn run(&self, base: &BaseMachine) -> SimResult {
        let config = base.build().expect("sweep configurations are valid");
        simulate_with_warmup_observed(config, self.trace, self.warmup, &self.metrics())
            .expect("validated configuration")
    }

    /// Figure 3's sweep: local/global/solo L2 read miss ratios across
    /// `sizes`, on the hierarchy described by `base`.
    ///
    /// The hierarchy runs (one per size, for the local/global columns)
    /// are unavoidable, but the solo column needs no hierarchy at all:
    /// when the L2 organisation admits it (see
    /// [`SoloMissSweep::supports`]), all sizes' solo miss counts come
    /// from **one** stack-simulation pass over the trace instead of one
    /// functional simulation per size. Exotic organisations fall back to
    /// the per-size solo runs transparently.
    pub fn miss_ratio_curve(&self, base: &BaseMachine, sizes: &[ByteSize]) -> Vec<MissRatioPoint> {
        if sizes.is_empty() {
            return Vec::new();
        }
        let l2_at = |size: ByteSize| -> CacheConfig {
            let mut machine = base.clone();
            machine.l2_total(size);
            let config = machine.build().expect("sweep configurations are valid");
            match config.levels[1].cache {
                LevelCacheConfig::Unified(c) => c,
                LevelCacheConfig::Split { .. } => unreachable!("BaseMachine L2 is unified"),
            }
        };
        let base_l2 = l2_at(sizes[0]);
        let block_bytes = base_l2.geometry().block_bytes();
        let ways = base_l2.geometry().ways();
        let one_pass_solo = SoloMissSweep::supports(&base_l2)
            && sizes
                .iter()
                .all(|&s| SoloMissSweep::admits_size(block_bytes, ways, s));

        let metrics = self.metrics();
        let mut curve = par_map(sizes.to_vec(), |size| {
            let mut machine = base.clone();
            machine.l2_total(size);
            let config = machine.build().expect("sweep configurations are valid");
            let timer = metrics.time_phase(&format!("curve.size.{size}"));
            let result = simulate_with_warmup(config, self.trace.iter().copied(), self.warmup)
                .expect("validated configuration");
            let solo_ratio = if one_pass_solo {
                f64::NAN // filled from the stack sweep below
            } else {
                solo::solo_read_miss_ratio(
                    LevelCacheConfig::Unified(l2_at(size)),
                    self.trace.iter().copied(),
                    self.warmup,
                )
                .unwrap_or(f64::NAN)
            };
            timer.stop();
            self.tick(1);
            MissRatioPoint {
                size,
                local: result.local_read_miss_ratio(1).unwrap_or(f64::NAN),
                global: result.global_read_miss_ratio(1).unwrap_or(f64::NAN),
                solo: solo_ratio,
            }
        });
        if one_pass_solo {
            let sweep = SoloMissSweep::run_sharded_observed(
                block_bytes,
                ways,
                sizes,
                self.trace,
                self.warmup,
                &metrics,
            );
            for (i, point) in curve.iter_mut().enumerate() {
                point.solo = sweep.read_miss_ratio(i).unwrap_or(f64::NAN);
            }
        }
        curve
    }

    /// Figure 4/5's sweep: total execution cycles over an
    /// (L2 size × L2 cycle time) grid at associativity `ways`.
    ///
    /// Uses the default [`SweepEngine::OnePass`]: one functional
    /// simulation per size prices every cycle time in the same pass, so
    /// the grid costs `O(sizes)` trace traversals instead of
    /// `O(sizes × cycles)`. Use [`Explorer::l2_grid_with`] to force the
    /// exhaustive reference engine (or cross-check the two with
    /// [`crate::timing::verify_grids`]).
    pub fn l2_grid(
        &self,
        base: &BaseMachine,
        sizes: &[ByteSize],
        cycles: &[u64],
        ways: u32,
    ) -> DesignGrid {
        self.l2_grid_with(SweepEngine::OnePass, base, sizes, cycles, ways)
    }

    /// [`Explorer::l2_grid`] with an explicit engine choice.
    ///
    /// # Panics
    ///
    /// Panics on the first failed grid row, preserving the historical
    /// all-or-nothing contract. Use [`Explorer::try_l2_grid_with`] for
    /// panic-isolated sweeps.
    pub fn l2_grid_with(
        &self,
        engine: SweepEngine,
        base: &BaseMachine,
        sizes: &[ByteSize],
        cycles: &[u64],
        ways: u32,
    ) -> DesignGrid {
        let partial = self.try_l2_grid_with(engine, base, sizes, cycles, ways);
        if let Some(failure) = partial.failures.first() {
            panic!("grid row failed: {failure}");
        }
        partial.grid
    }

    /// [`Explorer::l2_grid_with`] with per-row panic isolation: a
    /// panicking grid row becomes a [`PointFailure`] (indexed by size)
    /// and a sentinel row instead of aborting the sweep.
    pub fn try_l2_grid_with(
        &self,
        engine: SweepEngine,
        base: &BaseMachine,
        sizes: &[ByteSize],
        cycles: &[u64],
        ways: u32,
    ) -> PartialGrid {
        let todo: Vec<usize> = (0..sizes.len()).collect();
        let results = self.try_l2_rows(engine, base, sizes, cycles, ways, &todo, |_| {});
        let mut rows = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(row) => rows.push(row),
                Err(f) => failures.push(f),
            }
        }
        PartialGrid {
            grid: DesignGrid::from_rows(sizes, cycles, ways, &rows),
            failures,
        }
    }

    /// Computes the grid rows whose size indices are listed in `todo`,
    /// in parallel, isolating a panic in any row to that row's
    /// `Err(PointFailure)` (`index` = the size index). `sink` is invoked
    /// once per *completed* row, from the worker that finished it — the
    /// checkpoint-journal hook; pass `|_| {}` when not journalling.
    ///
    /// Both engines parallelise across rows: a row is the checkpoint
    /// unit, so it must complete or fail as a whole. The exhaustive
    /// engine walks its row's cycle column sequentially (still one
    /// functional pass per point); the one-pass engine prices the whole
    /// row in a single pass exactly as before. Progress ticks remain
    /// per-point for both.
    ///
    /// # Panics
    ///
    /// Panics if the grid definition is empty. A `todo` index outside
    /// `sizes` is reported as that row's failure, not a panic.
    #[allow(clippy::too_many_arguments)]
    pub fn try_l2_rows<S>(
        &self,
        engine: SweepEngine,
        base: &BaseMachine,
        sizes: &[ByteSize],
        cycles: &[u64],
        ways: u32,
        todo: &[usize],
        sink: S,
    ) -> Vec<Result<GridRow, PointFailure>>
    where
        S: Fn(&GridRow) + Sync,
    {
        assert!(!sizes.is_empty() && !cycles.is_empty(), "empty grid");
        let machine_at = |i: usize, j: usize| {
            let mut machine = base.clone();
            machine
                .l2_total(sizes[i])
                .l2_cycles(cycles[j])
                .l2_ways(ways);
            machine
        };
        let metrics = self.metrics();
        let todo_vec = todo.to_vec();
        let results = try_par_map(todo_vec, |i| {
            let results: Vec<SimResult> = match engine {
                SweepEngine::Exhaustive => (0..cycles.len())
                    .map(|j| {
                        let r = self.run(&machine_at(i, j));
                        self.tick(1);
                        r
                    })
                    .collect(),
                SweepEngine::OnePass => {
                    let configs: Vec<_> = (0..cycles.len())
                        .map(|j| {
                            machine_at(i, j)
                                .build()
                                .expect("sweep configurations are valid")
                        })
                        .collect();
                    let timer = metrics.time_phase(&format!("grid.size.{}", sizes[i]));
                    let row =
                        simulate_timing_sweep_observed(&configs, self.trace, self.warmup, &metrics)
                            .expect("lanes differ only in cycle time");
                    timer.stop();
                    self.tick(cycles.len() as u64);
                    row
                }
            };
            let first = &results[0];
            let row = GridRow {
                size_idx: i,
                total: results.iter().map(|r| r.total_cycles).collect(),
                l2_local: first.local_read_miss_ratio(1).unwrap_or(f64::NAN),
                l2_global: first.global_read_miss_ratio(1).unwrap_or(f64::NAN),
                m_l1_global: first.global_read_miss_ratio(0).unwrap_or(f64::NAN),
                cpu_cycle_ns: first.cpu_cycle_ns,
            };
            sink(&row);
            row
        });
        // try_par_map reports positions within `todo`; surface the size
        // index the caller actually asked for.
        results
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                r.map_err(|mut f| {
                    f.index = todo[k];
                    f
                })
            })
            .collect()
    }
}

/// The standard power-of-two size ladder from `lo` to `hi` inclusive.
///
/// # Examples
///
/// ```
/// use mlc_cache::ByteSize;
/// use mlc_core::size_ladder;
///
/// let sizes = size_ladder(ByteSize::kib(4), ByteSize::mib(4));
/// assert_eq!(sizes.len(), 11);
/// assert_eq!(sizes[0], ByteSize::kib(4));
/// assert_eq!(sizes[10], ByteSize::mib(4));
/// ```
///
/// # Panics
///
/// Panics unless both bounds are powers of two with `lo <= hi`.
pub fn size_ladder(lo: ByteSize, hi: ByteSize) -> Vec<ByteSize> {
    assert!(
        lo.is_power_of_two() && hi.is_power_of_two() && lo <= hi,
        "ladder bounds must be powers of two with lo <= hi"
    );
    let mut out = Vec::new();
    let mut s = lo.get();
    while s <= hi.get() {
        out.push(ByteSize::new(s));
        s <<= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_obs::{Metrics, Progress};
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn trace(n: usize) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips2.config(5))
            .expect("valid preset")
            .generate_records(n)
    }

    #[test]
    fn size_ladder_bounds() {
        let l = size_ladder(ByteSize::kib(8), ByteSize::kib(64));
        assert_eq!(
            l,
            vec![
                ByteSize::kib(8),
                ByteSize::kib(16),
                ByteSize::kib(32),
                ByteSize::kib(64)
            ]
        );
        assert_eq!(size_ladder(ByteSize::kib(4), ByteSize::kib(4)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "ladder bounds")]
    fn size_ladder_rejects_inverted() {
        size_ladder(ByteSize::kib(64), ByteSize::kib(8));
    }

    #[test]
    fn miss_ratio_curve_shape() {
        let t = trace(120_000);
        let explorer = Explorer::new(&t, 30_000);
        let sizes = size_ladder(ByteSize::kib(16), ByteSize::kib(256));
        let curve = explorer.miss_ratio_curve(&BaseMachine::new(), &sizes);
        assert_eq!(curve.len(), sizes.len());
        for p in &curve {
            assert!(p.local >= p.global - 1e-12, "local >= global at {}", p.size);
            assert!(p.local <= 1.0 && p.global <= 1.0 && p.solo <= 1.0);
        }
        // Global miss ratio decreases (weakly) with size.
        for w in curve.windows(2) {
            assert!(
                w[1].global <= w[0].global + 1e-3,
                "global should fall: {:?}",
                (w[0].size, w[0].global, w[1].size, w[1].global)
            );
        }
    }

    #[test]
    fn grid_shape_and_monotonicity() {
        let t = trace(100_000);
        let explorer = Explorer::new(&t, 25_000);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(128));
        let cycles = vec![1, 3, 5];
        let grid = explorer.l2_grid(&BaseMachine::new(), &sizes, &cycles, 1);
        assert_eq!(grid.total.len(), 3);
        assert_eq!(grid.total[0].len(), 3);
        // Execution time rises with L2 cycle time at fixed size.
        for row in &grid.total {
            for w in row.windows(2) {
                assert!(w[1] >= w[0], "slower L2 must not speed things up");
            }
        }
        // Relative is 1.0 at the argmin.
        let min = grid.min_total();
        assert!(grid.total.iter().enumerate().any(|(i, row)| row
            .iter()
            .enumerate()
            .any(|(j, &v)| { v == min && (grid.relative(i, j) - 1.0).abs() < 1e-12 })));
        assert_eq!(grid.column(0).len(), 3);
        assert!(!grid.m_l1_global.is_nan());
    }

    #[test]
    fn engines_agree_cycle_exact() {
        let t = trace(60_000);
        let explorer = Explorer::new(&t, 15_000);
        let sizes = size_ladder(ByteSize::kib(64), ByteSize::kib(128));
        let cycles = vec![1, 4];
        let exhaustive = explorer.l2_grid_with(
            SweepEngine::Exhaustive,
            &BaseMachine::new(),
            &sizes,
            &cycles,
            1,
        );
        let onepass = explorer.l2_grid_with(
            SweepEngine::OnePass,
            &BaseMachine::new(),
            &sizes,
            &cycles,
            1,
        );
        crate::timing::verify_grids(&exhaustive, &onepass).expect("engines must agree");
    }

    #[test]
    fn metrics_and_progress_flow_through_sweeps() {
        let t = trace(50_000);
        let metrics = Metrics::enabled();
        let progress = Progress::disabled();
        let explorer = Explorer::new(&t, 10_000)
            .with_metrics(&metrics)
            .with_progress(&progress);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
        let cycles = vec![1, 4];
        let grid = explorer.l2_grid(&BaseMachine::new(), &sizes, &cycles, 1);
        assert_eq!(grid.total.len(), 2);
        // One tick per grid point.
        assert_eq!(progress.done(), (sizes.len() * cycles.len()) as u64);
        let snap = metrics.snapshot();
        let phase = |name: &str| snap.phases.iter().any(|(n, _)| n == name);
        assert!(phase("grid.size.32KB"), "phases: {:?}", snap.phases);
        assert!(phase("grid.size.64KB"));
        assert!(phase("sweep.warmup") && phase("sweep.measure"));

        let curve = explorer.miss_ratio_curve(&BaseMachine::new(), &sizes);
        assert_eq!(curve.len(), 2);
        assert_eq!(
            progress.done(),
            (sizes.len() * cycles.len() + sizes.len()) as u64
        );
        let snap = metrics.snapshot();
        assert!(snap.phases.iter().any(|(n, _)| n == "solo.measure"));
        assert!(snap
            .counters
            .iter()
            .any(|(n, v)| n == "solo.read_refs" && *v > 0));
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn grid_rejects_empty() {
        let t = trace(1000);
        Explorer::new(&t, 0).l2_grid(&BaseMachine::new(), &[], &[1], 1);
    }

    #[test]
    fn try_rows_isolate_a_poisoned_row() {
        let t = trace(40_000);
        let explorer = Explorer::new(&t, 10_000);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
        let cycles = vec![1, 4];
        // Size index 5 does not exist: the row fails typed, the valid
        // row still completes.
        let out = explorer.try_l2_rows(
            SweepEngine::OnePass,
            &BaseMachine::new(),
            &sizes,
            &cycles,
            1,
            &[0, 5],
            |_| {},
        );
        assert_eq!(out.len(), 2);
        let good = out[0].as_ref().expect("row 0 completes");
        assert_eq!(good.size_idx, 0);
        assert_eq!(good.total.len(), 2);
        let bad = out[1].as_ref().unwrap_err();
        assert_eq!(bad.index, 5);
    }

    #[test]
    fn partial_grid_marks_failed_rows_with_sentinels() {
        let t = trace(40_000);
        let explorer = Explorer::new(&t, 10_000);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
        let cycles = vec![1, 4];
        let rows: Vec<GridRow> = explorer
            .try_l2_rows(
                SweepEngine::OnePass,
                &BaseMachine::new(),
                &sizes,
                &cycles,
                1,
                &[1],
                |_| {},
            )
            .into_iter()
            .map(|r| r.expect("row completes"))
            .collect();
        let grid = DesignGrid::from_rows(&sizes, &cycles, 1, &rows);
        assert_eq!(grid.total[0], vec![DesignGrid::FAILED, DesignGrid::FAILED]);
        assert!(grid.l2_local[0].is_nan());
        assert!(grid.total[1].iter().all(|&v| v != DesignGrid::FAILED));
        // min_total skips the sentinel row.
        assert_eq!(grid.min_total(), grid.total[1][0]);
    }

    #[test]
    fn try_grid_matches_grid_and_sink_sees_every_row() {
        use std::sync::Mutex;
        let t = trace(40_000);
        let explorer = Explorer::new(&t, 10_000);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
        let cycles = vec![1, 4];
        let partial = explorer.try_l2_grid_with(
            SweepEngine::OnePass,
            &BaseMachine::new(),
            &sizes,
            &cycles,
            1,
        );
        assert!(partial.is_complete());
        let plain = explorer.l2_grid(&BaseMachine::new(), &sizes, &cycles, 1);
        assert_eq!(partial.grid, plain);

        let seen = Mutex::new(Vec::new());
        let todo: Vec<usize> = (0..sizes.len()).collect();
        let rows = explorer.try_l2_rows(
            SweepEngine::OnePass,
            &BaseMachine::new(),
            &sizes,
            &cycles,
            1,
            &todo,
            |row| seen.lock().unwrap().push(row.size_idx),
        );
        assert!(rows.iter().all(|r| r.is_ok()));
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, todo);
    }

    #[test]
    fn engines_agree_row_for_row() {
        let t = trace(40_000);
        let explorer = Explorer::new(&t, 10_000);
        let sizes = size_ladder(ByteSize::kib(32), ByteSize::kib(64));
        let cycles = vec![1, 4];
        let a: Vec<GridRow> = explorer
            .try_l2_rows(
                SweepEngine::Exhaustive,
                &BaseMachine::new(),
                &sizes,
                &cycles,
                1,
                &[0, 1],
                |_| {},
            )
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let b: Vec<GridRow> = explorer
            .try_l2_rows(
                SweepEngine::OnePass,
                &BaseMachine::new(),
                &sizes,
                &cycles,
                1,
                &[0, 1],
                |_| {},
            )
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total, y.total, "engines must price rows identically");
        }
    }
}
