//! Analytical models and design-space exploration for
//! performance-optimal multi-level cache hierarchies.
//!
//! This crate is the reproduction of the *analysis* half of Przybylski,
//! Horowitz & Hennessy (ISCA 1989), built on top of the `mlc-sim`
//! simulator:
//!
//! * [`ExecutionTimeModel`] — Equation 1, the execution-time
//!   decomposition.
//! * [`PowerLawMissModel`] — the miss-ratio-versus-size law (×0.69 per
//!   doubling) and its fitting.
//! * [`SpeedSizeTradeoff`] / [`predicted_isoperf_shift`] — Equation 2 and
//!   the §4 speed–size analysis.
//! * [`BreakEvenInputs`] / [`empirical_break_even_cycles`] — Equation 3
//!   and the §5 set-associativity break-even times.
//! * [`Explorer`] / [`DesignGrid`] — parallel parameter sweeps.
//! * [`constant_performance_lines`] / [`SlopeRegion`] — the Figure 4
//!   iso-performance analysis.
//! * [`Table`] — plain-text/CSV reporting used by the figure harnesses.
//!
//! # Examples
//!
//! Sweep an L2 design space and extract the paper's lines of constant
//! performance:
//!
//! ```no_run
//! use mlc_cache::ByteSize;
//! use mlc_core::{constant_performance_lines, size_ladder, Explorer};
//! use mlc_sim::machine::BaseMachine;
//! use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
//!
//! let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(42)).expect("valid");
//! let trace = gen.generate_records(4_000_000);
//! let explorer = Explorer::new(&trace, 1_000_000);
//! let grid = explorer.l2_grid(
//!     &BaseMachine::new(),
//!     &size_ladder(ByteSize::kib(4), ByteSize::mib(4)),
//!     &(1..=10).collect::<Vec<_>>(),
//!     1,
//! );
//! for line in constant_performance_lines(&grid, &[1.1, 1.2, 1.3]) {
//!     println!("rel {:.1}: {} points", line.relative, line.points.len());
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attribution;
mod breakeven;
mod explore;
mod isoperf;
mod miss_model;
mod model;
mod optimal;
pub mod par;
mod report;
pub mod stack;
mod three_c;
pub mod timing;
mod tradeoff;

pub use attribution::{
    bounds_vs_eq1, bounds_vs_eq1_table, eq1_params, memory_read_cycles, AttributionReport,
    AttributionRow, BoundsCheckRow, Eq1Params,
};
pub use breakeven::{
    empirical_break_even_cycles, inputs_from_sim, BreakEvenInputs, TTL_MUX_OVERHEAD_NS,
};
pub use explore::{size_ladder, DesignGrid, Explorer, GridRow, MissRatioPoint, PartialGrid};
pub use isoperf::{
    constant_performance_lines, constant_performance_lines_abs, mean_line_shift,
    slope_boundary_size, slope_profile, slopes_cycles_per_doubling, IsoPerfLine, IsoPoint,
    SlopeRegion,
};
pub use miss_model::PowerLawMissModel;
pub use model::ExecutionTimeModel;
pub use optimal::{Candidate, DeepCandidate, HierarchyOptimizer, TechnologyModel};
pub use par::{par_map, try_par_map, PointFailure};
pub use report::{fmt_f2, fmt_ratio, Table};
pub use stack::{SetFootprint, SoloMissSweep};
pub use three_c::{classify_misses, MissComponents};
pub use timing::{verify_grids, GridDivergence, SweepEngine};
pub use tradeoff::{predicted_isoperf_shift, SpeedSizeTradeoff};
