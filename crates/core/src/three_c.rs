//! The three-C miss classification (Hill): compulsory, capacity and
//! conflict misses.
//!
//! The paper's reference [6]/[7] is Hill's thesis and "The Case for
//! Direct-Mapped Caches", whose decomposition explains *why* set
//! associativity helps where it does: conflict misses — the only
//! component associativity can remove — are computed as the difference
//! between a real cache's misses and those of a fully associative LRU
//! cache of equal capacity (from one-pass stack-distance analysis);
//! capacity misses are the fully associative misses beyond the
//! compulsory (first-touch) ones.

use mlc_cache::{Cache, CacheConfig};
use mlc_trace::stackdist::lru_stack_distances;
use mlc_trace::TraceRecord;

/// A trace's misses for one cache organisation, split into the three Cs.
///
/// All counts are over *all* reference kinds (the decomposition is about
/// block reuse, not read/write semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissComponents {
    /// References analysed.
    pub references: u64,
    /// First-touch misses: unavoidable at any size or associativity.
    pub compulsory: u64,
    /// Fully-associative-LRU misses beyond compulsory: the cache is too
    /// small for the working set.
    pub capacity: u64,
    /// Real-cache misses beyond the fully associative count: set
    /// conflicts that more associativity could remove. Clamped at zero —
    /// a set-associative cache can occasionally beat fully associative
    /// LRU on pathological patterns.
    pub conflict: u64,
    /// The real cache's total misses (`compulsory + capacity + conflict`
    /// up to the clamp).
    pub total_misses: u64,
}

impl MissComponents {
    /// Total miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        self.total_misses as f64 / self.references as f64
    }

    /// The conflict component as a fraction of all misses (0 if there
    /// are no misses).
    pub fn conflict_fraction(&self) -> f64 {
        if self.total_misses == 0 {
            0.0
        } else {
            self.conflict as f64 / self.total_misses as f64
        }
    }
}

/// Classifies the misses `config` suffers on `records` into the three
/// Cs. Two passes over the trace: one functional cache simulation and
/// one stack-distance analysis at the cache's block size.
///
/// # Panics
///
/// Panics if `records` is empty.
pub fn classify_misses(config: CacheConfig, records: &[TraceRecord]) -> MissComponents {
    assert!(!records.is_empty(), "cannot classify an empty trace");
    let mut cache = Cache::new(config);
    for rec in records {
        cache.access(rec.addr, rec.kind);
    }
    let total_misses = cache.stats().total_misses();

    let geom = config.geometry();
    let hist = lru_stack_distances(records.iter().copied(), geom.block_bytes());
    let fa_misses = hist.misses_at(geom.blocks());
    let compulsory = hist.cold_misses();
    let capacity = fa_misses - compulsory;
    let conflict = total_misses.saturating_sub(fa_misses);
    MissComponents {
        references: records.len() as u64,
        compulsory,
        capacity,
        conflict,
        total_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::ByteSize;

    fn dm_cache(bytes: u64, block: u64) -> CacheConfig {
        CacheConfig::builder()
            .total(ByteSize::new(bytes))
            .block_bytes(block)
            .build()
            .unwrap()
    }

    fn reads(blocks: &[u64]) -> Vec<TraceRecord> {
        blocks.iter().map(|&b| TraceRecord::read(b * 16)).collect()
    }

    #[test]
    fn pure_compulsory() {
        // Distinct blocks only: every miss is a first touch.
        let trace = reads(&[0, 1, 2, 3]);
        let c = classify_misses(dm_cache(256, 16), &trace);
        assert_eq!(c.compulsory, 4);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 0);
        assert_eq!(c.total_misses, 4);
        assert_eq!(c.miss_ratio(), 1.0);
    }

    #[test]
    fn pure_conflict() {
        // Blocks 0 and 16 alias in a 16-set direct-mapped cache but fit
        // comfortably in its 16-block capacity: all repeat misses are
        // conflicts.
        let trace = reads(&[0, 16, 0, 16, 0, 16]);
        let c = classify_misses(dm_cache(256, 16), &trace);
        assert_eq!(c.compulsory, 2);
        assert_eq!(c.capacity, 0);
        assert_eq!(c.conflict, 4);
        assert!((c.conflict_fraction() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn pure_capacity() {
        // A cyclic sweep over 32 blocks through a 16-block fully
        // associative cache: every reuse is a capacity miss.
        let config = CacheConfig::builder()
            .total(ByteSize::new(256))
            .block_bytes(16)
            .ways(16)
            .build()
            .unwrap();
        let blocks: Vec<u64> = (0..32u64).cycle().take(96).collect();
        let c = classify_misses(config, &reads(&blocks));
        assert_eq!(c.compulsory, 32);
        assert_eq!(c.capacity, 64);
        assert_eq!(c.conflict, 0);
    }

    #[test]
    fn associativity_removes_conflict_only() {
        // The same conflicting pattern on 1-way vs 2-way: the 2-way
        // cache eliminates the conflicts; compulsory stays fixed.
        let trace = reads(&[0, 16, 0, 16, 0, 16, 0, 16]);
        let dm = classify_misses(dm_cache(256, 16), &trace);
        let two_way = classify_misses(
            CacheConfig::builder()
                .total(ByteSize::new(256))
                .block_bytes(16)
                .ways(2)
                .build()
                .unwrap(),
            &trace,
        );
        assert!(dm.conflict > 0);
        assert_eq!(two_way.conflict, 0);
        assert_eq!(dm.compulsory, two_way.compulsory);
        assert!(two_way.total_misses < dm.total_misses);
    }

    #[test]
    fn components_sum_to_total() {
        // On an irregular pattern the identity must hold exactly
        // whenever conflict was not clamped.
        let blocks: Vec<u64> = (0..400u64).map(|i| (i * 7) % 53).collect();
        let c = classify_misses(dm_cache(256, 16), &reads(&blocks));
        assert_eq!(c.compulsory + c.capacity + c.conflict, c.total_misses);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty() {
        classify_misses(dm_cache(256, 16), &[]);
    }
}
