//! The speed–size tradeoff (the paper's Equation 2 and §4).
//!
//! Setting the derivative of Equation 1 with respect to the L2 size to
//! zero balances two marginal costs:
//!
//! ```text
//! M_L1 · dn_L2/dS  =  −dM_L2/dS · n_MMread        (Equation 2)
//! ```
//!
//! The upstream cache filters references but not misses, so every unit of
//! L2 cycle time is paid only `M_L1` times per read while every unit of
//! miss ratio still costs a full memory fetch. The `1/M_L1` factor (≈10
//! for the 4 KB base L1) is what pushes second-level caches toward
//! *larger and slower* designs than an equivalent single-level cache.

use crate::miss_model::PowerLawMissModel;

/// The speed–size balance for a second-level cache behind an L1 with
/// global read miss ratio `m_l1`.
///
/// # Examples
///
/// ```
/// use mlc_core::{PowerLawMissModel, SpeedSizeTradeoff};
///
/// let miss = PowerLawMissModel::new(0.04, 512.0 * 1024.0, 0.536);
/// let tradeoff = SpeedSizeTradeoff {
///     m_l1: 0.10,
///     n_mm_read_cycles: 27.0,
///     miss_model: miss,
/// };
/// // How many CPU cycles of extra L2 cycle time a doubling from 512 KB
/// // is worth:
/// let slack = tradeoff.breakeven_cycles_per_doubling(512.0 * 1024.0);
/// assert!(slack > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedSizeTradeoff {
    /// The upstream (L1) global read miss ratio.
    pub m_l1: f64,
    /// Main-memory fetch time in CPU cycles.
    pub n_mm_read_cycles: f64,
    /// The L2 global miss ratio as a function of size.
    pub miss_model: PowerLawMissModel,
}

impl SpeedSizeTradeoff {
    /// Mean cycles per CPU read spent at and below L2, for an L2 of
    /// `size_bytes` with read time `n_l2` cycles (the `M_L1·n_L2 +
    /// M_L2·n_MM` terms of Equation 1).
    pub fn l2_and_memory_cycles_per_read(&self, size_bytes: f64, n_l2: f64) -> f64 {
        self.m_l1 * n_l2 + self.miss_model.miss_at(size_bytes) * self.n_mm_read_cycles
    }

    /// The break-even cycle-time increase for doubling the L2 size at
    /// `size_bytes`: the extra `n_L2` (in CPU cycles) that exactly cancels
    /// the miss-ratio benefit. This is the slope of the paper's lines of
    /// constant performance, in CPU cycles per doubling:
    ///
    /// ```text
    /// Δn_L2 = (M_L2(S) − M_L2(2S)) · n_MM / M_L1
    /// ```
    pub fn breakeven_cycles_per_doubling(&self, size_bytes: f64) -> f64 {
        let dm = self.miss_model.miss_at(size_bytes) - self.miss_model.miss_at(2.0 * size_bytes);
        dm * self.n_mm_read_cycles / self.m_l1
    }

    /// The performance-optimal L2 size under a linear cycle-time cost of
    /// `cycles_per_doubling` extra L2 cycles per size doubling: the size
    /// where the break-even slack falls to the actual cost.
    ///
    /// Returns the optimum over `sizes` (which should be sorted
    /// ascending) by direct evaluation of the per-read cost.
    pub fn optimal_size(&self, sizes: &[f64], n_l2_of_size: impl Fn(f64) -> f64) -> Option<f64> {
        sizes
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let ca = self.l2_and_memory_cycles_per_read(a, n_l2_of_size(a));
                let cb = self.l2_and_memory_cycles_per_read(b, n_l2_of_size(b));
                ca.partial_cmp(&cb).expect("costs are finite")
            })
            .filter(|_| !sizes.is_empty())
    }
}

/// The paper's predicted shift of the lines of constant performance when
/// the L1 grows: each L1 doubling multiplies `M_L1` by
/// `l1_doubling_factor` (paper: ≈0.72), and with `M_L2 ∝ S^-θ` the
/// optimal size — and with it the whole family of constant-performance
/// lines — shifts right by `(1/f)^(1/(1+θ))` per doubling.
///
/// For an 8× L1 increase with the paper's constants this gives ≈2.04,
/// against which they measure 1.74.
///
/// # Examples
///
/// ```
/// use mlc_core::predicted_isoperf_shift;
///
/// let shift = predicted_isoperf_shift(8.0, 0.72, 0.536);
/// assert!((shift - 1.90).abs() < 0.1);
/// ```
pub fn predicted_isoperf_shift(l1_ratio: f64, l1_doubling_factor: f64, theta: f64) -> f64 {
    assert!(l1_ratio > 0.0, "l1_ratio must be positive");
    assert!(
        l1_doubling_factor > 0.0 && l1_doubling_factor < 1.0,
        "l1_doubling_factor must be in (0,1)"
    );
    let doublings = l1_ratio.log2();
    (1.0 / l1_doubling_factor).powf(doublings / (1.0 + theta))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tradeoff() -> SpeedSizeTradeoff {
        SpeedSizeTradeoff {
            m_l1: 0.10,
            n_mm_read_cycles: 27.0,
            miss_model: PowerLawMissModel::new(0.04, 512.0 * 1024.0, 0.536),
        }
    }

    #[test]
    fn l1_filter_scales_breakeven_slack() {
        let base = tradeoff();
        let mut filtered = base;
        filtered.m_l1 = 0.05; // better L1 → each L2 cycle matters less
        let s = 256.0 * 1024.0;
        assert!(filtered.breakeven_cycles_per_doubling(s) > base.breakeven_cycles_per_doubling(s));
        // Exactly inverse in m_l1:
        let ratio =
            filtered.breakeven_cycles_per_doubling(s) / base.breakeven_cycles_per_doubling(s);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slower_memory_scales_breakeven_linearly() {
        let base = tradeoff();
        let mut slow = base;
        slow.n_mm_read_cycles = 54.0;
        let s = 256.0 * 1024.0;
        let ratio = slow.breakeven_cycles_per_doubling(s) / base.breakeven_cycles_per_doubling(s);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakeven_shrinks_with_size() {
        let t = tradeoff();
        let small = t.breakeven_cycles_per_doubling(16.0 * 1024.0);
        let large = t.breakeven_cycles_per_doubling(2.0 * 1024.0 * 1024.0);
        assert!(small > large, "small {small} large {large}");
    }

    #[test]
    fn optimal_size_balances_speed_and_miss() {
        let t = tradeoff();
        let sizes: Vec<f64> = (0..11).map(|i| 4096.0 * 2f64.powi(i)).collect();
        // Cycle time grows 2 CPU cycles per doubling above 4 KB.
        let n_l2 = |s: f64| 3.0 + 2.0 * (s / 4096.0).log2();
        let opt = t.optimal_size(&sizes, n_l2).unwrap();
        // Optimum is interior: not the smallest or largest size.
        assert!(opt > sizes[0] && opt < sizes[10], "opt {opt}");
        // A better L1 (smaller m_l1) moves the optimum to a larger size.
        let mut filtered = t;
        filtered.m_l1 = 0.02;
        let opt2 = filtered.optimal_size(&sizes, n_l2).unwrap();
        assert!(opt2 >= opt, "opt2 {opt2} < opt {opt}");
    }

    #[test]
    fn empty_sizes_give_none() {
        assert!(tradeoff().optimal_size(&[], |_| 3.0).is_none());
    }

    #[test]
    fn paper_shift_prediction() {
        // Paper: 8× L1 increase predicts ×2.04 shift (we reproduce the
        // formula's ≈1.9–2.05 range depending on rounding of the inputs).
        let shift = predicted_isoperf_shift(8.0, 0.72, 0.536);
        assert!((1.8..=2.1).contains(&shift), "shift {shift}");
        // 16× L1 should double the optimal L2 size per the paper's claim
        // ("the L1 cache would have to increase sixteen fold for the
        // optimal L2 size to double").
        let shift16 = predicted_isoperf_shift(16.0, 0.72, 0.536);
        assert!((1.9..=2.6).contains(&shift16), "shift16 {shift16}");
        // No L1 change → no shift.
        assert!((predicted_isoperf_shift(1.0, 0.72, 0.536) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "l1_doubling_factor")]
    fn shift_rejects_bad_factor() {
        predicted_isoperf_shift(8.0, 1.5, 0.536);
    }
}
