//! One-pass solo miss counting for every power-of-two cache size.
//!
//! The paper's Figure 3 needs the L2's *solo* read miss ratio at every
//! swept size. Simulating each size separately costs one full trace pass
//! per size; Mattson's classic observation makes one pass suffice: under
//! LRU (and trivially under direct mapping), a set's contents are exactly
//! its `W` most-recently-referenced blocks, so set residency at *every*
//! set count can be tracked simultaneously from the same reference
//! stream. [`SoloMissSweep`] keeps one truncated per-set LRU stack per
//! swept size — `O(sizes × ways)` work per reference instead of
//! `O(sizes)` full simulations — and reproduces
//! [`mlc_sim::solo::solo_stats`] exactly (see [`SoloMissSweep::supports`]
//! for the eligibility conditions, and the workspace property tests for
//! the proof by comparison).
//!
//! This is the same family of machinery as
//! `mlc_trace::stackdist::associativity_histogram` (fixed set count, all
//! associativities); here the associativity is fixed and the *set count*
//! sweeps, which is what a size ladder at constant block size needs.

use mlc_cache::{AllocPolicy, ByteSize, CacheConfig, Prefetch, Replacement};
use mlc_obs::Metrics;
use mlc_trace::TraceRecord;

use crate::par::try_par_map;

/// Sentinel for an empty way slot: no real block index can be
/// `u64::MAX` (it would require a byte address beyond the address
/// space).
const EMPTY: u64 = u64::MAX;

/// Per-size residency state: `sets × ways` slots, each set's slots
/// ordered most-recently-used first.
#[derive(Debug, Clone)]
struct SizeState {
    size: ByteSize,
    /// `sets - 1`; set counts are powers of two so indexing is a mask.
    set_mask: u64,
    slots: Vec<u64>,
    read_misses: u64,
}

/// A one-pass solo miss counter over a ladder of cache sizes.
///
/// All sizes share one block size and associativity; each reference
/// updates every size's residency state in one sweep. Read misses
/// (instruction fetches + loads, the numerators of the paper's solo
/// miss ratios) are counted per size; writes update recency and
/// allocate, exactly as a write-allocate cache would, but are not
/// counted.
///
/// # Examples
///
/// ```
/// use mlc_cache::ByteSize;
/// use mlc_core::stack::SoloMissSweep;
/// use mlc_trace::TraceRecord;
///
/// let sizes = [ByteSize::kib(4), ByteSize::kib(8)];
/// let mut sweep = SoloMissSweep::new(32, 1, &sizes);
/// for i in 0..200u64 {
///     sweep.access(TraceRecord::read((i % 160) * 32));
/// }
/// // 160 blocks of 32 B: 5 KB — thrashes 4 KB, fits in 8 KB.
/// assert!(sweep.read_misses(0) > sweep.read_misses(1));
/// assert_eq!(sweep.read_references(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct SoloMissSweep {
    block_bytes: u64,
    ways: u64,
    states: Vec<SizeState>,
    read_refs: u64,
}

impl SoloMissSweep {
    /// Creates a sweep over `sizes` at the given block size and
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty, `block_bytes` is not a positive power
    /// of two, `ways` is zero, or any size does not yield a positive
    /// power-of-two set count (`size / (block_bytes × ways)`).
    pub fn new(block_bytes: u64, ways: u32, sizes: &[ByteSize]) -> Self {
        assert!(!sizes.is_empty(), "sweep needs at least one size");
        assert!(
            block_bytes > 0 && block_bytes.is_power_of_two(),
            "block size must be a positive power of two, got {block_bytes}"
        );
        assert!(ways > 0, "associativity must be positive");
        let ways = u64::from(ways);
        let states = sizes
            .iter()
            .map(|&size| {
                let blocks = size.get() / block_bytes;
                let sets = blocks / ways;
                assert!(
                    sets > 0 && sets.is_power_of_two() && sets * ways * block_bytes == size.get(),
                    "size {size} must be a power-of-two multiple of {ways} way(s) \
                     of {block_bytes}-byte blocks"
                );
                SizeState {
                    size,
                    set_mask: sets - 1,
                    slots: vec![EMPTY; (sets * ways) as usize],
                    read_misses: 0,
                }
            })
            .collect();
        SoloMissSweep {
            block_bytes,
            ways,
            states,
            read_refs: 0,
        }
    }

    /// Whether this engine reproduces [`mlc_sim::solo::solo_stats`]
    /// exactly for a cache of configuration `config`.
    ///
    /// The requirements are the conditions under which "set contents =
    /// the `W` most-recently-referenced blocks of the set" holds:
    /// LRU replacement (any policy is fine when direct-mapped — there is
    /// nothing to choose), write-allocate (so stores insert like loads),
    /// single-block fetches, no sub-blocking, no prefetch, and no victim
    /// buffer. Write-back versus write-through is immaterial: residency
    /// does not depend on dirtiness.
    pub fn supports(config: &CacheConfig) -> bool {
        (config.geometry().ways() == 1 || config.replacement() == Replacement::Lru)
            && config.alloc_policy() == AllocPolicy::WriteAllocate
            && config.prefetch() == Prefetch::None
            && config.fetch_blocks() == 1
            && config.sub_blocks() == 1
            && config.victim_entries() == 0
    }

    /// Whether `size` yields a valid (positive power-of-two) set count at
    /// this block size and associativity — the geometric precondition of
    /// [`SoloMissSweep::new`], as a non-panicking test for callers
    /// deciding between the one-pass and per-size paths.
    pub fn admits_size(block_bytes: u64, ways: u32, size: ByteSize) -> bool {
        let span = block_bytes.saturating_mul(u64::from(ways));
        span > 0
            && block_bytes.is_power_of_two()
            && size.get().is_multiple_of(span)
            && (size.get() / span).is_power_of_two()
    }

    /// Feeds one reference through every size's residency state.
    pub fn access(&mut self, rec: TraceRecord) {
        let block = rec.addr.block_index(self.block_bytes);
        let is_read = !rec.kind.is_write();
        if is_read {
            self.read_refs += 1;
        }
        let ways = self.ways as usize;
        for state in &mut self.states {
            let set = (block & state.set_mask) as usize;
            let slots = &mut state.slots[set * ways..(set + 1) * ways];
            // Find the block's LRU position (or miss), then move it to
            // the front — the W-slot truncated stack update.
            match slots.iter().position(|&b| b == block) {
                Some(pos) => slots[..=pos].rotate_right(1),
                None => {
                    if is_read {
                        state.read_misses += 1;
                    }
                    slots.rotate_right(1);
                    slots[0] = block;
                }
            }
        }
    }

    /// Zeroes the miss and reference counters, keeping all residency
    /// state — the warm-up boundary, mirroring
    /// [`mlc_sim::solo::solo_stats`]'s cold-start removal.
    pub fn reset_counters(&mut self) {
        self.read_refs = 0;
        for state in &mut self.states {
            state.read_misses = 0;
        }
    }

    /// The swept sizes, in construction order.
    pub fn sizes(&self) -> Vec<ByteSize> {
        self.states.iter().map(|s| s.size).collect()
    }

    /// Read references seen since the last counter reset (shared by all
    /// sizes — every size sees the same stream).
    pub fn read_references(&self) -> u64 {
        self.read_refs
    }

    /// Read misses of the `idx`-th size since the last counter reset.
    pub fn read_misses(&self, idx: usize) -> u64 {
        self.states[idx].read_misses
    }

    /// The `idx`-th size's solo read miss ratio, or `None` if no read
    /// has been counted.
    pub fn read_miss_ratio(&self, idx: usize) -> Option<f64> {
        if self.read_refs == 0 {
            None
        } else {
            Some(self.states[idx].read_misses as f64 / self.read_refs as f64)
        }
    }

    /// Convenience one-pass run: warms on the first `warmup` records,
    /// counts the rest, and returns the sweep for querying.
    pub fn run(
        block_bytes: u64,
        ways: u32,
        sizes: &[ByteSize],
        records: &[TraceRecord],
        warmup: usize,
    ) -> Self {
        Self::run_observed(
            block_bytes,
            ways,
            sizes,
            records,
            warmup,
            &Metrics::disabled(),
        )
    }

    /// [`SoloMissSweep::run`] with phase timing and reference counts fed
    /// into `metrics`: phases `solo.warmup` / `solo.measure`, counter
    /// `solo.read_refs`. Identical counting behaviour.
    pub fn run_observed(
        block_bytes: u64,
        ways: u32,
        sizes: &[ByteSize],
        records: &[TraceRecord],
        warmup: usize,
        metrics: &Metrics,
    ) -> Self {
        let mut sweep = SoloMissSweep::new(block_bytes, ways, sizes);
        let warm = warmup.min(records.len());
        let timer = metrics.time_phase("solo.warmup");
        for rec in &records[..warm] {
            sweep.access(*rec);
        }
        timer.stop();
        sweep.reset_counters();
        let timer = metrics.time_phase("solo.measure");
        for rec in &records[warm..] {
            sweep.access(*rec);
        }
        timer.stop();
        metrics.add("solo.read_refs", sweep.read_references());
        sweep
    }

    /// The largest shard count [`SoloMissSweep::run_sharded_with`]
    /// accepts for this geometry: shards partition by low block-index
    /// bits, so every shard must own *whole* sets at every swept size —
    /// the shard count may not exceed the smallest set count.
    pub fn max_shards(block_bytes: u64, ways: u32, sizes: &[ByteSize]) -> u64 {
        sizes
            .iter()
            .map(|&s| s.get() / (block_bytes * u64::from(ways)))
            .min()
            .unwrap_or(1)
            .max(1)
    }

    /// [`SoloMissSweep::run`] sharded by cache set index across worker
    /// threads, with a shard count picked from the machine's available
    /// parallelism. Bit-identical to the serial run.
    pub fn run_sharded(
        block_bytes: u64,
        ways: u32,
        sizes: &[ByteSize],
        records: &[TraceRecord],
        warmup: usize,
    ) -> Self {
        Self::run_sharded_observed(
            block_bytes,
            ways,
            sizes,
            records,
            warmup,
            &Metrics::disabled(),
        )
    }

    /// [`SoloMissSweep::run_sharded`] with observability: phases
    /// `solo.shard.partition` / `solo.measure`, counters `solo.shards`
    /// and `solo.read_refs`. Falls back to [`SoloMissSweep::run_observed`]
    /// (and its phase names) when only one shard is worthwhile.
    pub fn run_sharded_observed(
        block_bytes: u64,
        ways: u32,
        sizes: &[ByteSize],
        records: &[TraceRecord],
        warmup: usize,
        metrics: &Metrics,
    ) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|v| v.get() as u64)
            .unwrap_or(1);
        let shards = threads
            .next_power_of_two()
            .min(Self::max_shards(block_bytes, ways, sizes));
        if shards <= 1 || records.len() < 2 * shards as usize {
            return Self::run_observed(block_bytes, ways, sizes, records, warmup, metrics);
        }
        Self::run_sharded_with(block_bytes, ways, sizes, records, warmup, shards, metrics)
    }

    /// [`SoloMissSweep::run`] split into `shards` independent stack
    /// passes by cache set index, merged into a result bit-identical to
    /// the serial run — counters *and* residency state.
    ///
    /// Sets are selected by low block-index bits. Every swept size's
    /// set mask extends the `shards − 1` mask (set counts are powers of
    /// two ≥ `shards`), so the shard of a block is a *prefix* of its set
    /// index at every size: two blocks in different shards can never
    /// share a set, which makes the per-shard truncated-stack passes
    /// exactly the serial pass restricted to disjoint set families. The
    /// merge then sums miss/reference counters and takes each set's
    /// residency slots from the shard that owns it.
    ///
    /// # Panics
    ///
    /// Panics on the geometry errors of [`SoloMissSweep::new`], if
    /// `shards` is zero or not a power of two, or if `shards` exceeds
    /// [`SoloMissSweep::max_shards`].
    pub fn run_sharded_with(
        block_bytes: u64,
        ways: u32,
        sizes: &[ByteSize],
        records: &[TraceRecord],
        warmup: usize,
        shards: u64,
        metrics: &Metrics,
    ) -> Self {
        assert!(
            shards > 0 && shards.is_power_of_two(),
            "shard count must be a positive power of two, got {shards}"
        );
        let mut merged = SoloMissSweep::new(block_bytes, ways, sizes);
        assert!(
            shards <= Self::max_shards(block_bytes, ways, sizes),
            "{shards} shards exceed the smallest swept set count"
        );
        let shard_mask = shards - 1;
        let warm = warmup.min(records.len());

        // Partition the stream by owning shard, preserving per-shard
        // order; the global warm-up boundary becomes a per-shard record
        // count.
        let timer = metrics.time_phase("solo.shard.partition");
        let mut buckets: Vec<Vec<TraceRecord>> = vec![Vec::new(); shards as usize];
        let mut warm_counts = vec![0usize; shards as usize];
        for (i, rec) in records.iter().enumerate() {
            let shard = (rec.addr.block_index(block_bytes) & shard_mask) as usize;
            if i < warm {
                warm_counts[shard] += 1;
            }
            buckets[shard].push(*rec);
        }
        timer.stop();

        let timer = metrics.time_phase("solo.measure");
        let inputs: Vec<(Vec<TraceRecord>, usize)> = buckets.into_iter().zip(warm_counts).collect();
        let shard_sweeps = try_par_map(inputs, |(bucket, shard_warm)| {
            SoloMissSweep::run(block_bytes, ways, sizes, &bucket, shard_warm)
        });
        let ways = ways as usize;
        for (shard, sweep) in shard_sweeps.into_iter().enumerate() {
            let sweep = sweep.unwrap_or_else(|e| panic!("solo shard failed: {e}"));
            merged.read_refs += sweep.read_refs;
            for (into, from) in merged.states.iter_mut().zip(&sweep.states) {
                into.read_misses += from.read_misses;
                // Each set belongs to exactly one shard (its low set
                // bits), and the owning shard saw that set's full
                // reference stream in order — copy its slots verbatim.
                for set in 0..=(into.set_mask as usize) {
                    if set as u64 & shard_mask == shard as u64 {
                        let range = set * ways..(set + 1) * ways;
                        into.slots[range.clone()].copy_from_slice(&from.slots[range]);
                    }
                }
            }
        }
        timer.stop();
        metrics.add("solo.shards", shards);
        metrics.add("solo.read_refs", merged.read_references());
        merged
    }
}

/// Per-set distinct-block footprint of a reference stream, saturating
/// just past the associativity.
///
/// This is the degenerate end of the truncated-stack machinery: a set
/// whose *entire* footprint fits within its `W` ways can never evict
/// under LRU, so every block mapping there is trivially persistent —
/// the seed the `mlc-wcet` persistence analysis uses before running its
/// fixpoint. Only "fits / does not fit" is needed, so distinct-block
/// counts saturate at `ways + 1`.
///
/// The boundary is inclusive: a set holding *exactly* `ways` distinct
/// blocks still fits (LRU keeps the `W` most recently used blocks, and
/// there are only `W` of them). Equivalently, a block re-referenced at
/// reuse distance exactly `ways − 1` hits; distance `ways` is the first
/// miss — the same boundary [`SoloMissSweep::access`] implements, pinned
/// by the regression tests below.
///
/// # Examples
///
/// ```
/// use mlc_core::stack::SetFootprint;
///
/// let mut fp = SetFootprint::new(1, 2);
/// fp.touch(0);
/// fp.touch(8); // two distinct blocks in a 2-way set: still fits
/// assert!(fp.fits(0));
/// fp.touch(16); // a third: no longer fits
/// assert!(!fp.fits(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetFootprint {
    set_mask: u64,
    ways: usize,
    seen: Vec<Vec<u64>>,
}

impl SetFootprint {
    /// Creates a footprint counter for `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `ways` is zero.
    pub fn new(sets: u64, ways: u32) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a positive power of two, got {sets}"
        );
        assert!(ways > 0, "associativity must be positive");
        SetFootprint {
            set_mask: sets - 1,
            ways: ways as usize,
            seen: vec![Vec::new(); sets as usize],
        }
    }

    /// Records one reference to `block` (a block index, not an address).
    pub fn touch(&mut self, block: u64) {
        let set = &mut self.seen[(block & self.set_mask) as usize];
        // Saturated: once past ways the exact count no longer matters.
        if set.len() > self.ways || set.contains(&block) {
            return;
        }
        set.push(block);
    }

    /// Distinct blocks seen in `block`'s set, saturating at `ways + 1`.
    pub fn distinct(&self, block: u64) -> usize {
        self.seen[(block & self.set_mask) as usize].len()
    }

    /// Whether `block`'s set footprint fits within the associativity —
    /// i.e. no reference mapping there can ever miss after its first.
    pub fn fits(&self, block: u64) -> bool {
        self.distinct(block) <= self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_sim::solo;
    use mlc_sim::LevelCacheConfig;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn preset_trace(n: usize, seed: u64) -> Vec<TraceRecord> {
        MultiProgramGenerator::new(Preset::Mips2.config(seed))
            .expect("valid preset")
            .generate_records(n)
    }

    fn ladder(lo_kib: u64, hi_kib: u64) -> Vec<ByteSize> {
        let mut out = Vec::new();
        let mut s = lo_kib;
        while s <= hi_kib {
            out.push(ByteSize::kib(s));
            s <<= 1;
        }
        out
    }

    fn solo_misses(
        size: ByteSize,
        block: u64,
        ways: u32,
        trace: &[TraceRecord],
        warmup: usize,
    ) -> u64 {
        let config = CacheConfig::builder()
            .total(size)
            .block_bytes(block)
            .ways(ways)
            .build()
            .unwrap();
        solo::solo_stats(
            LevelCacheConfig::Unified(config),
            trace.iter().copied(),
            warmup,
        )
        .read_misses()
    }

    #[test]
    fn matches_direct_mapped_solo_sim() {
        let trace = preset_trace(60_000, 7);
        let sizes = ladder(4, 256);
        let sweep = SoloMissSweep::run(32, 1, &sizes, &trace, 15_000);
        for (i, &size) in sizes.iter().enumerate() {
            assert_eq!(
                sweep.read_misses(i),
                solo_misses(size, 32, 1, &trace, 15_000),
                "direct-mapped at {size}"
            );
        }
    }

    #[test]
    fn matches_set_associative_solo_sim() {
        let trace = preset_trace(50_000, 11);
        for ways in [2u32, 4, 8] {
            let sizes = ladder(8, 64);
            let sweep = SoloMissSweep::run(32, ways, &sizes, &trace, 10_000);
            for (i, &size) in sizes.iter().enumerate() {
                assert_eq!(
                    sweep.read_misses(i),
                    solo_misses(size, 32, ways, &trace, 10_000),
                    "{ways}-way at {size}"
                );
            }
        }
    }

    #[test]
    fn miss_counts_fall_with_size() {
        let trace = preset_trace(40_000, 13);
        let sizes = ladder(4, 512);
        let sweep = SoloMissSweep::run(32, 1, &sizes, &trace, 10_000);
        // Not strictly monotone for direct-mapped (conflict luck), but
        // the extremes must order correctly on a real workload.
        assert!(sweep.read_misses(0) > sweep.read_misses(sizes.len() - 1));
        let r0 = sweep.read_miss_ratio(0).unwrap();
        assert!(r0 > 0.0 && r0 <= 1.0);
    }

    #[test]
    fn writes_allocate_but_are_not_counted() {
        let sizes = [ByteSize::kib(4)];
        let mut sweep = SoloMissSweep::new(16, 1, &sizes);
        sweep.access(TraceRecord::write(0x40));
        assert_eq!(sweep.read_references(), 0);
        assert_eq!(sweep.read_misses(0), 0);
        // The store allocated: the subsequent read hits.
        sweep.access(TraceRecord::read(0x40));
        assert_eq!(sweep.read_references(), 1);
        assert_eq!(sweep.read_misses(0), 0);
    }

    #[test]
    fn supports_gates_on_policies() {
        let base = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .build()
            .unwrap();
        assert!(SoloMissSweep::supports(&base));
        let fifo_dm = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        assert!(
            SoloMissSweep::supports(&fifo_dm),
            "replacement is vacuous when direct-mapped"
        );
        let fifo_assoc = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .ways(4)
            .replacement(Replacement::Fifo)
            .build()
            .unwrap();
        assert!(!SoloMissSweep::supports(&fifo_assoc));
        let victim = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .victim_entries(2)
            .build()
            .unwrap();
        assert!(!SoloMissSweep::supports(&victim));
        let no_alloc = CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .alloc_policy(AllocPolicy::NoWriteAllocate)
            .build()
            .unwrap();
        assert!(!SoloMissSweep::supports(&no_alloc));
    }

    #[test]
    #[should_panic(expected = "power-of-two multiple")]
    fn rejects_non_power_of_two_sets() {
        // 48 KB / (32 B × 1 way) = 1536 sets: not a power of two.
        SoloMissSweep::new(32, 1, &[ByteSize::new(48 * 1024)]);
    }

    #[test]
    fn reuse_at_exactly_associativity_depth_is_the_boundary() {
        // Pinned regression for the truncated-stack off-by-one audit: a
        // block re-referenced after exactly `ways − 1` distinct
        // intervening conflicts must HIT (it sits in the deepest slot);
        // after `ways` distinct conflicts it must MISS. Both sides of
        // the boundary, at every supported associativity.
        for ways in [1u32, 2, 4, 8] {
            let block = 64u64; // one set: size = ways blocks
            let size = ByteSize::new(u64::from(ways) * block);
            let conflict = |i: u64| TraceRecord::read((i + 1) * block * 1024);

            // Hit side: ways − 1 intervening distinct blocks.
            let mut sweep = SoloMissSweep::new(block, ways, &[size]);
            sweep.access(TraceRecord::read(0));
            for i in 0..u64::from(ways) - 1 {
                sweep.access(conflict(i));
            }
            let misses_before = sweep.read_misses(0);
            sweep.access(TraceRecord::read(0));
            assert_eq!(
                sweep.read_misses(0),
                misses_before,
                "{ways}-way: reuse distance {} must hit",
                ways - 1
            );

            // Miss side: ways intervening distinct blocks.
            let mut sweep = SoloMissSweep::new(block, ways, &[size]);
            sweep.access(TraceRecord::read(0));
            for i in 0..u64::from(ways) {
                sweep.access(conflict(i));
            }
            let misses_before = sweep.read_misses(0);
            sweep.access(TraceRecord::read(0));
            assert_eq!(
                sweep.read_misses(0),
                misses_before + 1,
                "{ways}-way: reuse distance {ways} must miss"
            );
        }
    }

    #[test]
    fn set_footprint_boundary_is_inclusive_at_ways() {
        // The persistence seed must treat a set holding exactly `ways`
        // distinct blocks as fitting (nothing can ever be evicted), and
        // one more block as not fitting.
        for ways in [1u32, 2, 4] {
            let mut fp = SetFootprint::new(1, ways);
            for b in 0..u64::from(ways) {
                fp.touch(b * 16);
                fp.touch(b * 16); // re-touches do not inflate the count
            }
            assert!(fp.fits(0), "{ways}-way: footprint == ways must fit");
            assert_eq!(fp.distinct(0), ways as usize);
            fp.touch(u64::from(ways) * 16);
            assert!(
                !fp.fits(0),
                "{ways}-way: footprint == ways + 1 must not fit"
            );
        }
    }

    #[test]
    fn set_footprint_routes_blocks_to_sets() {
        let mut fp = SetFootprint::new(4, 1);
        fp.touch(0);
        fp.touch(1);
        fp.touch(2);
        // Distinct sets: each still fits.
        assert!(fp.fits(0) && fp.fits(1) && fp.fits(2));
        // 4 maps onto 0's set and overflows the single way.
        fp.touch(4);
        assert!(!fp.fits(0));
        assert!(fp.fits(1));
    }

    #[test]
    fn sharded_is_bit_identical_to_serial() {
        // Satellite property: sharded vs serial SoloMissSweep across
        // several machine shapes — identical miss counts, reference
        // counts, and residency state at every shard count the geometry
        // admits.
        let trace = preset_trace(40_000, 23);
        let shapes: [(u64, u32, u64, u64); 4] = [
            (32, 1, 4, 256),  // direct-mapped, wide ladder
            (32, 4, 8, 64),   // 4-way
            (16, 2, 4, 32),   // small blocks, 2-way
            (64, 8, 16, 128), // big blocks, highly associative
        ];
        for (block, ways, lo_kib, hi_kib) in shapes {
            let sizes = ladder(lo_kib, hi_kib);
            let serial = SoloMissSweep::run(block, ways, &sizes, &trace, 10_000);
            let max = SoloMissSweep::max_shards(block, ways, &sizes);
            let mut shards = 2u64;
            while shards <= max.min(8) {
                let sharded = SoloMissSweep::run_sharded_with(
                    block,
                    ways,
                    &sizes,
                    &trace,
                    10_000,
                    shards,
                    &Metrics::disabled(),
                );
                assert_eq!(
                    sharded.read_references(),
                    serial.read_references(),
                    "{block}B/{ways}-way, {shards} shards"
                );
                for (i, &size) in sizes.iter().enumerate() {
                    assert_eq!(
                        sharded.read_misses(i),
                        serial.read_misses(i),
                        "{block}B/{ways}-way at {size}, {shards} shards"
                    );
                }
                for (a, b) in sharded.states.iter().zip(&serial.states) {
                    assert_eq!(a.slots, b.slots, "{block}B/{ways}-way residency");
                }
                shards <<= 1;
            }
        }
    }

    #[test]
    fn sharded_auto_picks_a_valid_shard_count() {
        let trace = preset_trace(20_000, 29);
        let sizes = ladder(4, 64);
        let serial = SoloMissSweep::run(32, 1, &sizes, &trace, 5_000);
        let sharded = SoloMissSweep::run_sharded(32, 1, &sizes, &trace, 5_000);
        for i in 0..sizes.len() {
            assert_eq!(sharded.read_misses(i), serial.read_misses(i));
        }
        assert_eq!(sharded.read_references(), serial.read_references());
    }

    #[test]
    fn sharded_merge_preserves_continued_use() {
        // The merged residency state must behave exactly like the
        // serial sweep's if the caller keeps feeding references.
        let trace = preset_trace(15_000, 31);
        let sizes = ladder(8, 32);
        let mut serial = SoloMissSweep::run(32, 2, &sizes, &trace, 0);
        let mut sharded =
            SoloMissSweep::run_sharded_with(32, 2, &sizes, &trace, 0, 4, &Metrics::disabled());
        for rec in preset_trace(5_000, 37) {
            serial.access(rec);
            sharded.access(rec);
        }
        for i in 0..sizes.len() {
            assert_eq!(sharded.read_misses(i), serial.read_misses(i));
        }
    }

    #[test]
    #[should_panic(expected = "exceed the smallest swept set count")]
    fn sharded_rejects_too_many_shards() {
        // 4 KiB / (32 B × 8 ways) = 16 sets: 32 shards cannot own whole
        // sets.
        let trace = preset_trace(1_000, 41);
        SoloMissSweep::run_sharded_with(
            32,
            8,
            &[ByteSize::kib(4)],
            &trace,
            0,
            32,
            &Metrics::disabled(),
        );
    }

    #[test]
    fn warmup_matches_solo_boundary_semantics() {
        let trace = preset_trace(20_000, 17);
        let sizes = [ByteSize::kib(16)];
        for warmup in [0usize, 1, 5_000, 25_000] {
            let sweep = SoloMissSweep::run(32, 1, &sizes, &trace, warmup);
            assert_eq!(
                sweep.read_misses(0),
                solo_misses(sizes[0], 32, 1, &trace, warmup),
                "warmup {warmup}"
            );
        }
    }
}
