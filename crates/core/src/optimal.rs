//! Optimal-hierarchy search: "the goal is to find the multi-level
//! hierarchy that maximizes the overall performance while satisfying all
//! the implementation constraints" (paper §1).
//!
//! The search couples the simulator with a *technology rule* — a
//! function from cache organisation to achievable cycle time — because
//! the paper's central point is that speed and size trade off through
//! implementation technology, not in the abstract. A
//! [`TechnologyModel`] captures the rule; [`HierarchyOptimizer`]
//! exhaustively evaluates candidate two-level designs over a trace and
//! reports the best, along with the whole ranked frontier.

use mlc_cache::ByteSize;
use mlc_sim::machine::BaseMachine;
use mlc_sim::SimResult;
use mlc_trace::TraceRecord;

use crate::explore::Explorer;
use crate::par::{try_par_map, PointFailure};

/// A technology rule mapping cache organisation to cycle time.
///
/// The paper's §5 discussion motivates the default numbers: SRAM access
/// time grows with capacity, and each doubling of associativity costs a
/// multiplexer delay (≈11 ns for Advanced-Schottky TTL).
///
/// # Examples
///
/// ```
/// use mlc_cache::ByteSize;
/// use mlc_core::TechnologyModel;
///
/// let tech = TechnologyModel::default();
/// let dm_512k = tech.l2_cycle_time(ByteSize::kib(512), 1);
/// let w8_512k = tech.l2_cycle_time(ByteSize::kib(512), 8);
/// assert!(w8_512k > dm_512k); // associativity costs mux delay
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyModel {
    /// CPU cycle time in nanoseconds.
    pub cpu_cycle_ns: f64,
    /// Access time of the smallest (4 KB) direct-mapped cache, ns.
    pub base_access_ns: f64,
    /// Extra access time per size doubling, ns.
    pub ns_per_doubling: f64,
    /// Extra access time per associativity doubling, ns (the paper's TTL
    /// multiplexor figure).
    pub ns_per_way_doubling: f64,
}

impl Default for TechnologyModel {
    fn default() -> Self {
        TechnologyModel {
            cpu_cycle_ns: 10.0,
            base_access_ns: 25.0,
            ns_per_doubling: 4.0,
            ns_per_way_doubling: crate::breakeven::TTL_MUX_OVERHEAD_NS,
        }
    }
}

impl TechnologyModel {
    /// Achievable L2 cycle time for the given organisation, in whole CPU
    /// cycles (rounded up, minimum 1).
    pub fn l2_cycle_time(&self, size: ByteSize, ways: u32) -> u64 {
        let doublings = (size.get() as f64 / 4096.0).log2().max(0.0);
        let way_doublings = f64::from(ways).log2();
        let ns = self.base_access_ns
            + self.ns_per_doubling * doublings
            + self.ns_per_way_doubling * way_doublings;
        ((ns / self.cpu_cycle_ns).ceil() as u64).max(1)
    }
}

/// One evaluated candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// L2 total size.
    pub l2_size: ByteSize,
    /// L2 associativity.
    pub l2_ways: u32,
    /// The cycle time the technology rule assigns it.
    pub l2_cycles: u64,
    /// The simulated result on the evaluation trace.
    pub result: SimResult,
}

impl Candidate {
    /// Total execution cycles — the ranking key.
    pub fn total_cycles(&self) -> u64 {
        self.result.total_cycles
    }
}

/// Exhaustive two-level design search under a technology rule.
///
/// # Examples
///
/// ```no_run
/// use mlc_cache::ByteSize;
/// use mlc_core::{size_ladder, HierarchyOptimizer, TechnologyModel};
/// use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
///
/// let mut gen = MultiProgramGenerator::new(Preset::Vms1.config(1)).expect("valid");
/// let trace = gen.generate_records(2_000_000);
/// let optimizer = HierarchyOptimizer::new(&trace, 500_000, TechnologyModel::default());
/// let ranked = optimizer.search(
///     &size_ladder(ByteSize::kib(64), ByteSize::mib(4)),
///     &[1, 2, 4, 8],
/// );
/// println!("best: {} {}-way", ranked[0].l2_size, ranked[0].l2_ways);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HierarchyOptimizer<'t> {
    trace: &'t [TraceRecord],
    warmup: usize,
    tech: TechnologyModel,
}

impl<'t> HierarchyOptimizer<'t> {
    /// Creates an optimizer over an evaluation trace.
    pub fn new(trace: &'t [TraceRecord], warmup: usize, tech: TechnologyModel) -> Self {
        HierarchyOptimizer {
            trace,
            warmup,
            tech,
        }
    }

    /// The technology rule in force.
    pub fn technology(&self) -> TechnologyModel {
        self.tech
    }

    /// Evaluates every (size × ways) candidate, assigning each the cycle
    /// time the technology rule dictates, and returns them ranked fastest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` or `ways` is empty, or any combination is not a
    /// realisable cache organisation.
    pub fn search(&self, sizes: &[ByteSize], ways: &[u32]) -> Vec<Candidate> {
        let (candidates, failures) = self.try_search(sizes, ways);
        if let Some(failure) = failures.first() {
            panic!("candidate failed: {failure}");
        }
        candidates
    }

    /// [`HierarchyOptimizer::search`] with per-candidate panic
    /// isolation: returns the surviving candidates ranked fastest first
    /// plus one [`PointFailure`] per candidate that panicked, indexed by
    /// position in the row-major (size × ways) enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` or `ways` is empty.
    pub fn try_search(
        &self,
        sizes: &[ByteSize],
        ways: &[u32],
    ) -> (Vec<Candidate>, Vec<PointFailure>) {
        assert!(
            !sizes.is_empty() && !ways.is_empty(),
            "search space must be non-empty"
        );
        let explorer = Explorer::new(self.trace, self.warmup);
        let points: Vec<(ByteSize, u32)> = sizes
            .iter()
            .flat_map(|&s| ways.iter().map(move |&w| (s, w)))
            .collect();
        let tech = self.tech;
        let results = try_par_map(points, |(size, w)| {
            let cycles = tech.l2_cycle_time(size, w);
            let mut machine = BaseMachine::new();
            machine
                .cpu_cycle_ns(tech.cpu_cycle_ns)
                .l2_total(size)
                .l2_ways(w)
                .l2_cycles(cycles);
            let result = explorer.run(&machine);
            Candidate {
                l2_size: size,
                l2_ways: w,
                l2_cycles: cycles,
                result,
            }
        });
        let mut candidates = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(c) => candidates.push(c),
                Err(f) => failures.push(f),
            }
        }
        candidates.sort_by_key(Candidate::total_cycles);
        (candidates, failures)
    }
}

/// One evaluated candidate of the deep (three-level) search.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepCandidate {
    /// The two-level part of the design.
    pub base: Candidate,
    /// The third level, if this candidate has one: (size, cycle time).
    pub l3: Option<(ByteSize, u64)>,
}

impl DeepCandidate {
    /// Total execution cycles — the ranking key.
    pub fn total_cycles(&self) -> u64 {
        self.base.result.total_cycles
    }
}

impl<'t> HierarchyOptimizer<'t> {
    /// Like [`HierarchyOptimizer::search`], but additionally considers a
    /// third level for every two-level candidate: each `l3_sizes` entry
    /// is evaluated as a unified, direct-mapped L3 whose cycle time the
    /// technology rule dictates, plus the L3-less design. Returns all
    /// candidates ranked fastest first — the §6 question "when does a
    /// deeper hierarchy win" answered by exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics if any candidate's cache organisation is invalid.
    pub fn search_deep(
        &self,
        l2_sizes: &[ByteSize],
        l2_ways: &[u32],
        l3_sizes: &[ByteSize],
    ) -> Vec<DeepCandidate> {
        let (candidates, failures) = self.try_search_deep(l2_sizes, l2_ways, l3_sizes);
        if let Some(failure) = failures.first() {
            panic!("candidate failed: {failure}");
        }
        candidates
    }

    /// [`HierarchyOptimizer::search_deep`] with per-candidate panic
    /// isolation, mirroring [`HierarchyOptimizer::try_search`].
    ///
    /// # Panics
    ///
    /// Panics if `l2_sizes` or `l2_ways` is empty.
    pub fn try_search_deep(
        &self,
        l2_sizes: &[ByteSize],
        l2_ways: &[u32],
        l3_sizes: &[ByteSize],
    ) -> (Vec<DeepCandidate>, Vec<PointFailure>) {
        assert!(
            !l2_sizes.is_empty() && !l2_ways.is_empty(),
            "search space must be non-empty"
        );
        let mut points: Vec<(ByteSize, u32, Option<ByteSize>)> = Vec::new();
        for &s in l2_sizes {
            for &w in l2_ways {
                points.push((s, w, None));
                for &l3 in l3_sizes {
                    if l3 > s {
                        points.push((s, w, Some(l3)));
                    }
                }
            }
        }
        let tech = self.tech;
        let results = try_par_map(points, |(size, w, l3)| {
            let l2_cycles = tech.l2_cycle_time(size, w);
            let mut machine = BaseMachine::new();
            machine
                .cpu_cycle_ns(tech.cpu_cycle_ns)
                .l2_total(size)
                .l2_ways(w)
                .l2_cycles(l2_cycles);
            let mut config = machine.build().expect("candidates are valid");
            let l3_spec = l3.map(|l3_size| (l3_size, tech.l2_cycle_time(l3_size, 1)));
            if let Some((l3_size, l3_cycles)) = l3_spec {
                let cache = mlc_cache::CacheConfig::builder()
                    .total(l3_size)
                    .block_bytes(32)
                    .build()
                    .expect("candidates are valid");
                config.levels.push(mlc_sim::LevelConfig::new(
                    "L3",
                    mlc_sim::LevelCacheConfig::Unified(cache),
                    l3_cycles,
                ));
            }
            let result =
                mlc_sim::simulate_with_warmup(config, self.trace.iter().copied(), self.warmup)
                    .expect("validated configuration");
            DeepCandidate {
                base: Candidate {
                    l2_size: size,
                    l2_ways: w,
                    l2_cycles,
                    result,
                },
                l3: l3_spec,
            }
        });
        let mut candidates = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for r in results {
            match r {
                Ok(c) => candidates.push(c),
                Err(f) => failures.push(f),
            }
        }
        candidates.sort_by_key(DeepCandidate::total_cycles);
        (candidates, failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::size_ladder;
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    #[test]
    fn technology_rule_monotone() {
        let tech = TechnologyModel::default();
        let mut prev = 0;
        for kib in [4u64, 16, 64, 256, 1024, 4096] {
            let t = tech.l2_cycle_time(ByteSize::kib(kib), 1);
            assert!(t >= prev, "cycle time must not shrink with size");
            prev = t;
        }
        for ways in [1u32, 2, 4, 8] {
            let t1 = tech.l2_cycle_time(ByteSize::kib(512), ways);
            let t2 = tech.l2_cycle_time(ByteSize::kib(512), ways * 2);
            assert!(t2 >= t1, "cycle time must not shrink with associativity");
        }
    }

    #[test]
    fn base_point_is_paper_like() {
        // 512 KB direct-mapped at the default rule: 25 + 4*7 = 53 ns →
        // 6 CPU cycles. The paper's base machine optimistically assumed
        // 3; both are in the realistic band the paper discusses (§4).
        let t = TechnologyModel::default().l2_cycle_time(ByteSize::kib(512), 1);
        assert!((3..=7).contains(&t), "got {t}");
    }

    #[test]
    fn search_ranks_fastest_first() {
        let trace = MultiProgramGenerator::new(Preset::Mips2.config(3))
            .unwrap()
            .generate_records(120_000);
        let optimizer = HierarchyOptimizer::new(&trace, 30_000, TechnologyModel::default());
        let ranked = optimizer.search(&size_ladder(ByteSize::kib(32), ByteSize::kib(256)), &[1, 2]);
        assert_eq!(ranked.len(), 8);
        for pair in ranked.windows(2) {
            assert!(pair[0].total_cycles() <= pair[1].total_cycles());
        }
        // Every candidate carries the technology-assigned cycle time.
        for c in &ranked {
            assert_eq!(
                c.l2_cycles,
                optimizer.technology().l2_cycle_time(c.l2_size, c.l2_ways)
            );
        }
    }

    #[test]
    fn deep_search_covers_l3_alternatives() {
        let trace = MultiProgramGenerator::new(Preset::Vms3.config(6))
            .unwrap()
            .generate_records(100_000);
        let optimizer = HierarchyOptimizer::new(&trace, 25_000, TechnologyModel::default());
        let ranked = optimizer.search_deep(
            &[ByteSize::kib(32), ByteSize::kib(64)],
            &[1],
            &[ByteSize::kib(64), ByteSize::kib(256)],
        );
        // 32K L2: no-L3 + both L3s; 64K L2: no-L3 + only the 256K L3
        // (an L3 must exceed its L2) = 5 candidates.
        assert_eq!(ranked.len(), 5);
        for pair in ranked.windows(2) {
            assert!(pair[0].total_cycles() <= pair[1].total_cycles());
        }
        assert!(ranked.iter().any(|c| c.l3.is_some()));
        assert!(ranked.iter().any(|c| c.l3.is_none()));
        // L3 cycle times come from the same technology rule.
        for c in &ranked {
            if let Some((size, cycles)) = c.l3 {
                assert_eq!(cycles, optimizer.technology().l2_cycle_time(size, 1));
            }
        }
    }

    #[test]
    fn try_search_isolates_invalid_candidates() {
        let trace = MultiProgramGenerator::new(Preset::Mips2.config(3))
            .unwrap()
            .generate_records(60_000);
        let optimizer = HierarchyOptimizer::new(&trace, 15_000, TechnologyModel::default());
        // 0-way associativity is not a realisable organisation: that
        // candidate fails typed while the valid one still ranks.
        let (ranked, failures) = optimizer.try_search(&[ByteSize::kib(32)], &[1, 0]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].l2_ways, 1);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_search_space_rejected() {
        let trace = [TraceRecord::ifetch(0)];
        HierarchyOptimizer::new(&trace, 0, TechnologyModel::default()).search(&[], &[1]);
    }
}
