//! The paper's execution-time model (Equation 1).
//!
//! For a two-level hierarchy with negligible write effects, total cycle
//! count decomposes as
//!
//! ```text
//! N_total = N_read · (n_L1 + M_L1·n_L2 + M_L2·n_MMread) + N_store · z_L1write
//! ```
//!
//! where `n_Li` are per-level read access times in CPU cycles, `M_Li` the
//! *global* read miss ratios, `n_MMread` the main-memory fetch time, and
//! `z_L1write` the mean write (and write-stall) cycles per store.

use mlc_sim::SimResult;

/// The parameters of Equation 1.
///
/// # Examples
///
/// ```
/// use mlc_core::ExecutionTimeModel;
///
/// // The paper's base machine with a 10% L1 and 4% L2 global miss ratio:
/// let model = ExecutionTimeModel {
///     n_l1: 1.0,
///     n_l2: 3.0,
///     m_l1: 0.10,
///     m_l2: 0.04,
///     n_mm_read: 27.0,
///     z_l1_write: 2.0,
/// };
/// let per_read = model.cycles_per_read();
/// assert!((per_read - (1.0 + 0.3 + 1.08)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionTimeModel {
    /// L1 read access time in CPU cycles.
    pub n_l1: f64,
    /// L2 read access time in CPU cycles (the L2 "cycle time").
    pub n_l2: f64,
    /// L1 global read miss ratio.
    pub m_l1: f64,
    /// L2 global read miss ratio.
    pub m_l2: f64,
    /// Main-memory fetch time into L2, in CPU cycles.
    pub n_mm_read: f64,
    /// Mean write and write-stall cycles per store.
    pub z_l1_write: f64,
}

impl ExecutionTimeModel {
    /// Mean cycles per CPU read reference.
    pub fn cycles_per_read(&self) -> f64 {
        self.n_l1 + self.m_l1 * self.n_l2 + self.m_l2 * self.n_mm_read
    }

    /// Equation 1: the model's total cycle count.
    pub fn total_cycles(&self, n_read: u64, n_store: u64) -> f64 {
        n_read as f64 * self.cycles_per_read() + n_store as f64 * self.z_l1_write
    }

    /// Extracts the model's measurable parameters from a simulated run of
    /// the base two-level machine, taking the access times from the
    /// machine description and the miss ratios from the measurement.
    ///
    /// Returns `None` if the result lacks two levels or read references.
    pub fn from_sim(result: &SimResult, n_l1: f64, n_l2: f64, n_mm_read: f64) -> Option<Self> {
        if result.levels.len() < 2 {
            return None;
        }
        Some(ExecutionTimeModel {
            n_l1,
            n_l2,
            m_l1: result.global_read_miss_ratio(0)?,
            m_l2: result.global_read_miss_ratio(1)?,
            n_mm_read,
            z_l1_write: result.write_cycles_per_store().unwrap_or(0.0),
        })
    }

    /// The model's prediction of total cycles for the run `result` was
    /// measured on, for comparing Equation 1 against the simulator.
    pub fn predict_for(&self, result: &SimResult) -> f64 {
        self.total_cycles(result.cpu_reads, result.stores) + result.instructions as f64 * 0.0
    }

    /// Relative error of the model against a measured run
    /// (`(predicted − actual) / actual`).
    ///
    /// Returns `None` when the run executed zero cycles.
    pub fn relative_error(&self, result: &SimResult) -> Option<f64> {
        if result.total_cycles == 0 {
            return None;
        }
        let predicted = self.predict_for(result);
        Some((predicted - result.total_cycles as f64) / result.total_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExecutionTimeModel {
        ExecutionTimeModel {
            n_l1: 1.0,
            n_l2: 3.0,
            m_l1: 0.1,
            m_l2: 0.01,
            n_mm_read: 27.0,
            z_l1_write: 2.0,
        }
    }

    #[test]
    fn cycles_per_read_decomposition() {
        let m = model();
        assert!((m.cycles_per_read() - (1.0 + 0.3 + 0.27)).abs() < 1e-12);
    }

    #[test]
    fn total_cycles_adds_write_term() {
        let m = model();
        let total = m.total_cycles(1000, 100);
        assert!((total - (1570.0 + 200.0)).abs() < 1e-9);
    }

    #[test]
    fn better_l2_reduces_time() {
        let mut worse = model();
        worse.m_l2 = 0.05;
        assert!(worse.cycles_per_read() > model().cycles_per_read());
    }

    #[test]
    fn equation_matches_simulator_on_base_machine() {
        use mlc_sim::{machine::base_machine, simulate_with_warmup};
        use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

        let mut generator = MultiProgramGenerator::new(Preset::Mips1.config(3)).unwrap();
        let trace = generator.generate_records(400_000);
        let result = simulate_with_warmup(base_machine(), trace, 100_000).unwrap();
        let model = ExecutionTimeModel::from_sim(&result, 1.0, 3.0, 27.0).unwrap();
        let err = model.relative_error(&result).unwrap();
        // Equation 1 ignores overlap of ifetch/data cycles, write-buffer
        // contention and the refresh gap; the paper treats it as a
        // first-order model. A third of the cycles come from stores in
        // our store-heavy mix, so tolerate a generous band.
        assert!(err.abs() < 0.35, "Equation 1 relative error {err}");
    }
}
