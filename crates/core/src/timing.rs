//! Sweep engine selection and cross-checking.
//!
//! [`Explorer::l2_grid`](crate::Explorer::l2_grid) can fill its grid two
//! ways: the *exhaustive* engine simulates every `(size, cycle-time)`
//! point separately, and the *one-pass* engine simulates each size once,
//! carrying all cycle times through a single functional pass (see
//! `mlc_sim::sweep`). They produce cycle-identical grids;
//! [`verify_grids`] is the cross-check that proves it on a given trace,
//! wired into `mlc-sweep --cross-check` and the workspace equivalence
//! tests so the fast path stays trusted.

use std::fmt;
use std::str::FromStr;

use crate::explore::DesignGrid;

/// Which strategy a grid sweep uses to cover the cycle-time axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// One full simulation per `(size, cycle-time)` grid point. The
    /// reference implementation: always applicable, never fast.
    Exhaustive,
    /// One functional simulation per size, all cycle times priced in the
    /// same pass — `O(sizes)` trace traversals instead of
    /// `O(sizes × cycles)`.
    #[default]
    OnePass,
}

impl SweepEngine {
    /// The engine's CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SweepEngine::Exhaustive => "exhaustive",
            SweepEngine::OnePass => "onepass",
        }
    }

    /// All engines, for help text and validation messages.
    pub const ALL: [SweepEngine; 2] = [SweepEngine::Exhaustive, SweepEngine::OnePass];
}

impl fmt::Display for SweepEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SweepEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exhaustive" => Ok(SweepEngine::Exhaustive),
            "onepass" => Ok(SweepEngine::OnePass),
            other => Err(format!(
                "unknown engine '{other}' (choices: exhaustive, onepass)"
            )),
        }
    }
}

/// The first disagreement found between two engines' grids.
#[derive(Debug, Clone, PartialEq)]
pub enum GridDivergence {
    /// A total-execution-cycles cell differs.
    Total {
        /// Row (size) index of the divergent cell.
        size_idx: usize,
        /// Column (cycle-time) index of the divergent cell.
        cycle_idx: usize,
        /// The exhaustive engine's value.
        exhaustive: u64,
        /// The one-pass engine's value.
        onepass: u64,
    },
    /// A per-size miss ratio differs (these are functional quantities, so
    /// even bit-level disagreement means the engines diverged).
    MissRatio {
        /// Which family diverged (`"local"`, `"global"` or `"L1 global"`).
        family: &'static str,
        /// Row (size) index of the divergent entry.
        size_idx: usize,
        /// The exhaustive engine's value.
        exhaustive: f64,
        /// The one-pass engine's value.
        onepass: f64,
    },
}

impl fmt::Display for GridDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridDivergence::Total {
                size_idx,
                cycle_idx,
                exhaustive,
                onepass,
            } => write!(
                f,
                "total[{size_idx}][{cycle_idx}]: exhaustive {exhaustive} != onepass {onepass}"
            ),
            GridDivergence::MissRatio {
                family,
                size_idx,
                exhaustive,
                onepass,
            } => write!(
                f,
                "{family} miss ratio[{size_idx}]: exhaustive {exhaustive} != onepass {onepass}"
            ),
        }
    }
}

/// Checks two grids of the same sweep for cycle-exact agreement.
///
/// Returns the first divergent cell, or `Ok(())` when the grids agree
/// everywhere — totals compared exactly, miss ratios bit-for-bit (both
/// engines derive them from identical functional counters, so any
/// difference at all is a bug, not rounding).
///
/// # Panics
///
/// Panics if the grids describe different sweeps (sizes, cycle times or
/// associativity differ) — comparing those is a caller bug, not a
/// divergence.
pub fn verify_grids(exhaustive: &DesignGrid, onepass: &DesignGrid) -> Result<(), GridDivergence> {
    assert!(
        exhaustive.sizes == onepass.sizes
            && exhaustive.cycles == onepass.cycles
            && exhaustive.ways == onepass.ways,
        "grids must describe the same sweep"
    );
    for (i, (row_e, row_o)) in exhaustive.total.iter().zip(&onepass.total).enumerate() {
        for (j, (&e, &o)) in row_e.iter().zip(row_o).enumerate() {
            if e != o {
                return Err(GridDivergence::Total {
                    size_idx: i,
                    cycle_idx: j,
                    exhaustive: e,
                    onepass: o,
                });
            }
        }
    }
    let ratio_families: [(&'static str, &[f64], &[f64]); 2] = [
        ("local", &exhaustive.l2_local, &onepass.l2_local),
        ("global", &exhaustive.l2_global, &onepass.l2_global),
    ];
    for (family, es, os) in ratio_families {
        for (i, (&e, &o)) in es.iter().zip(os).enumerate() {
            if e.to_bits() != o.to_bits() {
                return Err(GridDivergence::MissRatio {
                    family,
                    size_idx: i,
                    exhaustive: e,
                    onepass: o,
                });
            }
        }
    }
    if exhaustive.m_l1_global.to_bits() != onepass.m_l1_global.to_bits() {
        return Err(GridDivergence::MissRatio {
            family: "L1 global",
            size_idx: 0,
            exhaustive: exhaustive.m_l1_global,
            onepass: onepass.m_l1_global,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::ByteSize;

    fn grid() -> DesignGrid {
        DesignGrid {
            sizes: vec![ByteSize::kib(32), ByteSize::kib(64)],
            cycles: vec![1, 3],
            ways: 1,
            total: vec![vec![100, 120], vec![90, 105]],
            l2_local: vec![0.25, 0.20],
            l2_global: vec![0.02, 0.016],
            m_l1_global: 0.08,
            cpu_cycle_ns: 10.0,
        }
    }

    #[test]
    fn parses_engine_names() {
        assert_eq!("exhaustive".parse(), Ok(SweepEngine::Exhaustive));
        assert_eq!("onepass".parse(), Ok(SweepEngine::OnePass));
        assert!("fast".parse::<SweepEngine>().is_err());
        assert_eq!(SweepEngine::default(), SweepEngine::OnePass);
        for e in SweepEngine::ALL {
            assert_eq!(e.to_string().parse::<SweepEngine>(), Ok(e));
        }
    }

    #[test]
    fn identical_grids_verify() {
        assert_eq!(verify_grids(&grid(), &grid()), Ok(()));
    }

    #[test]
    fn total_divergence_is_located() {
        let mut o = grid();
        o.total[1][0] += 1;
        match verify_grids(&grid(), &o) {
            Err(GridDivergence::Total {
                size_idx: 1,
                cycle_idx: 0,
                exhaustive: 90,
                onepass: 91,
            }) => {}
            other => panic!("wrong divergence: {other:?}"),
        }
    }

    #[test]
    fn miss_ratio_divergence_is_located() {
        let mut o = grid();
        o.l2_global[1] = 0.017;
        let err = verify_grids(&grid(), &o).unwrap_err();
        assert!(err.to_string().contains("global miss ratio[1]"));
    }

    #[test]
    #[should_panic(expected = "same sweep")]
    fn different_sweeps_are_a_caller_bug() {
        let mut o = grid();
        o.cycles = vec![1, 4];
        let _ = verify_grids(&grid(), &o);
    }
}
