//! Cross-checking the simulator's cycle ledger against Equation 1.
//!
//! The simulator's `CycleLedger` attributes every cycle of a run to one
//! bucket (execute, per-level read-miss stall, write-buffer-full,
//! writeback, refresh wait). Equation 1 predicts the same total from
//! four analytic terms. [`AttributionReport`] lines the two up term by
//! term — each ledger bucket against the Equation 1 term that claims to
//! model it — and reports the per-term delta, so disagreements between
//! the analytic model and the simulated machine show up in the bucket
//! where they originate rather than only in the grand total.
//!
//! The mapping (two-level hierarchies, where Equation 1 is defined):
//!
//! | ledger bucket(s)              | Equation 1 term          |
//! |-------------------------------|--------------------------|
//! | execute + read_miss.L1        | `N_read · n_L1`          |
//! | read_miss.L2                  | `N_read · M_L1 · n_L2`   |
//! | read_miss.memory              | `N_read · M_L2 · n_MM`   |
//! | writeback + write_buffer_full | `N_store · z_L1write`    |
//! | refresh_wait                  | — (unmodelled)           |
//!
//! For hierarchies that are not two levels deep the breakdown still
//! prints, but the model column is empty: Equation 1 has no terms for
//! an L3, and extrapolating it silently would defeat the cross-check.

use mlc_mem::Bus;
use mlc_sim::{Clock, CycleLedger, HierarchyConfig, LevelCacheConfig, SimResult};

use crate::model::ExecutionTimeModel;
use crate::report::Table;

/// The machine-determined parameters of Equation 1, derived from a
/// hierarchy description (as opposed to the miss ratios, which come from
/// a measurement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq1Params {
    /// L1 read access time in CPU cycles.
    pub n_l1: f64,
    /// L2 read access time in CPU cycles.
    pub n_l2: f64,
    /// Main-memory fetch time into the deepest cache, in CPU cycles.
    pub n_mm_read: f64,
}

/// Derives Equation 1's access-time parameters from a machine
/// description. Returns `None` for hierarchies with fewer than two
/// levels, where the equation is not defined.
///
/// # Examples
///
/// ```
/// use mlc_core::eq1_params;
/// use mlc_sim::machine::base_machine;
///
/// let p = eq1_params(&base_machine()).unwrap();
/// assert_eq!((p.n_l1, p.n_l2, p.n_mm_read), (1.0, 3.0, 27.0));
/// ```
pub fn eq1_params(config: &HierarchyConfig) -> Option<Eq1Params> {
    if config.levels.len() < 2 {
        return None;
    }
    Some(Eq1Params {
        n_l1: config.levels[0].read_cycles as f64,
        n_l2: config.levels[1].read_cycles as f64,
        n_mm_read: memory_read_cycles(config) as f64,
    })
}

/// Main-memory fetch time into the deepest cache, in CPU cycles: one
/// backplane address cycle, the memory read operation, and the data
/// beats for a full block. On the base machine this is the paper's
/// 27 cycles (3 + 18 + 6).
pub fn memory_read_cycles(config: &HierarchyConfig) -> u64 {
    let deepest = config.levels.len() - 1;
    let level = &config.levels[deepest];
    let bus = Bus::new(level.refill_bus_bytes, config.refill_bus_cycles(deepest));
    let block_bytes = match &level.cache {
        LevelCacheConfig::Unified(c) => c.geometry().block_bytes(),
        LevelCacheConfig::Split { icache, dcache } => icache
            .geometry()
            .block_bytes()
            .max(dcache.geometry().block_bytes()),
    };
    let read_cycles = Clock::new(config.cpu.cycle_ns).ns_to_cycles(config.memory.read_ns);
    bus.address_ticks() + read_cycles + bus.data_ticks(block_bytes)
}

/// One line of the attribution cross-check: a ledger bucket (or sum of
/// buckets) next to the Equation 1 term modelling it.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// The ledger bucket(s) summed into `sim_cycles`.
    pub bucket: String,
    /// The Equation 1 term, or "—" for unmodelled buckets.
    pub term: String,
    /// Simulated cycles attributed to this bucket.
    pub sim_cycles: u64,
    /// The model's prediction for the same term, when it has one.
    pub model_cycles: Option<f64>,
}

impl AttributionRow {
    /// Model minus simulation, in cycles (`None` for unmodelled rows).
    pub fn delta(&self) -> Option<f64> {
        self.model_cycles.map(|m| m - self.sim_cycles as f64)
    }

    /// Delta as a fraction of the *run total*, so tiny buckets don't
    /// report alarming percentages over a handful of cycles.
    pub fn delta_of_total(&self, total_cycles: u64) -> Option<f64> {
        if total_cycles == 0 {
            return None;
        }
        self.delta().map(|d| d / total_cycles as f64)
    }
}

/// The full execution-time attribution: the ledger's breakdown of a run,
/// cross-checked term by term against Equation 1.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Per-term rows, in machine order (CPU outwards, then write side).
    pub rows: Vec<AttributionRow>,
    /// The run's measured total (the ledger buckets sum to exactly this).
    pub sim_total: u64,
    /// Equation 1's predicted total, when the machine is two-level.
    pub model_total: Option<f64>,
    /// The fitted model, when the machine is two-level.
    pub model: Option<ExecutionTimeModel>,
}

impl AttributionReport {
    /// Builds the cross-check from a machine description, a measured
    /// run, and its cycle ledger.
    ///
    /// The ledger must come from the same run as `result` (the
    /// constructor checks conservation against `result.total_cycles`
    /// only in debug builds, via the table invariants downstream).
    pub fn from_run(config: &HierarchyConfig, result: &SimResult, ledger: &CycleLedger) -> Self {
        let model = if config.levels.len() == 2 {
            eq1_params(config)
                .and_then(|p| ExecutionTimeModel::from_sim(result, p.n_l1, p.n_l2, p.n_mm_read))
        } else {
            None
        };
        let n_read = result.cpu_reads as f64;
        let mut rows = Vec::new();

        let l1_name = config.levels[0].name.clone();
        rows.push(AttributionRow {
            bucket: format!("execute + read_miss.{l1_name}"),
            term: "N_read · n_L1".into(),
            sim_cycles: ledger.execute + ledger.read_miss.first().copied().unwrap_or(0),
            model_cycles: model.as_ref().map(|m| n_read * m.n_l1),
        });
        for (idx, level) in config.levels.iter().enumerate().skip(1) {
            rows.push(AttributionRow {
                bucket: format!("read_miss.{}", level.name),
                term: if idx == 1 && model.is_some() {
                    "N_read · M_L1 · n_L2".into()
                } else {
                    "—".into()
                },
                sim_cycles: ledger.read_miss.get(idx).copied().unwrap_or(0),
                model_cycles: model
                    .as_ref()
                    .filter(|_| idx == 1)
                    .map(|m| n_read * m.m_l1 * m.n_l2),
            });
        }
        rows.push(AttributionRow {
            bucket: "read_miss.memory".into(),
            term: if model.is_some() {
                "N_read · M_L2 · n_MMread".into()
            } else {
                "—".into()
            },
            sim_cycles: ledger.memory_read_miss(),
            model_cycles: model.as_ref().map(|m| n_read * m.m_l2 * m.n_mm_read),
        });
        rows.push(AttributionRow {
            bucket: "writeback + write_buffer_full".into(),
            term: if model.is_some() {
                "N_store · z_L1write".into()
            } else {
                "—".into()
            },
            sim_cycles: ledger.writeback + ledger.write_buffer_full,
            model_cycles: model.as_ref().map(|m| result.stores as f64 * m.z_l1_write),
        });
        rows.push(AttributionRow {
            bucket: "refresh_wait".into(),
            term: "—".into(),
            sim_cycles: ledger.refresh_wait,
            model_cycles: None,
        });

        AttributionReport {
            rows,
            sim_total: result.total_cycles,
            model_total: model.as_ref().map(|m| m.predict_for(result)),
            model,
        }
    }

    /// Equation 1's relative error on the total
    /// (`(model − sim) / sim`); `None` when unmodelled or zero-cycle.
    pub fn total_relative_error(&self) -> Option<f64> {
        if self.sim_total == 0 {
            return None;
        }
        self.model_total
            .map(|m| (m - self.sim_total as f64) / self.sim_total as f64)
    }

    /// Renders the cross-check as an aligned table: per-bucket simulated
    /// cycles and share of the run, the matching Equation 1 prediction,
    /// and the delta, with a totals row at the bottom.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "execution-time attribution (ledger vs Equation 1)",
            &[
                "bucket",
                "eq1 term",
                "sim cycles",
                "share",
                "eq1 cycles",
                "delta",
            ],
        );
        let total = self.sim_total;
        let share = |cycles: u64| {
            if total == 0 {
                "—".to_string()
            } else {
                format!("{:.1}%", 100.0 * cycles as f64 / total as f64)
            }
        };
        let model_cell = |m: Option<f64>| m.map_or("—".to_string(), |v| format!("{v:.0}"));
        let delta_cell = |row: &AttributionRow| match row.delta() {
            Some(d) => format!("{d:+.0}"),
            None => "—".to_string(),
        };
        for row in &self.rows {
            t.row([
                row.bucket.clone(),
                row.term.clone(),
                row.sim_cycles.to_string(),
                share(row.sim_cycles),
                model_cell(row.model_cycles),
                delta_cell(row),
            ]);
        }
        let total_delta = match self.total_relative_error() {
            Some(e) => format!(
                "{:+.0} ({:+.1}%)",
                self.model_total.unwrap_or(0.0) - total as f64,
                100.0 * e
            ),
            None => "—".to_string(),
        };
        t.row([
            "total".to_string(),
            "N_total".to_string(),
            total.to_string(),
            share(total),
            model_cell(self.model_total),
            total_delta,
        ]);
        t
    }
}

/// One read-stall term of Equation 1 next to the statically guaranteed
/// cycle interval implied by per-level miss bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsCheckRow {
    /// The Equation 1 term, e.g. `"N_read · M_L1 · n_L2"`.
    pub term: String,
    /// Equation 1's cycles for the term (miss ratios measured from the
    /// run, as the paper defines them).
    pub eq1_cycles: f64,
    /// Lower end of the guaranteed interval for the same term.
    pub lo_cycles: u64,
    /// Upper end of the guaranteed interval for the same term.
    pub hi_cycles: u64,
}

impl BoundsCheckRow {
    /// Whether Equation 1's term lands inside the guaranteed interval.
    /// A half-cycle slack absorbs the float rounding in the ratios.
    pub fn within(&self) -> bool {
        self.eq1_cycles >= self.lo_cycles as f64 - 0.5
            && self.eq1_cycles <= self.hi_cycles as f64 + 0.5
    }
}

/// Cross-checks Equation 1's read-path terms against statically
/// guaranteed per-level read-miss bounds.
///
/// `bounds` carries one `(lo, hi)` read-miss interval per level, L1
/// first — plain numbers, so any bounds producer can feed this without
/// a crate dependency. Because Equation 1's global miss ratios satisfy
/// `N_read · M_L` = read misses at level `L`, each read-stall term must
/// fall inside the interval the static analysis guarantees for it; a
/// row with `within() == false` means the model, the simulator, or the
/// analyzer is wrong about that level.
///
/// Returns `None` when the machine is not two-level (Equation 1
/// undefined), `bounds` does not cover exactly two levels, or the model
/// cannot be fitted.
pub fn bounds_vs_eq1(
    config: &HierarchyConfig,
    result: &SimResult,
    bounds: &[(u64, u64)],
) -> Option<Vec<BoundsCheckRow>> {
    if config.levels.len() != 2 || bounds.len() != 2 {
        return None;
    }
    let p = eq1_params(config)?;
    let model = ExecutionTimeModel::from_sim(result, p.n_l1, p.n_l2, p.n_mm_read)?;
    let n_read = result.cpu_reads as f64;
    let term = |ratio: f64, cycles: f64, (lo, hi): (u64, u64)| BoundsCheckRow {
        term: String::new(),
        eq1_cycles: n_read * ratio * cycles,
        lo_cycles: lo * cycles as u64,
        hi_cycles: hi * cycles as u64,
    };
    let mut rows = vec![
        BoundsCheckRow {
            term: "N_read · n_L1".into(),
            eq1_cycles: n_read * p.n_l1,
            // Every read pays the L1 access exactly once.
            lo_cycles: result.cpu_reads * p.n_l1 as u64,
            hi_cycles: result.cpu_reads * p.n_l1 as u64,
        },
        term(model.m_l1, p.n_l2, bounds[0]),
        term(model.m_l2, p.n_mm_read, bounds[1]),
    ];
    rows[1].term = "N_read · M_L1 · n_L2".into();
    rows[2].term = "N_read · M_L2 · n_MMread".into();
    Some(rows)
}

/// Renders a [`bounds_vs_eq1`] cross-check as an aligned table.
pub fn bounds_vs_eq1_table(rows: &[BoundsCheckRow]) -> Table {
    let mut t = Table::new(
        "Equation 1 read terms vs guaranteed bounds",
        &["eq1 term", "eq1 cycles", "bound lo", "bound hi", "within"],
    );
    for row in rows {
        t.row([
            row.term.clone(),
            format!("{:.0}", row.eq1_cycles),
            row.lo_cycles.to_string(),
            row.hi_cycles.to_string(),
            if row.within() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlc_cache::{ByteSize, CacheConfig};
    use mlc_sim::machine::{base_machine, single_level, BaseMachine};
    use mlc_sim::{HierarchySim, LevelConfig};
    use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

    fn run(config: &HierarchyConfig, n: usize) -> (SimResult, CycleLedger) {
        let mut generator = MultiProgramGenerator::new(Preset::Mips1.config(5)).unwrap();
        let trace = generator.generate_records(n);
        let mut sim = HierarchySim::new(config.clone()).unwrap();
        sim.run(trace);
        (sim.result(), sim.ledger().clone())
    }

    #[test]
    fn base_machine_params_match_paper() {
        let p = eq1_params(&base_machine()).unwrap();
        assert_eq!(p.n_l1, 1.0);
        assert_eq!(p.n_l2, 3.0);
        // 3 backplane address + 18 memory read + 6 data beats.
        assert_eq!(p.n_mm_read, 27.0);
    }

    #[test]
    fn memory_read_cycles_tracks_memory_speed() {
        let base = memory_read_cycles(&base_machine());
        let slow = BaseMachine::new().memory_scale(2.0).build().unwrap();
        // Doubling memory speed adds exactly the extra read-operation
        // cycles; bus terms are unchanged.
        assert_eq!(memory_read_cycles(&slow), base + 18);
    }

    #[test]
    fn single_level_machines_are_unmodelled() {
        let cache = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .build()
            .unwrap();
        let config = single_level(cache, 1, 10.0, 1.0);
        assert!(eq1_params(&config).is_none());
        let (result, ledger) = run(&config, 5_000);
        let report = AttributionReport::from_run(&config, &result, &ledger);
        assert!(report.model.is_none());
        assert!(report.model_total.is_none());
        assert!(report.rows.iter().all(|r| r.model_cycles.is_none()));
        // The breakdown itself still conserves.
        let sum: u64 = report.rows.iter().map(|r| r.sim_cycles).sum();
        assert_eq!(sum, report.sim_total);
    }

    #[test]
    fn three_level_machines_print_but_skip_the_model() {
        let l3 = CacheConfig::builder()
            .total(ByteSize::mib(2))
            .block_bytes(32)
            .build()
            .unwrap();
        let mut config = base_machine();
        config.levels.push(LevelConfig::new(
            "L3",
            mlc_sim::LevelCacheConfig::Unified(l3),
            6,
        ));
        let (result, ledger) = run(&config, 5_000);
        let report = AttributionReport::from_run(&config, &result, &ledger);
        assert!(report.model.is_none());
        assert!(report.rows.iter().any(|r| r.bucket == "read_miss.L3"));
        let sum: u64 = report.rows.iter().map(|r| r.sim_cycles).sum();
        assert_eq!(sum, report.sim_total);
    }

    #[test]
    fn two_level_report_cross_checks_equation_1() {
        let config = base_machine();
        let (result, ledger) = run(&config, 100_000);
        let report = AttributionReport::from_run(&config, &result, &ledger);

        // Rows conserve the measured total exactly.
        let sum: u64 = report.rows.iter().map(|r| r.sim_cycles).sum();
        assert_eq!(sum, report.sim_total);
        assert_eq!(report.sim_total, result.total_cycles);

        // The model is fitted and every modelled row has a prediction.
        let model = report.model.expect("two-level machine fits Equation 1");
        assert_eq!(model.n_mm_read, 27.0);
        let modelled: Vec<_> = report
            .rows
            .iter()
            .filter(|r| r.model_cycles.is_some())
            .collect();
        assert_eq!(modelled.len(), 4);

        // Per-term model cycles sum to the model total.
        let model_sum: f64 = modelled.iter().filter_map(|r| r.model_cycles).sum();
        let model_total = report.model_total.unwrap();
        assert!((model_sum - model_total).abs() < 1e-6 * model_total.max(1.0));

        // The model is first-order but not wild on the base machine.
        assert!(report.total_relative_error().unwrap().abs() < 0.35);

        // Refresh is explicitly unmodelled.
        let refresh = report.rows.last().unwrap();
        assert_eq!(refresh.bucket, "refresh_wait");
        assert!(refresh.model_cycles.is_none());
        assert!(refresh.delta().is_none());
    }

    #[test]
    fn table_renders_every_row_and_totals() {
        let config = base_machine();
        let (result, ledger) = run(&config, 20_000);
        let report = AttributionReport::from_run(&config, &result, &ledger);
        let table = report.table();
        // One row per bucket plus the totals row.
        assert_eq!(table.len(), report.rows.len() + 1);
        let text = table.to_string();
        assert!(text.contains("execution-time attribution"));
        assert!(text.contains("read_miss.memory"));
        assert!(text.contains("refresh_wait"));
        assert!(text.contains("N_total"));
        let csv = table.to_csv();
        assert!(csv.lines().count() == report.rows.len() + 2);
    }

    #[test]
    fn bounds_vs_eq1_accepts_the_measured_truth() {
        // The tightest sound bounds are the measured counts themselves;
        // Equation 1's terms are built from the same counts, so every
        // row must land inside.
        let config = base_machine();
        let (result, _) = run(&config, 50_000);
        let exact: Vec<(u64, u64)> = result
            .levels
            .iter()
            .map(|l| (l.cache.read_misses(), l.cache.read_misses()))
            .collect();
        let rows = bounds_vs_eq1(&config, &result, &exact).expect("two-level machine");
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.within(), "{row:?}");
        }
        let table = bounds_vs_eq1_table(&rows);
        assert_eq!(table.len(), 3);
        assert!(table.to_string().contains("N_read · M_L1 · n_L2"));
    }

    #[test]
    fn bounds_vs_eq1_flags_an_impossible_bound() {
        let config = base_machine();
        let (result, _) = run(&config, 50_000);
        // Claim L1 never misses: the Equation 1 term must escape.
        let wrong = vec![(0, 0), (0, u64::MAX / 1024)];
        let rows = bounds_vs_eq1(&config, &result, &wrong).expect("two-level machine");
        assert!(!rows[1].within(), "{:?}", rows[1]);
        assert!(rows[2].within(), "{:?}", rows[2]);
    }

    #[test]
    fn bounds_vs_eq1_rejects_mismatched_shapes() {
        let config = base_machine();
        let (result, _) = run(&config, 5_000);
        assert!(bounds_vs_eq1(&config, &result, &[(0, 1)]).is_none());

        let cache = CacheConfig::builder()
            .total(ByteSize::kib(4))
            .block_bytes(16)
            .build()
            .unwrap();
        let solo = single_level(cache, 1, 10.0, 1.0);
        let (result, _) = run(&solo, 5_000);
        assert!(bounds_vs_eq1(&solo, &result, &[(0, 1)]).is_none());
    }

    #[test]
    fn delta_helpers_handle_degenerate_inputs() {
        let row = AttributionRow {
            bucket: "x".into(),
            term: "—".into(),
            sim_cycles: 10,
            model_cycles: Some(12.0),
        };
        assert_eq!(row.delta(), Some(2.0));
        assert_eq!(row.delta_of_total(0), None);
        assert!((row.delta_of_total(100).unwrap() - 0.02).abs() < 1e-12);
    }
}
