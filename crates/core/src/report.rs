//! Plain-text tables and CSV output for experiment harnesses.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table with a title, rendered by `Display` and
/// exportable as CSV.
///
/// # Examples
///
/// ```
/// use mlc_core::Table;
///
/// let mut t = Table::new("L2 miss ratios", &["size", "local", "global"]);
/// t.row(["8KB", "0.31", "0.066"]);
/// t.row(["16KB", "0.27", "0.055"]);
/// let text = t.to_string();
/// assert!(text.contains("L2 miss ratios"));
/// assert!(text.contains("16KB"));
/// assert_eq!(t.to_csv(), "size,local,global\n8KB,0.31,0.066\n16KB,0.27,0.055\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (headers first; naive quoting — cells containing
    /// commas are wrapped in double quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let line = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ");
            writeln!(f, "{line}")
        };
        render(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        render(f, &rule)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 4 significant decimals, or `-` for NaN.
pub fn fmt_ratio(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.4}")
    }
}

/// Formats a float with 2 decimals, or `-` for NaN.
pub fn fmt_f2(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("test", &["a", "bee"]);
        t.row(["1", "2"]).row(["333", "4"]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("## test"));
        assert!(text.contains("  a  bee"));
        assert!(text.contains("333"));
        assert!(text.contains("---"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new("q", &["x"]);
        t.row(["a,b"]).row(["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new("t", &["a", "b"]).row(["only one"]);
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new("t", &["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("mlc_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        sample().write_csv(&path).unwrap();
        let back = fs::read_to_string(&path).unwrap();
        assert_eq!(back, sample().to_csv());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_ratio(0.123456), "0.1235");
        assert_eq!(fmt_ratio(f64::NAN), "-");
        assert_eq!(fmt_f2(1.005), "1.00");
        assert_eq!(fmt_f2(f64::NAN), "-");
    }
}
