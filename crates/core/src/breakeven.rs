//! Break-even implementation times for set associativity (the paper's §5
//! and Equation 3).
//!
//! Increasing a downstream cache's associativity lowers its miss ratio
//! but lengthens its cycle time. The *break-even implementation time* is
//! the cycle-time degradation at which the two effects cancel; if set
//! associativity can be implemented with less overhead than that, it wins.
//! Equation 3 gives the incremental break-even time for doubling the set
//! size as
//!
//! ```text
//! Δt_be = ΔM_global · t_MMread / M_L1
//! ```
//!
//! — the `1/M_L1` factor again: the rarer L2 accesses are, the more cycle
//! time a miss-ratio improvement is worth. The paper compares these times
//! against the ≈11 ns select-to-data-out of a 2:1 Advanced-Schottky TTL
//! multiplexor, the realistic cost of adding way selection to a discrete
//! second-level cache.

use mlc_sim::SimResult;

/// The paper's TTL reference point: the 11 ns select-to-data-out time of
/// a two-to-one Advanced-Schottky multiplexor (TI data book, 1986),
/// quoted in §5 as the minimum realistic cycle-time overhead of set
/// associativity for a discrete L2.
pub const TTL_MUX_OVERHEAD_NS: f64 = 11.0;

/// Shared inputs of every break-even computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakEvenInputs {
    /// The upstream cache's global read miss ratio.
    pub m_l1_global: f64,
    /// Mean main-memory fetch time, in nanoseconds.
    pub mm_read_time_ns: f64,
}

impl BreakEvenInputs {
    /// Equation 3: the incremental break-even time (ns) bought by a
    /// global miss-ratio improvement of `delta_m_global` (e.g. from
    /// doubling the set size).
    ///
    /// # Examples
    ///
    /// ```
    /// use mlc_core::BreakEvenInputs;
    ///
    /// let inputs = BreakEvenInputs { m_l1_global: 0.10, mm_read_time_ns: 270.0 };
    /// // A 0.5-percentage-point global miss improvement is worth 13.5 ns.
    /// let dt = inputs.incremental_break_even_ns(0.005);
    /// assert!((dt - 13.5).abs() < 1e-9);
    /// ```
    pub fn incremental_break_even_ns(&self, delta_m_global: f64) -> f64 {
        delta_m_global * self.mm_read_time_ns / self.m_l1_global
    }

    /// Cumulative break-even time (ns) from a direct-mapped cache to an
    /// `a`-way one, given their global miss ratios.
    pub fn cumulative_break_even_ns(&self, m_direct: f64, m_assoc: f64) -> f64 {
        self.incremental_break_even_ns(m_direct - m_assoc)
    }
}

/// Empirical break-even time between two simulated design points that
/// differ only in associativity, derived from the execution-time-versus-
/// cycle-time curves of each.
///
/// `dm_times` and `assoc_times` are `(l2_cycles, total_cycles)` samples
/// (ascending in `l2_cycles`) for the direct-mapped and set-associative
/// caches. The break-even time at `at_cycles` is the extra L2 cycle time
/// the associative cache can afford while still matching the
/// direct-mapped cache's execution time, in CPU cycles (fractional,
/// linearly interpolated). Returns `None` if `at_cycles` is outside the
/// sampled range or the associative curve never crosses the target.
pub fn empirical_break_even_cycles(
    dm_times: &[(u64, u64)],
    assoc_times: &[(u64, u64)],
    at_cycles: u64,
) -> Option<f64> {
    let target = interpolate_at(dm_times, at_cycles as f64)?;
    let t_assoc = inverse_interpolate(assoc_times, target)?;
    Some(t_assoc - at_cycles as f64)
}

/// Linear interpolation of `y` at `x` over ascending `(x, y)` samples.
fn interpolate_at(samples: &[(u64, u64)], x: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    if x < samples[0].0 as f64 || x > samples[samples.len() - 1].0 as f64 {
        return None;
    }
    for w in samples.windows(2) {
        let (x0, y0) = (w[0].0 as f64, w[0].1 as f64);
        let (x1, y1) = (w[1].0 as f64, w[1].1 as f64);
        if x <= x1 {
            if x1 == x0 {
                return Some(y0);
            }
            return Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0));
        }
    }
    samples.last().map(|&(_, y)| y as f64)
}

/// Finds `x` such that the piecewise-linear curve through `samples`
/// equals `y` (curves here are monotone increasing in practice).
fn inverse_interpolate(samples: &[(u64, u64)], y: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    for w in samples.windows(2) {
        let (x0, y0) = (w[0].0 as f64, w[0].1 as f64);
        let (x1, y1) = (w[1].0 as f64, w[1].1 as f64);
        if (y0 <= y && y <= y1) || (y1 <= y && y <= y0) {
            if (y1 - y0).abs() < 1e-12 {
                return Some(x0);
            }
            return Some(x0 + (x1 - x0) * (y - y0) / (y1 - y0));
        }
    }
    None
}

/// Convenience: Equation-3 inputs measured from a simulated base run.
///
/// Returns `None` if the run lacks the L1 miss ratio.
pub fn inputs_from_sim(result: &SimResult, mm_read_time_ns: f64) -> Option<BreakEvenInputs> {
    Some(BreakEvenInputs {
        m_l1_global: result.global_read_miss_ratio(0)?,
        mm_read_time_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_three_shape() {
        let inputs = BreakEvenInputs {
            m_l1_global: 0.10,
            mm_read_time_ns: 270.0,
        };
        // Better L1 (smaller M_L1) multiplies break-even times up.
        let better = BreakEvenInputs {
            m_l1_global: 0.05,
            ..inputs
        };
        let dm = 0.004;
        assert!(
            (better.incremental_break_even_ns(dm) / inputs.incremental_break_even_ns(dm) - 2.0)
                .abs()
                < 1e-12
        );
        // Slower memory scales linearly.
        let slow = BreakEvenInputs {
            mm_read_time_ns: 540.0,
            ..inputs
        };
        assert!(
            (slow.incremental_break_even_ns(dm) / inputs.incremental_break_even_ns(dm) - 2.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn cumulative_equals_sum_of_increments() {
        let inputs = BreakEvenInputs {
            m_l1_global: 0.1,
            mm_read_time_ns: 270.0,
        };
        let (m1, m2, m4) = (0.040, 0.034, 0.030);
        let cumulative = inputs.cumulative_break_even_ns(m1, m4);
        let summed =
            inputs.incremental_break_even_ns(m1 - m2) + inputs.incremental_break_even_ns(m2 - m4);
        assert!((cumulative - summed).abs() < 1e-12);
    }

    #[test]
    fn paper_l1_doubling_scaling() {
        // §5: each L1 doubling cuts M_L1 by ~28%, multiplying break-even
        // times by 1/0.72 ≈ 1.39 (the paper quotes 1.45 with its exact
        // miss numbers).
        let base = BreakEvenInputs {
            m_l1_global: 0.10,
            mm_read_time_ns: 270.0,
        };
        let doubled = BreakEvenInputs {
            m_l1_global: 0.10 * 0.72,
            ..base
        };
        let ratio =
            doubled.incremental_break_even_ns(0.004) / base.incremental_break_even_ns(0.004);
        assert!((ratio - 1.39).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn empirical_break_even_from_linear_curves() {
        // Exec time linear in L2 cycle time: DM pays a miss-ratio tax of
        // 600 cycles; the 2-way has lower misses (smaller intercept) but
        // the same slope.
        let dm: Vec<(u64, u64)> = (1..=10).map(|t| (t, 600 + 100 * t)).collect();
        let assoc: Vec<(u64, u64)> = (1..=10).map(|t| (t, 400 + 100 * t)).collect();
        // At t=3 the DM runs in 900; the associative cache reaches 900 at
        // t=5 → 2 cycles of slack.
        let be = empirical_break_even_cycles(&dm, &assoc, 3).unwrap();
        assert!((be - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_break_even_out_of_range() {
        let dm = vec![(1u64, 700u64), (2, 800)];
        let assoc = vec![(1u64, 650u64), (2, 750)];
        assert!(empirical_break_even_cycles(&dm, &assoc, 9).is_none());
        // Associative curve never reaches the DM time at t=1 (DM 700 is
        // below the assoc range only if...) — here 700 lies inside
        // [650, 750], so a value exists:
        assert!(empirical_break_even_cycles(&dm, &assoc, 1).is_some());
        assert!(empirical_break_even_cycles(&[], &assoc, 1).is_none());
    }

    #[test]
    fn ttl_constant_matches_paper() {
        assert_eq!(TTL_MUX_OVERHEAD_NS, 11.0);
    }
}
