//! The power-law miss-ratio model and its fitting.
//!
//! The paper observes (§4, from Figure 3-1) that "a doubling of the cache
//! size decreases the solo miss rate by a constant factor … about 0.69",
//! i.e. `miss(S) ≈ m0 · (S/S0)^-θ` with `θ = log2(1/0.69) ≈ 0.536` —
//! "to first order, the miss rate is roughly proportional to one over the
//! square-root of the cache size".

/// A fitted power law `miss(S) = m0 · (S / s0)^-θ`.
///
/// # Examples
///
/// ```
/// use mlc_core::PowerLawMissModel;
///
/// // Perfect √-law data: fitting recovers θ = 0.5 and the 0.71 factor.
/// let points: Vec<(f64, f64)> = (0..8)
///     .map(|i| {
///         let size = 4096.0 * 2f64.powi(i);
///         (size, 0.1 * (size / 4096.0).powf(-0.5))
///     })
///     .collect();
/// let model = PowerLawMissModel::fit(&points).unwrap();
/// assert!((model.theta() - 0.5).abs() < 1e-9);
/// assert!((model.doubling_factor() - 0.7071).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawMissModel {
    m0: f64,
    s0: f64,
    theta: f64,
}

impl PowerLawMissModel {
    /// Creates a model directly from its parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `m0 > 0`, `s0 > 0`.
    pub fn new(m0: f64, s0: f64, theta: f64) -> Self {
        assert!(m0 > 0.0, "m0 must be positive");
        assert!(s0 > 0.0, "s0 must be positive");
        PowerLawMissModel { m0, s0, theta }
    }

    /// Fits the power law to `(size_bytes, miss_ratio)` points by
    /// least-squares in log-log space.
    ///
    /// Returns `None` if fewer than two valid (positive) points are given
    /// or the sizes are all equal.
    pub fn fit(points: &[(f64, f64)]) -> Option<Self> {
        let valid: Vec<(f64, f64)> = points
            .iter()
            .filter(|(s, m)| *s > 0.0 && *m > 0.0)
            .map(|&(s, m)| (s.ln(), m.ln()))
            .collect();
        if valid.len() < 2 {
            return None;
        }
        let n = valid.len() as f64;
        let sx: f64 = valid.iter().map(|(x, _)| x).sum();
        let sy: f64 = valid.iter().map(|(_, y)| y).sum();
        let sxx: f64 = valid.iter().map(|(x, _)| x * x).sum();
        let sxy: f64 = valid.iter().map(|(x, y)| x * y).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        // miss = exp(intercept) * S^slope; anchor s0 at the first point.
        let s0 = points
            .iter()
            .find(|(s, m)| *s > 0.0 && *m > 0.0)
            .map(|&(s, _)| s)
            .expect("valid.len() >= 2 implies a valid point exists");
        let theta = -slope;
        let m0 = (intercept + slope * s0.ln()).exp();
        Some(PowerLawMissModel { m0, s0, theta })
    }

    /// Fits only the *declining region* of a measured curve: trailing
    /// points within `floor_slack` (relative) of the final plateau value
    /// are dropped before fitting. Finite traces always produce a
    /// compulsory-miss plateau at very large sizes (the paper notes the
    /// same flattening); including it would bias θ low.
    pub fn fit_declining(points: &[(f64, f64)], floor_slack: f64) -> Option<Self> {
        let floor = points.last()?.1;
        let cutoff = floor * (1.0 + floor_slack);
        let declining: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|&(_, m)| m > cutoff)
            .collect();
        if declining.len() >= 2 {
            Self::fit(&declining)
        } else {
            Self::fit(points)
        }
    }

    /// The modelled miss ratio at `size_bytes`.
    pub fn miss_at(&self, size_bytes: f64) -> f64 {
        self.m0 * (size_bytes / self.s0).powf(-self.theta)
    }

    /// The fitted exponent θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The anchor miss ratio `m0` (the modelled miss ratio at `s0`).
    pub fn m0(&self) -> f64 {
        self.m0
    }

    /// The anchor size `s0` in bytes.
    pub fn s0(&self) -> f64 {
        self.s0
    }

    /// The factor by which the modelled miss ratio shrinks per size
    /// doubling (`2^-θ`; the paper measures ≈ 0.69).
    pub fn doubling_factor(&self) -> f64 {
        2f64.powf(-self.theta)
    }

    /// Derivative `d miss / d size` at `size_bytes`.
    pub fn derivative_at(&self, size_bytes: f64) -> f64 {
        -self.theta * self.miss_at(size_bytes) / size_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(theta: f64) -> Vec<(f64, f64)> {
        (0..10)
            .map(|i| {
                let s = 8192.0 * 2f64.powi(i);
                (s, 0.2 * (s / 8192.0).powf(-theta))
            })
            .collect()
    }

    #[test]
    fn fit_recovers_exact_power_law() {
        for theta in [0.3, 0.536, 0.75, 1.0] {
            let m = PowerLawMissModel::fit(&synthetic(theta)).unwrap();
            assert!((m.theta() - theta).abs() < 1e-9, "theta {theta}");
            assert!((m.miss_at(8192.0) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn paper_factor_is_sqrt_law() {
        let m = PowerLawMissModel::new(0.1, 4096.0, 0.536);
        assert!((m.doubling_factor() - 0.69).abs() < 0.005);
        // "roughly proportional to one over the square root of the size"
        let ratio = m.miss_at(4.0 * 4096.0) / m.miss_at(4096.0);
        assert!((ratio - 0.476).abs() < 0.01); // ≈ 1/2 for θ=0.5
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(PowerLawMissModel::fit(&[]).is_none());
        assert!(PowerLawMissModel::fit(&[(4096.0, 0.1)]).is_none());
        assert!(PowerLawMissModel::fit(&[(4096.0, 0.1), (4096.0, 0.05)]).is_none());
        assert!(PowerLawMissModel::fit(&[(4096.0, -0.1), (8192.0, 0.0)]).is_none());
    }

    #[test]
    fn fit_declining_ignores_plateau() {
        let mut points = synthetic(0.536);
        // Append a hard plateau (compulsory-miss floor).
        let floor = points.last().unwrap().1;
        for i in 0..4 {
            let s = points.last().unwrap().0 * 2.0;
            points.push((s, floor * (1.0 + 0.001 * i as f64)));
        }
        let naive = PowerLawMissModel::fit(&points).unwrap();
        let robust = PowerLawMissModel::fit_declining(&points, 0.05).unwrap();
        assert!(naive.theta() < 0.536);
        assert!((robust.theta() - 0.536).abs() < 0.05, "{}", robust.theta());
    }

    #[test]
    fn derivative_is_negative_and_shrinking() {
        let m = PowerLawMissModel::new(0.1, 4096.0, 0.536);
        let d1 = m.derivative_at(8192.0);
        let d2 = m.derivative_at(65536.0);
        assert!(d1 < 0.0 && d2 < 0.0);
        assert!(d2 > d1, "magnitude shrinks with size");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_m0() {
        PowerLawMissModel::new(0.0, 1.0, 0.5);
    }
}
