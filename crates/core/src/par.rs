//! A minimal parallel map over OS threads, with optional per-item
//! panic isolation.
//!
//! Design-space sweeps are embarrassingly parallel (one independent
//! simulation per grid point over a shared read-only trace), so a
//! work-stealing counter over `std::thread::scope` is all that is needed
//! — no external runtime. Workers claim contiguous *index ranges* from a
//! shared atomic cursor and write results straight into preallocated
//! slots: ranges are disjoint by construction, so there is no per-item
//! locking anywhere on the hot path.
//!
//! Two entry points share that engine:
//!
//! * [`try_par_map`] wraps every item in `catch_unwind` and returns
//!   `Vec<Result<R, PointFailure>>` — one failed grid point no longer
//!   aborts a multi-hour sweep.
//! * [`par_map`] keeps the original all-or-nothing contract by
//!   panicking on the first captured failure after the scope joins.
//!
//! # Panic safety of the slot writes
//!
//! Both vectors of slots are `Vec<Option<_>>` fully initialised to
//! `None`/`Some(item)` *before* any worker starts, and every write goes
//! through `ptr::write`-free plain assignment to an `Option` slot that
//! only the claiming worker may touch. If `f` panics mid-chunk:
//!
//! * the item being processed was already moved out of its slot (the
//!   slot holds `None`), so unwinding drops it inside `f` exactly once;
//! * the result slot for that index keeps its initial `None` — it is
//!   never left partially written, because the assignment happens only
//!   after `f` returns;
//! * remaining indices of the chunk keep `Some(item)` / `None` and are
//!   either claimed by no-one (under [`par_map`], whose workers stop
//!   only when the cursor is exhausted) or processed normally;
//! * dropping the two `Vec`s therefore frees every item and result
//!   exactly once, whether the panic escapes the scope ([`par_map`]) or
//!   is caught per-item ([`try_par_map`]).
//!
//! There is no state in which a slot is read uninitialised: `None` is a
//! valid, droppable value for every slot from the moment the vectors are
//! built.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A raw pointer a scoped worker may share across threads.
///
/// Safety contract: every index a worker dereferences through this
/// pointer was claimed from the shared cursor exactly once, so no two
/// threads ever touch the same slot, and the pointee `Vec`s outlive the
/// `thread::scope` that joins all workers.
struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    /// The slot pointer for index `i`. A method (rather than direct
    /// field access) so worker closures capture the `Sync` wrapper, not
    /// the raw pointer itself.
    fn slot(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices within the pointee `Vec`.
        unsafe { self.0.add(i) }
    }
}

unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// One work item that panicked inside a parallel map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointFailure {
    /// Index of the failed item in the input vector.
    pub index: usize,
    /// The panic payload, when it was a string; a placeholder otherwise.
    pub message: String,
}

impl fmt::Display for PointFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point {}: {}", self.index, self.message)
    }
}

impl std::error::Error for PointFailure {}

/// Extracts a human-readable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every item, running up to the machine's available
/// parallelism, and returns per-item results in input order — a panic
/// in `f` is caught and reported as [`PointFailure`] for that index
/// instead of tearing down the whole map.
///
/// Work is distributed in chunks of contiguous indices (several chunks
/// per worker, so stragglers still steal), and each index's result is
/// written directly into its preallocated output slot. A worker that
/// catches a panic records the payload and simply continues with the
/// next index, so one poisoned grid point costs exactly one result.
///
/// # Examples
///
/// ```
/// use mlc_core::par::try_par_map;
///
/// let out = try_par_map((0..10).collect(), |x: i32| {
///     if x == 3 {
///         panic!("bad point");
///     }
///     x * x
/// });
/// assert_eq!(out[2], Ok(4));
/// let err = out[3].as_ref().unwrap_err();
/// assert_eq!((err.index, err.message.as_str()), (3, "bad point"));
/// ```
pub fn try_par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<Result<R, PointFailure>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(n);
    // The single-threaded path still isolates panics so behaviour does
    // not depend on the machine's parallelism.
    let run_one = |i: usize, item: T| -> Result<R, PointFailure> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| PointFailure {
            index: i,
            message: panic_message(payload),
        })
    };
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| run_one(i, item))
            .collect();
    }
    // ~4 chunks per worker: coarse enough to amortise the atomic claim,
    // fine enough that an unlucky worker's tail can be stolen.
    let chunk = n.div_ceil(threads * 4).max(1);

    // Both vectors hold `Option`s so a worker can move items out and a
    // panic mid-run leaves every slot in a defined state for the normal
    // `Vec` drop during unwinding (see the module docs on panic safety).
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<Result<R, PointFailure>>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let item_slots = SyncPtr(items.as_mut_ptr());
    let result_slots = SyncPtr(results.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: `i` lies in a range this worker claimed from
                    // the cursor, so no other thread reads or writes
                    // either slot, and both vectors outlive the scope.
                    let item = unsafe { (*item_slots.slot(i)).take() }
                        .expect("each index is claimed exactly once");
                    let r = run_one(i, item);
                    unsafe { *result_slots.slot(i) = Some(r) };
                }
            });
        }
    });
    drop(items);
    results
        .into_iter()
        .map(|r| r.expect("every slot was filled"))
        .collect()
}

/// Applies `f` to every item, running up to the machine's available
/// parallelism, and returns results in input order.
///
/// This is the all-or-nothing wrapper over [`try_par_map`]: every other
/// item is still processed (workers drain the cursor regardless of
/// failures, exactly as the pre-isolation implementation did once the
/// scope joined its threads), then the first captured failure is
/// re-raised as a panic.
///
/// # Examples
///
/// ```
/// use mlc_core::par::par_map;
///
/// let squares = par_map((0..100).collect(), |x: i32| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// # Panics
///
/// Propagates the first (lowest-index) panic from `f`; items not yet
/// processed are dropped normally.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    try_par_map(items, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(failure) => panic!("{failure}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect(), |x: u64| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items() {
        let out = par_map(vec![String::from("a"), String::from("bb")], |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn processes_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map((0..357u64).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 357);
        assert_eq!(out, (1..=357).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        par_map((0..64).collect(), |x: i32| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn unprocessed_items_drop_cleanly_after_panic() {
        use std::sync::Arc;

        // Count drops across both completed results and abandoned items.
        #[derive(Clone)]
        struct Counted(#[allow(dead_code)] Arc<()>);

        let token = Arc::new(());
        let items: Vec<Counted> = (0..128).map(|_| Counted(Arc::clone(&token))).collect();
        let hits = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(items, |c: Counted| {
                if hits.fetch_add(1, Ordering::Relaxed) == 5 {
                    panic!("mid-run failure");
                }
                c
            })
        }));
        assert!(res.is_err());
        // Everything par_map touched has been dropped exactly once: only
        // our local handle on the token remains.
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn try_par_map_isolates_failures() {
        let out = try_par_map((0..100).collect(), |x: u64| {
            if x % 10 == 7 {
                panic!("bad {x}");
            }
            x * 3
        });
        assert_eq!(out.len(), 100);
        for (i, r) in out.iter().enumerate() {
            if i % 10 == 7 {
                let f = r.as_ref().unwrap_err();
                assert_eq!(f.index, i);
                assert_eq!(f.message, format!("bad {i}"));
            } else {
                assert_eq!(*r, Ok(i as u64 * 3));
            }
        }
    }

    #[test]
    fn try_par_map_string_and_opaque_payloads() {
        let out = try_par_map(vec![0u8, 1, 2], |x| match x {
            0 => std::panic::panic_any(String::from("owned message")),
            1 => std::panic::panic_any(42i64),
            _ => x,
        });
        assert_eq!(out[0].as_ref().unwrap_err().message, "owned message");
        assert_eq!(
            out[1].as_ref().unwrap_err().message,
            "non-string panic payload"
        );
        assert_eq!(out[2], Ok(2));
    }

    #[test]
    fn try_par_map_all_points_fail() {
        let out = try_par_map((0..32).collect(), |_x: i32| -> i32 { panic!("nope") });
        assert!(out.iter().all(|r| r.is_err()));
        let indices: Vec<usize> = out.iter().map(|r| r.as_ref().unwrap_err().index).collect();
        assert_eq!(indices, (0..32).collect::<Vec<_>>());
    }

    /// The satellite-task stress test: panic on pseudo-random indices
    /// across many rounds and verify the exact Ok/Err partition plus
    /// leak-free drops every time.
    #[test]
    fn stress_random_panic_indices() {
        use std::collections::HashSet;
        use std::sync::Arc;

        struct Counted(#[allow(dead_code)] Arc<()>, u64);

        // Deterministic LCG (Numerical Recipes constants) so failures
        // reproduce without a rand dependency.
        let mut state: u64 = 0x2545_f491_4f6c_dd1d;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };

        for round in 0..50 {
            let n = 1 + (next() as usize % 200);
            let bad: HashSet<usize> = (0..(next() as usize % 8))
                .map(|_| next() as usize % n)
                .collect();
            let token = Arc::new(());
            let items: Vec<Counted> = (0..n as u64)
                .map(|i| Counted(Arc::clone(&token), i))
                .collect();
            let bad_ref = &bad;
            let out = try_par_map(items, |c: Counted| {
                if bad_ref.contains(&(c.1 as usize)) {
                    panic!("injected at {}", c.1);
                }
                c.1 * 2
            });
            assert_eq!(out.len(), n, "round {round}");
            for (i, r) in out.iter().enumerate() {
                if bad.contains(&i) {
                    let f = r.as_ref().unwrap_err();
                    assert_eq!(f.index, i, "round {round}");
                    assert_eq!(f.message, format!("injected at {i}"), "round {round}");
                } else {
                    assert_eq!(*r, Ok(i as u64 * 2), "round {round}");
                }
            }
            drop(out);
            // No item leaked or double-dropped, panicking or not.
            assert_eq!(Arc::strong_count(&token), 1, "round {round}");
        }
    }
}
