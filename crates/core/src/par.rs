//! A minimal parallel map over OS threads.
//!
//! Design-space sweeps are embarrassingly parallel (one independent
//! simulation per grid point over a shared read-only trace), so a
//! work-stealing counter over `std::thread::scope` is all that is needed
//! — no external runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, running up to the machine's available
/// parallelism, and returns results in input order.
///
/// # Examples
///
/// ```
/// use mlc_core::par::par_map;
///
/// let squares = par_map((0..100).collect(), |x: i32| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no poisoning: workers do not panic while holding the lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(item);
                *results[i]
                    .lock()
                    .expect("no poisoning: workers do not panic while holding the lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("scope joined all workers")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect(), |x: u64| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items() {
        let out = par_map(vec![String::from("a"), String::from("bb")], |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }
}
