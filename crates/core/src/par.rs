//! A minimal parallel map over OS threads.
//!
//! Design-space sweeps are embarrassingly parallel (one independent
//! simulation per grid point over a shared read-only trace), so a
//! work-stealing counter over `std::thread::scope` is all that is needed
//! — no external runtime. Workers claim contiguous *index ranges* from a
//! shared atomic cursor and write results straight into preallocated
//! slots: ranges are disjoint by construction, so there is no per-item
//! locking anywhere on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A raw pointer a scoped worker may share across threads.
///
/// Safety contract: every index a worker dereferences through this
/// pointer was claimed from the shared cursor exactly once, so no two
/// threads ever touch the same slot, and the pointee `Vec`s outlive the
/// `thread::scope` that joins all workers.
struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    /// The slot pointer for index `i`. A method (rather than direct
    /// field access) so worker closures capture the `Sync` wrapper, not
    /// the raw pointer itself.
    fn slot(&self, i: usize) -> *mut T {
        // SAFETY: callers only pass indices within the pointee `Vec`.
        unsafe { self.0.add(i) }
    }
}

unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

/// Applies `f` to every item, running up to the machine's available
/// parallelism, and returns results in input order.
///
/// Work is distributed in chunks of contiguous indices (several chunks
/// per worker, so stragglers still steal), and each index's result is
/// written directly into its preallocated output slot.
///
/// # Examples
///
/// ```
/// use mlc_core::par::par_map;
///
/// let squares = par_map((0..100).collect(), |x: i32| x * x);
/// assert_eq!(squares[7], 49);
/// assert_eq!(squares.len(), 100);
/// ```
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first);
/// items not yet processed are dropped normally.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // ~4 chunks per worker: coarse enough to amortise the atomic claim,
    // fine enough that an unlucky worker's tail can be stolen.
    let chunk = n.div_ceil(threads * 4).max(1);

    // Both vectors hold `Option`s so a worker can move items out and a
    // panic mid-run leaves every slot in a defined state for the normal
    // `Vec` drop during unwinding.
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    let item_slots = SyncPtr(items.as_mut_ptr());
    let result_slots = SyncPtr(results.as_mut_ptr());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    // SAFETY: `i` lies in a range this worker claimed from
                    // the cursor, so no other thread reads or writes
                    // either slot, and both vectors outlive the scope.
                    let item = unsafe { (*item_slots.slot(i)).take() }
                        .expect("each index is claimed exactly once");
                    let r = f(item);
                    unsafe { *result_slots.slot(i) = Some(r) };
                }
            });
        }
    });
    drop(items);
    results
        .into_iter()
        .map(|r| r.expect("every slot was filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let out = par_map((0..1000).collect(), |x: u64| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |x: i32| x + 1), vec![42]);
    }

    #[test]
    fn non_copy_items() {
        let out = par_map(vec![String::from("a"), String::from("bb")], |s| s.len());
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn processes_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = par_map((0..357u64).collect(), |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(calls.load(Ordering::Relaxed), 357);
        assert_eq!(out, (1..=357).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn propagates_panics() {
        par_map((0..64).collect(), |x: i32| {
            if x == 13 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn unprocessed_items_drop_cleanly_after_panic() {
        use std::sync::Arc;

        // Count drops across both completed results and abandoned items.
        #[derive(Clone)]
        struct Counted(#[allow(dead_code)] Arc<()>);

        let token = Arc::new(());
        let items: Vec<Counted> = (0..128).map(|_| Counted(Arc::clone(&token))).collect();
        let hits = AtomicUsize::new(0);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(items, |c: Counted| {
                if hits.fetch_add(1, Ordering::Relaxed) == 5 {
                    panic!("mid-run failure");
                }
                c
            })
        }));
        assert!(res.is_err());
        // Everything par_map touched has been dropped exactly once: only
        // our local handle on the token remains.
        assert_eq!(Arc::strong_count(&token), 1);
    }
}
