//! Engineering benchmarks (Criterion): simulator and generator
//! throughput. These are not paper figures — they track the performance
//! of the reproduction itself so design-space sweeps stay fast.
//!
//! Run with `cargo bench -p mlc-bench --bench sim_throughput`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use mlc_cache::{ByteSize, CacheConfig};
use mlc_sim::machine::{base_machine, single_level};
use mlc_sim::{HierarchySim, LevelCacheConfig, LevelConfig};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

const TRACE_LEN: usize = 200_000;

fn trace() -> Vec<TraceRecord> {
    MultiProgramGenerator::new(Preset::Vms1.config(42))
        .expect("preset is valid")
        .generate_records(TRACE_LEN)
}

fn three_level() -> mlc_sim::HierarchyConfig {
    let mut config = base_machine();
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(4))
        .block_bytes(32)
        .build()
        .unwrap();
    config
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));
    config
}

fn bench_simulation(c: &mut Criterion) {
    let records = trace();
    let mut group = c.benchmark_group("simulate");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    group.sample_size(20);

    let single = single_level(
        CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .build()
            .unwrap(),
        2,
        10.0,
        1.0,
    );
    group.bench_function("one_level", |b| {
        b.iter_batched(
            || HierarchySim::new(single.clone()).unwrap(),
            |mut sim| sim.run(records.iter().copied()),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("two_level_base_machine", |b| {
        b.iter_batched(
            || HierarchySim::new(base_machine()).unwrap(),
            |mut sim| sim.run(records.iter().copied()),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("three_level", |b| {
        b.iter_batched(
            || HierarchySim::new(three_level()).unwrap(),
            |mut sim| sim.run(records.iter().copied()),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_solo(c: &mut Criterion) {
    let records = trace();
    let l2 = CacheConfig::builder()
        .total(ByteSize::kib(512))
        .block_bytes(32)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("solo_functional");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    group.sample_size(20);
    group.bench_function("unified_512k", |b| {
        b.iter(|| {
            mlc_sim::solo::solo_stats(
                LevelCacheConfig::Unified(l2),
                records.iter().copied(),
                0,
            )
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    group.sample_size(20);
    group.bench_function("vms1_multiprogram", |b| {
        b.iter_batched(
            || MultiProgramGenerator::new(Preset::Vms1.config(42)).unwrap(),
            |mut gen| gen.generate_records(TRACE_LEN),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_solo, bench_generation);
criterion_main!(benches);
