//! Engineering benchmarks: simulator and generator throughput. These are
//! not paper figures — they track the performance of the reproduction
//! itself so design-space sweeps stay fast.
//!
//! Uses a small self-contained timing harness (no external benchmark
//! crate): each case is warmed up once, then run `MLC_BENCH_SAMPLES`
//! times (default 10), and we report min/median/mean wall time plus
//! records-per-second throughput.
//!
//! Run with `cargo bench -p mlc-bench --bench sim_throughput`.

use std::time::{Duration, Instant};

use mlc_cache::{ByteSize, CacheConfig};
use mlc_sim::machine::{base_machine, single_level};
use mlc_sim::{HierarchySim, LevelCacheConfig, LevelConfig};
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

const TRACE_LEN: usize = 200_000;

fn trace() -> Vec<TraceRecord> {
    MultiProgramGenerator::new(Preset::Vms1.config(42))
        .expect("preset is valid")
        .generate_records(TRACE_LEN)
}

fn three_level() -> mlc_sim::HierarchyConfig {
    let mut config = base_machine();
    let l3 = CacheConfig::builder()
        .total(ByteSize::mib(4))
        .block_bytes(32)
        .build()
        .unwrap();
    config
        .levels
        .push(LevelConfig::new("L3", LevelCacheConfig::Unified(l3), 6));
    config
}

fn samples() -> usize {
    std::env::var("MLC_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Times `f` (after one warmup call) and prints a one-line summary.
fn bench<T>(name: &str, elements: usize, mut f: impl FnMut() -> T) {
    let n = samples();
    std::hint::black_box(f()); // warmup
    let mut times: Vec<Duration> = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        std::hint::black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / n as u32;
    let throughput = elements as f64 / median.as_secs_f64() / 1.0e6;
    println!(
        "{name:<32} min {:>9.3?}  median {:>9.3?}  mean {:>9.3?}  {throughput:>8.2} Mrec/s",
        min, median, mean,
    );
}

fn main() {
    let records = trace();
    println!(
        "sim_throughput: {} records/case, {} samples/case\n",
        TRACE_LEN,
        samples()
    );

    let single = single_level(
        CacheConfig::builder()
            .total(ByteSize::kib(64))
            .block_bytes(32)
            .build()
            .unwrap(),
        2,
        10.0,
        1.0,
    );
    bench("simulate/one_level", TRACE_LEN, || {
        let mut sim = HierarchySim::new(single.clone()).unwrap();
        sim.run(records.iter().copied())
    });
    bench("simulate/two_level_base_machine", TRACE_LEN, || {
        let mut sim = HierarchySim::new(base_machine()).unwrap();
        sim.run(records.iter().copied())
    });
    bench("simulate/three_level", TRACE_LEN, || {
        let mut sim = HierarchySim::new(three_level()).unwrap();
        sim.run(records.iter().copied())
    });

    let l2 = CacheConfig::builder()
        .total(ByteSize::kib(512))
        .block_bytes(32)
        .build()
        .unwrap();
    bench("solo_functional/unified_512k", TRACE_LEN, || {
        mlc_sim::solo::solo_stats(LevelCacheConfig::Unified(l2), records.iter().copied(), 0)
    });

    bench("trace_generation/vms1_multiprogram", TRACE_LEN, || {
        MultiProgramGenerator::new(Preset::Vms1.config(42))
            .unwrap()
            .generate_records(TRACE_LEN)
    });
}
