//! Figure 5-3: cumulative break-even implementation times for eight-way
//! set associativity across the L2 design space. The paper: "for most of
//! the L2 sizes and cycle times of interest, a designer has between 10ns
//! and 20ns available for the implementation of eight-way set
//! associativity".
//!
//! Run with `cargo bench -p mlc-bench --bench fig5_3_breakeven_8way`.

use mlc_bench::figures::breakeven_figure;

fn main() {
    breakeven_figure("fig5_3", 8);
}
