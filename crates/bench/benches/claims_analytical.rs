//! The paper's in-text numerical claims (C1–C5 in DESIGN.md §5):
//!
//! * C1 — the solo miss ratio shrinks by ×~0.69 per L2 size doubling;
//! * C2 — Equation 2's `1/M_L1` factor is ≈10 for the 4 KB base L1;
//! * C3 — growing the L1 8× shifts the lines of constant performance
//!   right by ×1.74 (measured) vs ×2.04 (predicted by the model);
//! * C4 — each L1 doubling multiplies the L2 break-even implementation
//!   times by ×~1.45;
//! * C5 — each L1 doubling cuts the L1 miss ratio by ~28 %.
//!
//! Run with `cargo bench -p mlc-bench --bench claims_analytical`.

use mlc_bench::figures::{grids_for, paper_cycles, paper_sizes};
use mlc_bench::{banner, emit, gen_trace, geomean, mean, presets, records, warmup};
use mlc_cache::{ByteSize, CacheConfig};
use mlc_core::{
    constant_performance_lines, mean_line_shift, predicted_isoperf_shift, size_ladder,
    BreakEvenInputs, PowerLawMissModel, Table,
};
use mlc_sim::machine::BaseMachine;
use mlc_sim::{simulate_with_warmup, solo, LevelCacheConfig};

fn main() {
    banner("claims", "the paper's in-text numerical claims (C1-C5)");
    let n = records();
    let w = warmup(n);
    let traces: Vec<_> = presets().iter().map(|&p| gen_trace(p, n)).collect();

    let mut summary = Table::new(
        "claims: paper value vs measured",
        &["claim", "paper", "measured", "note"],
    );

    // ---- C1: solo miss ratio per-doubling factor --------------------
    let sizes = size_ladder(ByteSize::kib(8), ByteSize::mib(4));
    let mut factors = Vec::new();
    for trace in &traces {
        let points: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&s| {
                let cache = CacheConfig::builder()
                    .total(s)
                    .block_bytes(32)
                    .build()
                    .expect("ladder sizes are valid");
                let miss = solo::solo_read_miss_ratio(
                    LevelCacheConfig::Unified(cache),
                    trace.iter().copied(),
                    w,
                )
                .unwrap_or(f64::NAN);
                (s.get() as f64, miss)
            })
            .collect();
        if let Some(fit) = PowerLawMissModel::fit_declining(&points, 0.10) {
            factors.push(fit.doubling_factor());
        }
    }
    let c1 = mean(&factors);
    summary.row([
        "C1 solo miss x/doubling",
        "0.69",
        &format!("{c1:.2}"),
        "fit over the declining region; finite traces add a compulsory-miss floor",
    ]);

    // ---- C2: Equation 2's 1/M_L1 factor -----------------------------
    let m_l1s: Vec<f64> = traces
        .iter()
        .map(|t| {
            simulate_with_warmup(BaseMachine::new().build().unwrap(), t.iter().copied(), w)
                .unwrap()
                .global_read_miss_ratio(0)
                .unwrap()
        })
        .collect();
    let m_l1 = mean(&m_l1s);
    summary.row([
        "C2 1/M_L1 leverage (4KB L1)",
        "~10",
        &format!("{:.1}", 1.0 / m_l1),
        "M_L1 is the base machine's global read miss ratio",
    ]);

    // ---- C3: iso-performance shift for an 8x L1 ---------------------
    let sizes4 = paper_sizes();
    let cycles = paper_cycles();
    let mut big = BaseMachine::new();
    big.l1_total(ByteSize::kib(32));
    let grids_04 = grids_for(&BaseMachine::new(), &sizes4, &cycles, 1);
    let grids_32 = grids_for(&big, &sizes4, &cycles, 1);
    // The paper compares each machine's lines *relative to its own
    // optimum* (Figures 4-2 and 4-3 are separately normalised): the
    // better L1 shifts the whole family of constant-relative-performance
    // lines toward larger sizes. Measure the horizontal displacement of
    // matching relative levels.
    let mut shifts = Vec::new();
    for (g4, g32) in grids_04.iter().zip(&grids_32) {
        let levels: Vec<f64> = (2..=14).map(|i| 1.0 + 0.1 * i as f64).collect();
        let lines4 = constant_performance_lines(g4, &levels);
        let lines32 = constant_performance_lines(g32, &levels);
        if let Some(s) = mean_line_shift(&lines4, &lines32) {
            shifts.push(s);
        }
    }
    let c3_measured = geomean(&shifts);

    // ---- C5 (needed for C3's prediction): L1 doubling factor --------
    let l1_sizes = [4u64, 8, 16, 32];
    let mut l1_misses = Vec::new();
    for &kib in &l1_sizes {
        let per_trace: Vec<f64> = traces
            .iter()
            .map(|t| {
                let config = BaseMachine::new()
                    .l1_total(ByteSize::kib(kib))
                    .build()
                    .unwrap();
                simulate_with_warmup(config, t.iter().copied(), w)
                    .unwrap()
                    .global_read_miss_ratio(0)
                    .unwrap()
            })
            .collect();
        l1_misses.push(mean(&per_trace));
    }
    let l1_factors: Vec<f64> = l1_misses.windows(2).map(|p| p[1] / p[0]).collect();
    let c5 = geomean(&l1_factors);

    // Second view of C3: the shift of the slope *structure*, normalised
    // per machine so the global 1/M_L1 slope scaling cancels.
    let mut structure_shifts = Vec::new();
    for (g4, g32) in grids_04.iter().zip(&grids_32) {
        use mlc_core::{slope_boundary_size, slope_profile};
        let levels: Vec<f64> = (2..=30).map(|i| 1.0 + 0.1 * i as f64).collect();
        let p4 = slope_profile(g4, &constant_performance_lines(g4, &levels));
        let p32 = slope_profile(g32, &constant_performance_lines(g32, &levels));
        if let (Some(b4), Some(b32)) = (
            slope_boundary_size(&p4, 0.5),
            slope_boundary_size(&p32, 0.5),
        ) {
            structure_shifts.push(b32 / b4);
        }
    }
    let c3_structure = geomean(&structure_shifts);

    let solo_theta = -(c1.log2());
    let c3_predicted = predicted_isoperf_shift(8.0, c5, solo_theta);
    summary.row([
        "C3 line shift for 8x L1 (matched rel levels)",
        "1.74",
        &format!("{c3_measured:.2}"),
        "displacement at equal relative level; <1 when line separation dominates",
    ]);
    summary.row([
        "C3 slope-structure shift for 8x L1",
        "1.74",
        &format!("{c3_structure:.2}"),
        "ratio of shape-normalised steep-region boundaries (see EXPERIMENTS.md)",
    ]);
    summary.row([
        "C3 iso-perf shift for 8x L1 (model)",
        "2.04",
        &format!("{c3_predicted:.2}"),
        "(1/f_L1)^(log2(8)/(1+theta)) with measured f_L1 and theta",
    ]);

    // ---- C4: break-even time scaling per L1 doubling ----------------
    // Equation 3 break-even for 2-way at 512 KB, per L1 size.
    let dm512 = CacheConfig::builder()
        .total(ByteSize::kib(512))
        .block_bytes(32)
        .build()
        .unwrap();
    let w2_512 = CacheConfig::builder()
        .total(ByteSize::kib(512))
        .block_bytes(32)
        .ways(2)
        .build()
        .unwrap();
    let delta_m: Vec<f64> = traces
        .iter()
        .map(|t| {
            let m1 =
                solo::solo_read_miss_ratio(LevelCacheConfig::Unified(dm512), t.iter().copied(), w)
                    .unwrap();
            let m2 =
                solo::solo_read_miss_ratio(LevelCacheConfig::Unified(w2_512), t.iter().copied(), w)
                    .unwrap();
            m1 - m2
        })
        .collect();
    let dm_mean = mean(&delta_m);
    let be_times: Vec<f64> = l1_misses
        .iter()
        .map(|&m| {
            BreakEvenInputs {
                m_l1_global: m,
                mm_read_time_ns: 270.0,
            }
            .incremental_break_even_ns(dm_mean)
        })
        .collect();
    let be_factors: Vec<f64> = be_times.windows(2).map(|p| p[1] / p[0]).collect();
    let c4 = geomean(&be_factors);
    summary.row([
        "C4 break-even time x per L1 doubling",
        "1.45",
        &format!("{c4:.2}"),
        "Equation 3 with measured M_L1(L1 size); equals 1/C5 by construction",
    ]);

    summary.row([
        "C5 L1 miss x per L1 doubling",
        "0.72",
        &format!("{c5:.2}"),
        &format!(
            "L1 global miss: {}",
            l1_misses
                .iter()
                .map(|m| format!("{m:.3}"))
                .collect::<Vec<_>>()
                .join(" -> ")
        ),
    ]);

    // ---- Equation 2 self-consistency: predicted vs measured slope ----
    // The break-even slope of the constant-performance lines should equal
    // ΔM_L2(global) · n_MM / M_L1 (Equation 2, finite-difference form).
    // Compare at a mid-range segment of the 4KB-L1 grid.
    {
        use mlc_core::slopes_cycles_per_doubling;
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        let seg = ByteSize::kib(32);
        for g in &grids_04 {
            let levels: Vec<f64> = (2..=20).map(|i| 1.0 + 0.1 * i as f64).collect();
            for line in constant_performance_lines(g, &levels) {
                for (at, slope) in slopes_cycles_per_doubling(&line) {
                    if at == seg {
                        measured.push(slope);
                    }
                }
            }
            let i = g.sizes.iter().position(|&s| s == seg).expect("32KB swept");
            let dm = g.l2_global[i] - g.l2_global[i + 1];
            predicted.push(dm * 27.0 / g.m_l1_global);
        }
        summary.row([
            "Eq2 slope at 32->64KB (measured)",
            "(consistency)",
            &format!("{:.2}", mean(&measured)),
            "cycles of t_L2 slack per doubling, from the iso-performance lines",
        ]);
        summary.row([
            "Eq2 slope at 32->64KB (predicted)",
            "(consistency)",
            &format!("{:.2}", mean(&predicted)),
            "dM_L2 * n_MM / M_L1 from measured miss ratios",
        ]);
    }

    emit(&summary, "claims_analytical");
}
