//! Figure 5-1: cumulative break-even implementation times for two-way
//! set associativity across the L2 design space.
//!
//! Run with `cargo bench -p mlc-bench --bench fig5_1_breakeven_2way`.

use mlc_bench::figures::breakeven_figure;

fn main() {
    breakeven_figure("fig5_1", 2);
}
