//! Figure 3-2: L2 miss ratios with a substantially larger (32 KB) L1.
//! The perturbation region — where the upstream cache disturbs the L2
//! global miss ratio away from the solo ratio — extends to larger L2
//! sizes than in Figure 3-1.
//!
//! Run with `cargo bench -p mlc-bench --bench fig3_2_miss_ratios_32k`.

use mlc_bench::figures::miss_ratio_figure;
use mlc_cache::ByteSize;

fn main() {
    miss_ratio_figure("fig3_2", ByteSize::kib(32));
}
