//! Figure 4-3: lines of constant performance with a 32 KB L1.
//!
//! The better L1 (a) spreads the lines apart — the L2 matters less — and
//! (b) shifts the whole family toward larger sizes. The paper measures a
//! x1.74 shift for the 8x L1 increase against a predicted x2.04; the
//! shift measurement itself lives in the `claims_analytical` bench.
//!
//! Run with `cargo bench -p mlc-bench --bench fig4_3_constant_perf_32k`.

use mlc_bench::figures::{constant_perf_figure, speed_size_figure};
use mlc_cache::ByteSize;
use mlc_sim::machine::BaseMachine;

fn main() {
    let mut base = BaseMachine::new();
    base.l1_total(ByteSize::kib(32));
    let grid = speed_size_figure(
        "fig4_3_grid",
        &base,
        "lines of constant performance, 32KB L1",
    );
    // Levels up to 4.0x cover the whole design space, including the
    // steep small-cache corner (the paper plots 1.1 through 2.6).
    let levels: Vec<f64> = (1..=30).map(|i| 1.0 + 0.1 * i as f64).collect();
    constant_perf_figure("fig4_3", &grid, &levels);
}
