//! Figure 3-1: L2 local/global/solo read miss ratios versus L2 size,
//! with the base machine's 4 KB split L1.
//!
//! Run with `cargo bench -p mlc-bench --bench fig3_1_miss_ratios`.

use mlc_bench::figures::miss_ratio_figure;
use mlc_cache::ByteSize;

fn main() {
    miss_ratio_figure("fig3_1", ByteSize::kib(4));
}
