//! Extension experiment: memory traffic versus L2 associativity.
//!
//! The paper (§5): "Given a 4KB L1 cache, an eight-way set-associative
//! 8KB L2 cache is substantially better at reducing the memory traffic
//! than a direct-mapped cache of the same size." This bench measures
//! exactly that — bytes moved between the L2 and main memory (fetches
//! plus write-backs) — across sizes and associativities, plus the
//! victim-buffer alternative.
//!
//! Run with `cargo bench -p mlc-bench --bench ext_memory_traffic`.

use mlc_bench::{banner, emit, gen_trace, mean, presets, records, warmup};
use mlc_cache::{ByteSize, CacheConfig};
use mlc_core::Table;
use mlc_sim::machine::BaseMachine;
use mlc_sim::{simulate_with_warmup, HierarchyConfig, LevelCacheConfig};
use mlc_trace::TraceRecord;

fn l2_traffic(config: HierarchyConfig, traces: &[Vec<TraceRecord>], w: usize) -> f64 {
    mean(
        &traces
            .iter()
            .map(|t| {
                let r = simulate_with_warmup(config.clone(), t.iter().copied(), w).unwrap();
                r.levels[1].traffic_bytes() as f64
            })
            .collect::<Vec<_>>(),
    )
}

fn machine(size: ByteSize, ways: u32, victim: u32) -> HierarchyConfig {
    let mut config = BaseMachine::new().build().expect("base is valid");
    let mut builder = CacheConfig::builder();
    builder.total(size).block_bytes(32).ways(ways);
    if victim > 0 {
        builder.victim_entries(victim);
    }
    config.levels[1].cache = LevelCacheConfig::Unified(builder.build().expect("valid"));
    config
}

fn main() {
    banner(
        "ext_memory_traffic",
        "L2-to-memory traffic vs associativity (paper section 5's traffic claim)",
    );
    let n = records();
    let w = warmup(n);
    let traces: Vec<_> = presets().iter().map(|&p| gen_trace(p, n)).collect();

    let mut table = Table::new(
        "memory traffic (bytes below L2, relative to direct-mapped at each size)",
        &[
            "L2 size",
            "DM (MB)",
            "2-way",
            "8-way",
            "DM + 8-entry victim",
        ],
    );
    for kib in [8u64, 32, 128, 512] {
        let size = ByteSize::kib(kib);
        let dm = l2_traffic(machine(size, 1, 0), &traces, w);
        let w2 = l2_traffic(machine(size, 2, 0), &traces, w);
        let w8 = l2_traffic(machine(size, 8, 0), &traces, w);
        let vb = l2_traffic(machine(size, 1, 8), &traces, w);
        table.row([
            size.to_string(),
            format!("{:.1}", dm / (1 << 20) as f64),
            format!("{:.3}", w2 / dm),
            format!("{:.3}", w8 / dm),
            format!("{:.3}", vb / dm),
        ]);
    }
    emit(&table, "ext_memory_traffic");
    println!(
        "shape check: 8-way should cut traffic substantially at 8KB (the paper's\n\
         explicit claim), with the advantage shrinking as capacity misses start\n\
         to dominate; a small victim buffer should recover much of the 2-way\n\
         benefit at direct-mapped cycle times (Jouppi's observation).\n"
    );
}
