//! Figure 4-4: lines of constant performance with main memory twice as
//! slow (360/200/240 ns). Doubling the memory latency shifts the slope
//! regions right by roughly a factor of two in cache size — exactly as
//! if the CPU cycle time had halved.
//!
//! Run with `cargo bench -p mlc-bench --bench fig4_4_slow_memory`.

use mlc_bench::figures::{constant_perf_figure, speed_size_figure};
use mlc_sim::machine::BaseMachine;

fn main() {
    let mut base = BaseMachine::new();
    base.memory_scale(2.0);
    let grid = speed_size_figure(
        "fig4_4_grid",
        &base,
        "lines of constant performance, 2x slower main memory",
    );
    // Levels up to 4.0x cover the whole design space, including the
    // steep small-cache corner (the paper plots 1.1 through 2.6).
    let levels: Vec<f64> = (1..=30).map(|i| 1.0 + 0.1 * i as f64).collect();
    constant_perf_figure("fig4_4", &grid, &levels);
}
