//! Extension experiment (not a paper figure): when does a *third* level
//! pay? The paper analyses two-level hierarchies but frames the problem
//! for "two or more levels" and §6 predicts deeper hierarchies as the
//! CPU–memory gap grows. This bench quantifies that: for increasingly
//! slow main memory (the growing gap), compare the best two-level design
//! against the same design plus a large, slow L3.
//!
//! Run with `cargo bench -p mlc-bench --bench ext_three_level`.

use mlc_bench::{banner, emit, gen_trace, mean, presets, records, warmup};
use mlc_cache::{ByteSize, CacheConfig};
use mlc_core::Table;
use mlc_sim::machine::BaseMachine;
use mlc_sim::{simulate_with_warmup, LevelCacheConfig, LevelConfig};
use mlc_trace::TraceRecord;

fn two_level(memory_scale: f64) -> mlc_sim::HierarchyConfig {
    BaseMachine::new()
        .l2_total(ByteSize::kib(64))
        .l2_cycles(2)
        .memory_scale(memory_scale)
        .build()
        .expect("valid")
}

fn three_level(memory_scale: f64, l3: ByteSize, l3_cycles: u64) -> mlc_sim::HierarchyConfig {
    let mut config = two_level(memory_scale);
    let l3_cache = CacheConfig::builder()
        .total(l3)
        .block_bytes(32)
        .build()
        .expect("valid");
    config.levels.push(LevelConfig::new(
        "L3",
        LevelCacheConfig::Unified(l3_cache),
        l3_cycles,
    ));
    config
}

fn mean_cycles(config: &mlc_sim::HierarchyConfig, traces: &[Vec<TraceRecord>], w: usize) -> f64 {
    mean(
        &traces
            .iter()
            .map(|t| {
                simulate_with_warmup(config.clone(), t.iter().copied(), w)
                    .unwrap()
                    .total_cycles as f64
            })
            .collect::<Vec<_>>(),
    )
}

fn main() {
    banner(
        "ext_three_level",
        "extension: third-level caches vs the CPU-memory gap",
    );
    let n = records();
    let w = warmup(n);
    let traces: Vec<_> = presets().iter().map(|&p| gen_trace(p, n)).collect();

    let mut table = Table::new(
        "two-level (fast 64KB L2) vs + 1MB L3 @6cyc, by memory slowdown",
        &[
            "memory scale",
            "2-level cycles",
            "3-level cycles",
            "L3 speedup",
        ],
    );
    for scale in [1.0, 2.0, 4.0, 8.0] {
        let two = mean_cycles(&two_level(scale), &traces, w);
        let three = mean_cycles(&three_level(scale, ByteSize::mib(1), 6), &traces, w);
        table.row([
            format!("{scale}x"),
            format!("{two:.0}"),
            format!("{three:.0}"),
            format!("{:.3}", two / three),
        ]);
    }
    emit(&table, "ext_three_level");
    println!(
        "shape check: the L3's speedup should grow with the memory slowdown —\n\
         the paper's §6 prediction that deeper hierarchies become attractive as\n\
         the CPU-memory gap widens.\n"
    );

    // Secondary sweep: L3 size at a fixed 4x-slow memory.
    let mut size_table = Table::new(
        "L3 size sweep at 4x-slow memory (L3 @6 cycles)",
        &["L3 size", "3-level cycles", "speedup vs 2-level"],
    );
    let two = mean_cycles(&two_level(4.0), &traces, w);
    for kib in [256u64, 512, 1024, 2048, 4096] {
        let three = mean_cycles(&three_level(4.0, ByteSize::kib(kib), 6), &traces, w);
        size_table.row([
            ByteSize::kib(kib).to_string(),
            format!("{three:.0}"),
            format!("{:.3}", two / three),
        ]);
    }
    emit(&size_table, "ext_three_level_sizes");
}
