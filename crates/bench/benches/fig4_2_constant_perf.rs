//! Figure 4-2: lines of constant performance across the L2 design space
//! (4 KB L1), with the paper's slope-region contours at 0.75 / 1.5 / 3
//! CPU cycles per size doubling.
//!
//! Run with `cargo bench -p mlc-bench --bench fig4_2_constant_perf`.

use mlc_bench::figures::{constant_perf_figure, speed_size_figure};
use mlc_sim::machine::BaseMachine;

fn main() {
    let grid = speed_size_figure(
        "fig4_2_grid",
        &BaseMachine::new(),
        "lines of constant performance, 4KB L1",
    );
    // Levels up to 4.0x cover the whole design space, including the
    // steep small-cache corner (the paper plots 1.1 through 2.6).
    let levels: Vec<f64> = (1..=30).map(|i| 1.0 + 0.1 * i as f64).collect();
    constant_perf_figure("fig4_2", &grid, &levels);
}
