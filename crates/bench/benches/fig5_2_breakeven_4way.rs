//! Figure 5-2: cumulative break-even implementation times for four-way
//! set associativity across the L2 design space.
//!
//! Run with `cargo bench -p mlc-bench --bench fig5_2_breakeven_4way`.

use mlc_bench::figures::breakeven_figure;

fn main() {
    breakeven_figure("fig5_2", 4);
}
