//! C6: the single-level performance bound (the paper's §1 motivation).
//!
//! Under a fixed technology rule — larger SRAM caches cycle slower — the
//! best achievable single-level system is compared against two-level
//! hierarchies built from the *same* technology. The paper's claim: past
//! a certain point no single-level parameter change helps, while a
//! second level keeps improving performance.
//!
//! The technology rule used here (documented in DESIGN.md §5/C6):
//! a cache of size S cycles in `1 + round(0.7 · log2(S / 4 KB))` CPU
//! cycles — 4 KB runs at CPU speed on-chip; 4 MB takes 8 cycles off-chip.
//!
//! Run with `cargo bench -p mlc-bench --bench single_vs_multi`.

use mlc_bench::{banner, emit, gen_trace, mean, presets, records, warmup};
use mlc_cache::{ByteSize, CacheConfig};
use mlc_core::{size_ladder, Table};
use mlc_sim::machine::{single_level, BaseMachine};
use mlc_sim::simulate_with_warmup;

/// The assumed SRAM scaling rule: access time in CPU cycles as a
/// function of cache size.
fn tech_cycles(size: ByteSize) -> u64 {
    let doublings = (size.get() as f64 / 4096.0).log2();
    1 + (0.7 * doublings).round() as u64
}

fn main() {
    banner(
        "single_vs_multi",
        "C6: single-level bound vs two-level hierarchies, shared technology",
    );
    let n = records();
    let w = warmup(n);
    let sizes = size_ladder(ByteSize::kib(4), ByteSize::mib(4));

    let mut table = Table::new(
        "single-level vs two-level execution time (cycles, mean over traces)",
        &[
            "cache size",
            "t(S) cycles",
            "single-level",
            "two-level (L2=S)",
        ],
    );

    let mut best_single = f64::INFINITY;
    let mut best_multi = f64::INFINITY;
    let traces: Vec<_> = presets().iter().map(|&p| gen_trace(p, n)).collect();
    for &size in &sizes {
        let cycles = tech_cycles(size);
        let single: Vec<f64> = traces
            .iter()
            .map(|t| {
                let cache = CacheConfig::builder()
                    .total(size)
                    .block_bytes(32)
                    .build()
                    .expect("ladder sizes are valid");
                simulate_with_warmup(single_level(cache, cycles, 10.0, 1.0), t.iter().copied(), w)
                    .unwrap()
                    .total_cycles as f64
            })
            .collect();
        let multi: Vec<f64> = traces
            .iter()
            .map(|t| {
                let config = BaseMachine::new()
                    .l2_total(size)
                    .l2_cycles(cycles)
                    .build()
                    .expect("ladder sizes are valid");
                simulate_with_warmup(config, t.iter().copied(), w)
                    .unwrap()
                    .total_cycles as f64
            })
            .collect();
        let s = mean(&single);
        let m = mean(&multi);
        best_single = best_single.min(s);
        best_multi = best_multi.min(m);
        table.row([
            size.to_string(),
            cycles.to_string(),
            format!("{s:.0}"),
            format!("{m:.0}"),
        ]);
    }
    emit(&table, "single_vs_multi");

    println!(
        "best single-level: {best_single:.0} cycles\n\
         best two-level:    {best_multi:.0} cycles\n\
         two-level advantage: {:.1}%\n",
        100.0 * (best_single - best_multi) / best_single
    );
    println!(
        "shape check: the single-level curve is U-shaped — small caches miss\n\
         too much, large ones cycle too slowly — and its minimum sits above\n\
         the two-level minimum, which pairs a fast 4KB L1 with a large L2.\n"
    );
}
