//! Engineering benchmark: exhaustive vs one-pass grid sweep engines,
//! plus per-stage pipeline throughput.
//!
//! Times `Explorer::l2_grid_with` under both engines on the acceptance
//! grid (8 L2 sizes × 24 cycle times — one full-width lane pass per
//! size), verifies the engines agree cycle-exact, and emits a
//! machine-readable `BENCH_sweep.json` (schema `mlc-bench/1`, rendered
//! by `mlc-obs`) at the workspace root so the repo's perf trajectory is
//! tracked run over run. A second report, `BENCH_ingest.json`, breaks
//! the pipeline into stages — binary trace ingestion (`Read`-based vs
//! zero-copy slice decode), the solo-miss stack pass (serial vs
//! set-sharded), and the grid sweep — so stage-level regressions are
//! visible even when the end-to-end number holds.
//!
//! Environment knobs:
//!
//! * `MLC_SWEEP_RECORDS` — references per trace (default 200,000).
//! * `MLC_SWEEP_CYCLES` — cycle-time grid depth (default 24).
//! * `MLC_BENCH_SAMPLES` — timed repetitions per engine (default 3).
//! * `MLC_BENCH_OUT` — where to write the sweep JSON (default
//!   `<workspace>/BENCH_sweep.json`).
//! * `MLC_BENCH_INGEST_OUT` — where to write the per-stage JSON
//!   (default `<workspace>/BENCH_ingest.json`).
//!
//! Run with `cargo bench -p mlc-bench --bench sweep_engines`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mlc_cache::ByteSize;
use mlc_core::{size_ladder, verify_grids, DesignGrid, Explorer, SoloMissSweep, SweepEngine};
use mlc_obs::json::JsonValue;
use mlc_sim::machine::BaseMachine;
use mlc_trace::binary::{read_binary_with, write_compressed};
use mlc_trace::slice::read_binary_slice_with;
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::FaultPolicy;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MLC_BENCH_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
}

fn ingest_out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MLC_BENCH_INGEST_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest.json")
}

/// Best (minimum) wall time of `samples` runs of `f` (after one warmup
/// run); see `time_engine` for why minimum and not median.
fn time_stage<R>(samples: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f()); // warmup
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn save(path: &std::path::Path, json: &str) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(path, json) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}

/// Best (minimum) wall time of `samples` runs (after one warmup run),
/// plus the grid from the last run. The work is deterministic, so the
/// minimum is the standard low-variance estimator on shared runners:
/// scheduling noise only ever *adds* time, and a median drifts with
/// ambient load while the minimum converges on the engine's real cost.
fn time_engine(
    engine: SweepEngine,
    explorer: &Explorer<'_>,
    base: &BaseMachine,
    sizes: &[ByteSize],
    cycles: &[u64],
    samples: usize,
) -> (Duration, DesignGrid) {
    let mut grid = explorer.l2_grid_with(engine, base, sizes, cycles, 1); // warmup
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        grid = std::hint::black_box(explorer.l2_grid_with(engine, base, sizes, cycles, 1));
        best = best.min(start.elapsed());
    }
    (best, grid)
}

fn main() {
    let records = env_usize("MLC_SWEEP_RECORDS", 200_000);
    let samples = env_usize("MLC_BENCH_SAMPLES", 3).max(1);
    let warmup = records / 4;
    let sizes = size_ladder(ByteSize::kib(16), ByteSize::mib(2)); // 8 sizes
                                                                  // 24 cycle times: exactly one full-width pass of the runtime lane
                                                                  // dispatch per size — the widest monomorphized width, so the shared
                                                                  // functional pass amortizes over the deepest cycle ladder.
    let cycles: Vec<u64> = (1..=env_usize("MLC_SWEEP_CYCLES", 24) as u64).collect();
    let points = sizes.len() * cycles.len();

    let trace = MultiProgramGenerator::new(Preset::Vms1.config(42))
        .expect("preset is valid")
        .generate_records(records);
    let explorer = Explorer::new(&trace, warmup);
    let base = BaseMachine::new();

    println!(
        "sweep_engines: {} sizes x {} cycle times, {records} records, {samples} samples/engine\n",
        sizes.len(),
        cycles.len()
    );

    let (t_ex, grid_ex) = time_engine(
        SweepEngine::Exhaustive,
        &explorer,
        &base,
        &sizes,
        &cycles,
        samples,
    );
    let (t_op, grid_op) = time_engine(
        SweepEngine::OnePass,
        &explorer,
        &base,
        &sizes,
        &cycles,
        samples,
    );

    verify_grids(&grid_ex, &grid_op).expect("engines must agree cycle-exact");

    let speedup = t_ex.as_secs_f64() / t_op.as_secs_f64();
    // Effective throughput: grid points priced per second of wall time,
    // scaled by trace length (one "record" = one reference priced at one
    // grid point).
    let rps = |t: Duration| (points * records) as f64 / t.as_secs_f64();
    println!(
        "exhaustive  best   {t_ex:>9.3?}  {:>10.2} Mrec/s",
        rps(t_ex) / 1e6
    );
    println!(
        "onepass     best   {t_op:>9.3?}  {:>10.2} Mrec/s",
        rps(t_op) / 1e6
    );
    println!("speedup     {speedup:.2}x (engines verified cycle-exact)");

    let engine_entry = |t: Duration| {
        JsonValue::object([
            ("wall_s".into(), t.as_secs_f64().into()),
            ("records_per_s".into(), rps(t).round().into()),
        ])
    };
    let json = JsonValue::object([
        ("schema".into(), "mlc-bench/1".into()),
        ("bench".into(), "sweep_engines".into()),
        ("records".into(), (records as u64).into()),
        ("warmup".into(), (warmup as u64).into()),
        (
            "grid".into(),
            JsonValue::object([
                ("sizes".into(), (sizes.len() as u64).into()),
                ("cycles".into(), (cycles.len() as u64).into()),
                ("ways".into(), 1u64.into()),
            ]),
        ),
        ("samples".into(), (samples as u64).into()),
        ("exhaustive".into(), engine_entry(t_ex)),
        ("onepass".into(), engine_entry(t_op)),
        (
            "speedup".into(),
            ((speedup * 1000.0).round() / 1000.0).into(),
        ),
        ("verified_cycle_exact".into(), true.into()),
    ])
    .to_string_pretty();
    save(&out_path(), &json);

    // ------------------------------------------------------------------
    // Per-stage throughput: how fast each stage of the pipeline moves
    // records on this workload — ingestion (Read-based vs zero-copy
    // slice decode), the Mattson stack pass (serial vs set-sharded),
    // and the grid sweep from above.
    // ------------------------------------------------------------------
    println!("\nper-stage throughput ({records} records):");
    let stage_rps = |t: Duration, n: usize| n as f64 / t.as_secs_f64();
    let stage_entry = |t: Duration, n: usize| {
        JsonValue::object([
            ("wall_s".into(), t.as_secs_f64().into()),
            ("records_per_s".into(), stage_rps(t, n).round().into()),
        ])
    };

    // Ingest: decode the compressed binary layout from memory, so both
    // paths read identical bytes and the difference is decode machinery.
    let mut encoded = Vec::new();
    write_compressed(&mut encoded, &trace).expect("in-memory encode");
    let t_ingest_read = time_stage(samples, || {
        read_binary_with(&encoded[..], FaultPolicy::Fail, None).expect("clean payload")
    });
    let t_ingest_slice = time_stage(samples, || {
        read_binary_slice_with(&encoded, FaultPolicy::Fail, None).expect("clean payload")
    });
    let ingest_speedup = t_ingest_read.as_secs_f64() / t_ingest_slice.as_secs_f64();
    println!(
        "ingest  read  {:>10.2} Mrec/s   slice {:>10.2} Mrec/s   speedup {ingest_speedup:.2}x",
        stage_rps(t_ingest_read, records) / 1e6,
        stage_rps(t_ingest_slice, records) / 1e6,
    );

    // Stack: the solo-miss stack sweep over the same size ladder, at the
    // grid's direct-mapped 32-byte-block geometry. The shard count is
    // what `run_sharded` would pick on this machine; serial and sharded
    // results are bit-identical (asserted in mlc-core's tests).
    let shards = std::thread::available_parallelism()
        .map(|v| v.get() as u64)
        .unwrap_or(1)
        .next_power_of_two()
        .min(SoloMissSweep::max_shards(32, 1, &sizes));
    let t_stack_serial = time_stage(samples, || {
        SoloMissSweep::run(32, 1, &sizes, &trace, warmup)
    });
    let t_stack_sharded = time_stage(samples, || {
        SoloMissSweep::run_sharded(32, 1, &sizes, &trace, warmup)
    });
    let stack_speedup = t_stack_serial.as_secs_f64() / t_stack_sharded.as_secs_f64();
    println!(
        "stack   serial{:>10.2} Mrec/s   shard {:>10.2} Mrec/s   speedup {stack_speedup:.2}x ({shards} shards)",
        stage_rps(t_stack_serial, records) / 1e6,
        stage_rps(t_stack_sharded, records) / 1e6,
    );

    let stage = |a: &str, ta: Duration, na: usize, b: &str, tb: Duration, nb: usize| {
        JsonValue::object([
            (a.into(), stage_entry(ta, na)),
            (b.into(), stage_entry(tb, nb)),
            (
                "speedup".into(),
                ((ta.as_secs_f64() / tb.as_secs_f64() * 1000.0).round() / 1000.0).into(),
            ),
        ])
    };
    let mut stack_stage = stage(
        "serial",
        t_stack_serial,
        records,
        "sharded",
        t_stack_sharded,
        records,
    );
    if let JsonValue::Object(fields) = &mut stack_stage {
        fields.push(("shards".into(), shards.into()));
    }
    let ingest_json = JsonValue::object([
        ("schema".into(), "mlc-bench/1".into()),
        ("bench".into(), "ingest_stages".into()),
        ("records".into(), (records as u64).into()),
        ("warmup".into(), (warmup as u64).into()),
        ("samples".into(), (samples as u64).into()),
        (
            "stages".into(),
            JsonValue::object([
                (
                    "ingest".into(),
                    stage(
                        "read",
                        t_ingest_read,
                        records,
                        "slice",
                        t_ingest_slice,
                        records,
                    ),
                ),
                ("stack".into(), stack_stage),
                (
                    "sweep".into(),
                    stage(
                        "exhaustive",
                        t_ex,
                        points * records,
                        "onepass",
                        t_op,
                        points * records,
                    ),
                ),
            ]),
        ),
    ])
    .to_string_pretty();
    save(&ingest_out_path(), &ingest_json);
}
