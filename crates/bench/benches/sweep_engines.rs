//! Engineering benchmark: exhaustive vs one-pass grid sweep engines.
//!
//! Times `Explorer::l2_grid_with` under both engines on the acceptance
//! grid (8 L2 sizes × 6 cycle times), verifies the engines agree
//! cycle-exact, and emits a machine-readable `BENCH_sweep.json`
//! (schema `mlc-bench/1`, rendered by `mlc-obs`) at the workspace root
//! so the repo's perf trajectory is tracked run over run.
//!
//! Environment knobs:
//!
//! * `MLC_SWEEP_RECORDS` — references per trace (default 200,000).
//! * `MLC_BENCH_SAMPLES` — timed repetitions per engine (default 3).
//! * `MLC_BENCH_OUT` — where to write the JSON (default
//!   `<workspace>/BENCH_sweep.json`).
//!
//! Run with `cargo bench -p mlc-bench --bench sweep_engines`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mlc_cache::ByteSize;
use mlc_core::{size_ladder, verify_grids, DesignGrid, Explorer, SweepEngine};
use mlc_obs::json::JsonValue;
use mlc_sim::machine::BaseMachine;
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn out_path() -> PathBuf {
    if let Ok(p) = std::env::var("MLC_BENCH_OUT") {
        return PathBuf::from(p);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
}

/// Median wall time of `samples` runs (after one warmup run), plus the
/// grid from the last run.
fn time_engine(
    engine: SweepEngine,
    explorer: &Explorer<'_>,
    base: &BaseMachine,
    sizes: &[ByteSize],
    cycles: &[u64],
    samples: usize,
) -> (Duration, DesignGrid) {
    let mut grid = explorer.l2_grid_with(engine, base, sizes, cycles, 1); // warmup
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        grid = std::hint::black_box(explorer.l2_grid_with(engine, base, sizes, cycles, 1));
        times.push(start.elapsed());
    }
    times.sort();
    (times[times.len() / 2], grid)
}

fn main() {
    let records = env_usize("MLC_SWEEP_RECORDS", 200_000);
    let samples = env_usize("MLC_BENCH_SAMPLES", 3).max(1);
    let warmup = records / 4;
    let sizes = size_ladder(ByteSize::kib(16), ByteSize::mib(2)); // 8 sizes
    let cycles: Vec<u64> = (1..=6).collect();
    let points = sizes.len() * cycles.len();

    let trace = MultiProgramGenerator::new(Preset::Vms1.config(42))
        .expect("preset is valid")
        .generate_records(records);
    let explorer = Explorer::new(&trace, warmup);
    let base = BaseMachine::new();

    println!(
        "sweep_engines: {} sizes x {} cycle times, {records} records, {samples} samples/engine\n",
        sizes.len(),
        cycles.len()
    );

    let (t_ex, grid_ex) = time_engine(
        SweepEngine::Exhaustive,
        &explorer,
        &base,
        &sizes,
        &cycles,
        samples,
    );
    let (t_op, grid_op) = time_engine(
        SweepEngine::OnePass,
        &explorer,
        &base,
        &sizes,
        &cycles,
        samples,
    );

    verify_grids(&grid_ex, &grid_op).expect("engines must agree cycle-exact");

    let speedup = t_ex.as_secs_f64() / t_op.as_secs_f64();
    // Effective throughput: grid points priced per second of wall time,
    // scaled by trace length (one "record" = one reference priced at one
    // grid point).
    let rps = |t: Duration| (points * records) as f64 / t.as_secs_f64();
    println!(
        "exhaustive  median {t_ex:>9.3?}  {:>10.2} Mrec/s",
        rps(t_ex) / 1e6
    );
    println!(
        "onepass     median {t_op:>9.3?}  {:>10.2} Mrec/s",
        rps(t_op) / 1e6
    );
    println!("speedup     {speedup:.2}x (engines verified cycle-exact)");

    let engine_entry = |t: Duration| {
        JsonValue::object([
            ("wall_s".into(), t.as_secs_f64().into()),
            ("records_per_s".into(), rps(t).round().into()),
        ])
    };
    let json = JsonValue::object([
        ("schema".into(), "mlc-bench/1".into()),
        ("bench".into(), "sweep_engines".into()),
        ("records".into(), (records as u64).into()),
        ("warmup".into(), (warmup as u64).into()),
        (
            "grid".into(),
            JsonValue::object([
                ("sizes".into(), (sizes.len() as u64).into()),
                ("cycles".into(), (cycles.len() as u64).into()),
                ("ways".into(), 1u64.into()),
            ]),
        ),
        ("samples".into(), (samples as u64).into()),
        ("exhaustive".into(), engine_entry(t_ex)),
        ("onepass".into(), engine_entry(t_op)),
        (
            "speedup".into(),
            ((speedup * 1000.0).round() / 1000.0).into(),
        ),
        ("verified_cycle_exact".into(), true.into()),
    ])
    .to_string_pretty();
    let path = out_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("[saved {}]", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]", path.display()),
    }
}
