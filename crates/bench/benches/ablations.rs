//! Ablation studies over the simulator's design choices (not paper
//! figures): replacement policy, write policy, block size, fetch size
//! and prefetching, each varied on the base machine with everything else
//! held fixed.
//!
//! These quantify how much each mechanism the paper's simulator models
//! (§2: "write buffering, prefetching, …, write strategy, fetch size")
//! actually matters on the synthetic workloads.
//!
//! Run with `cargo bench -p mlc-bench --bench ablations`.

use mlc_bench::{banner, emit, gen_trace, mean, presets, records, warmup};
use mlc_cache::{AllocPolicy, ByteSize, CacheConfig, Prefetch, Replacement, WritePolicy};
use mlc_core::Table;
use mlc_sim::machine::base_machine;
use mlc_sim::{simulate_with_warmup, HierarchyConfig, LevelCacheConfig};
use mlc_trace::TraceRecord;

fn run(config: HierarchyConfig, traces: &[Vec<TraceRecord>], w: usize) -> (f64, f64) {
    let results: Vec<_> = traces
        .iter()
        .map(|t| simulate_with_warmup(config.clone(), t.iter().copied(), w).unwrap())
        .collect();
    let cycles = mean(
        &results
            .iter()
            .map(|r| r.total_cycles as f64)
            .collect::<Vec<_>>(),
    );
    let l2 = mean(
        &results
            .iter()
            .map(|r| r.global_read_miss_ratio(1).unwrap_or(f64::NAN))
            .collect::<Vec<_>>(),
    );
    (cycles, l2)
}

fn with_l2(f: impl FnOnce(&mut mlc_cache::CacheConfigBuilder)) -> HierarchyConfig {
    let mut builder = CacheConfig::builder();
    builder.total(ByteSize::kib(512)).block_bytes(32);
    f(&mut builder);
    let mut config = base_machine();
    config.levels[1].cache = LevelCacheConfig::Unified(builder.build().expect("valid ablation"));
    config
}

fn main() {
    banner("ablations", "mechanism ablations on the base machine");
    let n = records();
    let w = warmup(n);
    let traces: Vec<_> = presets().iter().map(|&p| gen_trace(p, n)).collect();

    let (base_cycles, _) = run(base_machine(), &traces, w);
    let mut table = Table::new(
        "ablations: execution time and L2 global miss vs the base machine",
        &["variant", "rel. time", "L2 global miss"],
    );
    let mut add = |name: &str, config: HierarchyConfig| {
        let (cycles, miss) = run(config, &traces, w);
        table.row([
            name.to_string(),
            format!("{:.3}", cycles / base_cycles),
            format!("{miss:.4}"),
        ]);
    };

    add("base (LRU, WB/WA, 32B blocks)", base_machine());

    // Replacement policy at a 2-way L2 (a direct-mapped cache has no
    // replacement choice, so the policies are compared at 2-way).
    add(
        "L2 2-way LRU",
        with_l2(|b| {
            b.ways(2);
        }),
    );
    add(
        "L2 2-way FIFO",
        with_l2(|b| {
            b.ways(2).replacement(Replacement::Fifo);
        }),
    );
    add(
        "L2 2-way random",
        with_l2(|b| {
            b.ways(2).replacement(Replacement::Random).seed(17);
        }),
    );

    // Block and fetch size at L2.
    add(
        "L2 16B blocks",
        with_l2(|b| {
            b.block_bytes(16);
        }),
    );
    add(
        "L2 64B blocks",
        with_l2(|b| {
            b.block_bytes(64);
        }),
    );
    add(
        "L2 fetch 2 blocks",
        with_l2(|b| {
            b.fetch_blocks(2);
        }),
    );
    add(
        "L2 next-block prefetch",
        with_l2(|b| {
            b.prefetch(Prefetch::NextBlock);
        }),
    );
    add(
        "L2 2 sub-blocks (16B fetch)",
        with_l2(|b| {
            b.sub_blocks(2);
        }),
    );
    add(
        "L2 + 8-entry victim buffer",
        with_l2(|b| {
            b.victim_entries(8);
        }),
    );

    // Write strategies at L2.
    add(
        "L2 write-through",
        with_l2(|b| {
            b.write_policy(WritePolicy::WriteThrough);
        }),
    );
    add(
        "L2 write-through, no-allocate",
        with_l2(|b| {
            b.write_policy(WritePolicy::WriteThrough)
                .alloc_policy(AllocPolicy::NoWriteAllocate);
        }),
    );

    // Write buffering depth (the paper's 4-entry buffers vs none/deep).
    let mut shallow = base_machine();
    for level in &mut shallow.levels {
        level.write_buffer_entries = 1;
    }
    add("1-entry write buffers", shallow);
    let mut deep = base_machine();
    for level in &mut deep.levels {
        level.write_buffer_entries = 16;
    }
    add("16-entry write buffers", deep);

    emit(&table, "ablations");
    println!(
        "reading guide: rel. time < 1.0 means the variant beats the base\n\
         machine on these workloads; the paper's defaults (LRU, write-back,\n\
         write-allocate, 4-entry buffers) should be at or near the best.\n"
    );
}
