//! Figure 4-1: relative execution time of the base two-level system as
//! the L2 size sweeps 4 KB – 4 MB and the L2 cycle time sweeps 1 – 10
//! CPU cycles.
//!
//! Run with `cargo bench -p mlc-bench --bench fig4_1_speed_size`.

use mlc_bench::figures::speed_size_figure;
use mlc_sim::machine::BaseMachine;

fn main() {
    speed_size_figure(
        "fig4_1",
        &BaseMachine::new(),
        "execution time over the (L2 size x L2 cycle time) plane, 4KB L1",
    );
}
