//! Extension experiment: three-C decomposition of L2 misses across the
//! design space (compulsory / capacity / conflict, after Hill — the
//! paper's references [6]/[7]).
//!
//! The conflict component is the only one set associativity can remove,
//! so this table explains *where* the Figure 5 break-even times come
//! from: sizes with a high conflict share are where associativity keeps
//! paying.
//!
//! Run with `cargo bench -p mlc-bench --bench ext_miss_classification`.

use mlc_bench::{banner, emit, gen_trace, mean, presets, records, warmup};
use mlc_cache::{ByteSize, CacheConfig};
use mlc_core::{classify_misses, size_ladder, Table};
use mlc_trace::stackdist::lru_stack_distances;

fn main() {
    banner(
        "ext_miss_classification",
        "extension: 3C decomposition of direct-mapped L2 misses",
    );
    let n = records();
    let w = warmup(n);
    // Classification runs functionally over the measured window only.
    let traces: Vec<_> = presets()
        .iter()
        .map(|&p| gen_trace(p, n)[w..].to_vec())
        .collect();

    let mut table = Table::new(
        "direct-mapped L2 misses by component (fractions of all misses)",
        &[
            "L2 size",
            "miss ratio",
            "compulsory",
            "capacity",
            "conflict",
        ],
    );
    for size in size_ladder(ByteSize::kib(16), ByteSize::mib(4)) {
        let config = CacheConfig::builder()
            .total(size)
            .block_bytes(32)
            .build()
            .expect("ladder sizes are valid");
        let per_trace: Vec<_> = traces.iter().map(|t| classify_misses(config, t)).collect();
        let frac = |f: &dyn Fn(&mlc_core::MissComponents) -> f64| {
            mean(&per_trace.iter().map(f).collect::<Vec<_>>())
        };
        table.row([
            size.to_string(),
            format!("{:.4}", frac(&|c| c.miss_ratio())),
            format!(
                "{:.2}",
                frac(&|c| c.compulsory as f64 / c.total_misses.max(1) as f64)
            ),
            format!(
                "{:.2}",
                frac(&|c| c.capacity as f64 / c.total_misses.max(1) as f64)
            ),
            format!("{:.2}", frac(&|c| c.conflict_fraction())),
        ]);
    }
    emit(&table, "ext_miss_classification");

    // Cross-check the workload calibration: the fitted per-doubling
    // factor of the fully associative curve, straight from one-pass
    // stack-distance analysis.
    for (preset, trace) in presets().iter().zip(&traces) {
        let hist = lru_stack_distances(trace.iter().copied(), 32);
        let sizes: Vec<u64> = (0..9).map(|i| (16 * 1024u64) << i).collect();
        let curve = hist.miss_ratio_curve(&sizes);
        let points: Vec<(f64, f64)> = curve.iter().map(|&(s, m)| (s as f64, m)).collect();
        if let Some(fit) = mlc_core::PowerLawMissModel::fit_declining(&points, 0.10) {
            println!(
                "{}: fully-associative LRU curve: {:.2} per doubling (theta {:.2})",
                preset.name(),
                fit.doubling_factor(),
                fit.theta()
            );
        }
    }
    println!(
        "\nshape check: conflict share should be substantial at the sizes where\n\
         Figure 5 reports large break-even times, and compulsory share should\n\
         dominate only at the very largest caches (the finite-trace plateau).\n"
    );
}
