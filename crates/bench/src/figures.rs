//! Shared drivers for the per-figure bench targets.
//!
//! Each paper figure family (3-x miss ratios, 4-1 speed–size surface,
//! 4-2/4-3/4-4 constant-performance lines, 5-x break-even times) has one
//! driver here; the bench targets are thin `main`s that pick parameters.

use mlc_cache::ByteSize;
use mlc_core::{
    constant_performance_lines, empirical_break_even_cycles, fmt_f2, fmt_ratio, size_ladder,
    slopes_cycles_per_doubling, BreakEvenInputs, DesignGrid, Explorer, PowerLawMissModel,
    SlopeRegion, Table, TTL_MUX_OVERHEAD_NS,
};
use mlc_sim::machine::BaseMachine;

use crate::{banner, emit, gen_trace, mean, presets, records, warmup};

/// The paper's full L2 size range, 4 KB – 4 MB.
pub fn paper_sizes() -> Vec<ByteSize> {
    size_ladder(ByteSize::kib(4), ByteSize::mib(4))
}

/// The paper's L2 cycle-time range, 1 – 10 CPU cycles.
pub fn paper_cycles() -> Vec<u64> {
    (1..=10).collect()
}

/// Builds one design grid per configured preset.
pub fn grids_for(
    base: &BaseMachine,
    sizes: &[ByteSize],
    cycles: &[u64],
    ways: u32,
) -> Vec<DesignGrid> {
    let n = records();
    let w = warmup(n);
    presets()
        .iter()
        .map(|&p| {
            let trace = gen_trace(p, n);
            Explorer::new(&trace, w).l2_grid(base, sizes, cycles, ways)
        })
        .collect()
}

/// Averages per-preset grids into one: execution times are averaged in
/// *relative* form (each grid normalised by its own optimum, as the
/// paper normalises each trace before averaging), then rescaled to a
/// fixed-point integer total so the iso-performance machinery applies.
pub fn average_grids(grids: &[DesignGrid]) -> DesignGrid {
    let first = &grids[0];
    let scale = 1_000_000.0;
    let mut total = vec![vec![0u64; first.cycles.len()]; first.sizes.len()];
    let mut l2_local = vec![0.0; first.sizes.len()];
    let mut l2_global = vec![0.0; first.sizes.len()];
    for (i, row) in total.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            let rels: Vec<f64> = grids.iter().map(|g| g.relative(i, j)).collect();
            *cell = (mean(&rels) * scale).round() as u64;
        }
        l2_local[i] = mean(&grids.iter().map(|g| g.l2_local[i]).collect::<Vec<_>>());
        l2_global[i] = mean(&grids.iter().map(|g| g.l2_global[i]).collect::<Vec<_>>());
    }
    DesignGrid {
        sizes: first.sizes.clone(),
        cycles: first.cycles.clone(),
        ways: first.ways,
        total,
        l2_local,
        l2_global,
        m_l1_global: mean(&grids.iter().map(|g| g.m_l1_global).collect::<Vec<_>>()),
        cpu_cycle_ns: first.cpu_cycle_ns,
    }
}

/// Figures 3-1 / 3-2: L2 local, global and solo read miss ratios versus
/// L2 size, for the given L1 size.
pub fn miss_ratio_figure(figure: &str, l1: ByteSize) {
    banner(
        figure,
        &format!("L2 miss ratios (local/global/solo), {l1} L1"),
    );
    let n = records();
    let w = warmup(n);
    // L2 must exceed L1; start the ladder one notch above it.
    let lo = ByteSize::new((2 * l1.get()).max(4096));
    let sizes = size_ladder(lo, ByteSize::mib(4));
    let mut base = BaseMachine::new();
    base.l1_total(l1);

    let curves: Vec<_> = presets()
        .iter()
        .map(|&p| {
            let trace = gen_trace(p, n);
            Explorer::new(&trace, w).miss_ratio_curve(&base, &sizes)
        })
        .collect();

    let mut table = Table::new(
        format!("{figure}: L2 read miss ratios, {l1} L1 (mean of traces)"),
        &[
            "L2 size",
            "local",
            "global",
            "solo",
            "global/solo",
            "solo x/dbl",
        ],
    );
    let mut solo_points = Vec::new();
    let mut prev_solo = f64::NAN;
    for (i, &size) in sizes.iter().enumerate() {
        let local = mean(&curves.iter().map(|c| c[i].local).collect::<Vec<_>>());
        let global = mean(&curves.iter().map(|c| c[i].global).collect::<Vec<_>>());
        let solo = mean(&curves.iter().map(|c| c[i].solo).collect::<Vec<_>>());
        solo_points.push((size.get() as f64, solo));
        table.row([
            size.to_string(),
            fmt_ratio(local),
            fmt_ratio(global),
            fmt_ratio(solo),
            fmt_f2(global / solo),
            fmt_f2(solo / prev_solo),
        ]);
        prev_solo = solo;
    }
    emit(&table, figure);

    if let Some(fit) = PowerLawMissModel::fit_declining(&solo_points, 0.10) {
        println!(
            "solo curve power-law fit (declining region): theta {:.3}, {:.2} per doubling (paper: ~0.69)\n",
            fit.theta(),
            fit.doubling_factor()
        );
    }
    println!(
        "shape check: global/solo should approach 1.0 once L2 >= ~8x L1;\n\
         local stays far above global because the L1 filters references, not misses.\n"
    );
}

/// Figure 4-1: relative execution time versus L2 size for each L2 cycle
/// time. Returns the averaged grid for follow-on analyses.
pub fn speed_size_figure(figure: &str, base: &BaseMachine, note: &str) -> DesignGrid {
    banner(figure, note);
    let sizes = paper_sizes();
    let cycles = paper_cycles();
    let grids = grids_for(base, &sizes, &cycles, 1);
    let avg = average_grids(&grids);

    let mut headers: Vec<String> = vec!["t_L2 \\ L2 size".into()];
    headers.extend(avg.sizes.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("{figure}: relative execution time (grid optimum = 1.00)"),
        &header_refs,
    );
    for (j, &c) in avg.cycles.iter().enumerate() {
        let mut row = vec![format!("{c}")];
        row.extend((0..avg.sizes.len()).map(|i| fmt_f2(avg.relative(i, j))));
        table.row(row);
    }
    emit(&table, figure);
    avg
}

/// Figures 4-2 / 4-3 / 4-4: lines of constant performance and the slope
/// regions, from an averaged grid. Returns the extracted lines.
pub fn constant_perf_figure(
    figure: &str,
    grid: &DesignGrid,
    levels: &[f64],
) -> Vec<mlc_core::IsoPerfLine> {
    let lines = constant_performance_lines(grid, levels);

    let mut headers: Vec<String> = vec!["rel \\ L2 size".into()];
    headers.extend(grid.sizes.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        format!("{figure}: lines of constant performance (t_L2 in CPU cycles)"),
        &header_refs,
    );
    for line in &lines {
        let mut row = vec![format!("{:.2}", line.relative)];
        for &size in &grid.sizes {
            let cell = line
                .points
                .iter()
                .find(|p| p.size == size)
                .map(|p| format!("{:.2}", p.cycles))
                .unwrap_or_else(|| "-".into());
            row.push(cell);
        }
        table.row(row);
    }
    emit(&table, figure);

    // Slope regions: mean slope per size segment across the lines.
    let mut region_table = Table::new(
        format!("{figure}: slope regions (CPU cycles of t_L2 slack per size doubling)"),
        &["segment", "mean slope", "region"],
    );
    for k in 0..grid.sizes.len() - 1 {
        let seg_slopes: Vec<f64> = lines
            .iter()
            .flat_map(|l| {
                slopes_cycles_per_doubling(l)
                    .into_iter()
                    .filter(|(at, _)| *at == grid.sizes[k])
                    .map(|(_, s)| s)
            })
            .collect();
        if seg_slopes.is_empty() {
            continue;
        }
        let m = mean(&seg_slopes);
        region_table.row([
            format!("{} -> {}", grid.sizes[k], grid.sizes[k + 1]),
            format!("{m:.2}"),
            SlopeRegion::classify(m).to_string(),
        ]);
    }
    emit(&region_table, &format!("{figure}_slopes"));
    lines
}

/// Figures 5-1 / 5-2 / 5-3: cumulative break-even implementation times
/// for `ways`-way associativity versus direct-mapped, across the L2
/// design space, in nanoseconds.
pub fn breakeven_figure(figure: &str, ways: u32) {
    banner(
        figure,
        &format!("{ways}-way set-associativity break-even times (ns)"),
    );
    let sizes = size_ladder(ByteSize::kib(8), ByteSize::mib(4));
    let cycles = paper_cycles();
    let base = BaseMachine::new();
    let n = records();
    let w = warmup(n);

    // Per preset: one DM grid and one `ways`-way grid over the same trace.
    let mut per_size_emp: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut per_size_eq3: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let at_cycles: [u64; 4] = [2, 3, 5, 7];
    let mut per_size_at: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); at_cycles.len()]; sizes.len()];
    for &p in &presets() {
        let trace = gen_trace(p, n);
        let explorer = Explorer::new(&trace, w);
        let dm = explorer.l2_grid(&base, &sizes, &cycles, 1);
        let aw = explorer.l2_grid(&base, &sizes, &cycles, ways);
        let inputs = BreakEvenInputs {
            m_l1_global: dm.m_l1_global,
            mm_read_time_ns: 270.0,
        };
        for i in 0..sizes.len() {
            if let Some(cyc) = empirical_break_even_cycles(&dm.column(i), &aw.column(i), 3) {
                per_size_emp[i].push(cyc * dm.cpu_cycle_ns);
            }
            per_size_eq3[i].push(inputs.cumulative_break_even_ns(dm.l2_global[i], aw.l2_global[i]));
            for (k, &t) in at_cycles.iter().enumerate() {
                if let Some(cyc) = empirical_break_even_cycles(&dm.column(i), &aw.column(i), t) {
                    per_size_at[i][k].push(cyc * dm.cpu_cycle_ns);
                }
            }
        }
    }

    let mut table = Table::new(
        format!("{figure}: cumulative break-even times, DM -> {ways}-way (ns)"),
        &[
            "L2 size",
            "empirical@t=2",
            "empirical@t=3",
            "empirical@t=5",
            "empirical@t=7",
            "Eq3 analytic",
            "vs 11ns TTL mux",
        ],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let emp3 = mean(&per_size_emp[i]);
        let cells: Vec<String> = (0..at_cycles.len())
            .map(|k| {
                let v = mean(&per_size_at[i][k]);
                if v.is_nan() {
                    "-".into()
                } else {
                    format!("{v:.1}")
                }
            })
            .collect();
        let verdict = if emp3.is_nan() {
            "-"
        } else if emp3 >= TTL_MUX_OVERHEAD_NS {
            "worth it"
        } else {
            "not worth it"
        };
        table.row([
            size.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            format!("{:.1}", mean(&per_size_eq3[i])),
            verdict.to_string(),
        ]);
    }
    emit(&table, figure);
    println!(
        "shape check: most of the space should afford 10-40 ns (1-4 CPU cycles)\n\
         for associativity — far more than single-level caches can justify —\n\
         with the largest slack at small L2 sizes (local miss ratio near 1).\n"
    );
}
