//! Shared support for the figure-regeneration benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of
//! the ISCA 1989 paper (see DESIGN.md §5 for the experiment index) and
//! writes its data as CSV under `target/mlc-results/`.
//!
//! Environment knobs (all optional):
//!
//! * `MLC_RECORDS` — references per trace (default 8,000,000).
//! * `MLC_WARMUP_FRAC` — fraction of each trace excluded from statistics
//!   as cold-start (default 0.5, as the paper discards its cold-start
//!   region).
//! * `MLC_PRESETS` — comma-separated workload presets to average over
//!   (default `vms1,mips1`; use `all` for all eight paper-trace
//!   stand-ins).
//! * `MLC_SEED` — base RNG seed (default 42).
//! * `MLC_OUT` — output directory for CSVs.

use std::path::PathBuf;

use mlc_core::Table;
use mlc_trace::synth::{workload::Preset, MultiProgramGenerator};
use mlc_trace::TraceRecord;

/// References per generated trace.
pub fn records() -> usize {
    env_parse("MLC_RECORDS", 8_000_000)
}

/// Records excluded from statistics at the head of each trace.
pub fn warmup(records: usize) -> usize {
    let frac: f64 = env_parse("MLC_WARMUP_FRAC", 0.5);
    (records as f64 * frac.clamp(0.0, 0.95)) as usize
}

/// Base seed for workload generation.
pub fn seed() -> u64 {
    env_parse("MLC_SEED", 42)
}

/// The workload presets this run averages over.
pub fn presets() -> Vec<Preset> {
    let spec = std::env::var("MLC_PRESETS").unwrap_or_else(|_| "vms1,mips1".to_string());
    if spec.trim().eq_ignore_ascii_case("all") {
        return Preset::ALL.to_vec();
    }
    let chosen: Vec<Preset> = spec
        .split(',')
        .filter_map(|name| Preset::from_name(name.trim()))
        .collect();
    if chosen.is_empty() {
        vec![Preset::Vms1, Preset::Mips1]
    } else {
        chosen
    }
}

/// Generates one preset's trace at the configured length.
pub fn gen_trace(preset: Preset, n: usize) -> Vec<TraceRecord> {
    MultiProgramGenerator::new(preset.config(seed()))
        .expect("presets are valid")
        .generate_records(n)
}

/// Where result CSVs are written: `target/mlc-results/` at the
/// *workspace* root (bench binaries run with the package directory as
/// their cwd, so a relative path would land in `crates/bench/`).
pub fn out_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MLC_OUT") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/mlc-results")
}

/// Prints a table and saves it as `<name>.csv` in [`out_dir`].
pub fn emit(table: &Table, name: &str) {
    println!("{table}");
    let path = out_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[could not save {}: {e}]\n", path.display()),
    }
}

/// Arithmetic mean; NaN inputs are skipped. Returns NaN for an empty
/// (or all-NaN) slice.
pub fn mean(values: &[f64]) -> f64 {
    let clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        f64::NAN
    } else {
        clean.iter().sum::<f64>() / clean.len() as f64
    }
}

/// Geometric mean over positive entries; NaN if none.
pub fn geomean(values: &[f64]) -> f64 {
    let clean: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| !v.is_nan() && *v > 0.0)
        .collect();
    if clean.is_empty() {
        f64::NAN
    } else {
        (clean.iter().map(|v| v.ln()).sum::<f64>() / clean.len() as f64).exp()
    }
}

/// The standard banner every figure harness prints.
pub fn banner(figure: &str, what: &str) {
    let n = records();
    println!("=== {figure}: {what} ===");
    println!(
        "traces: {} x {} records, warmup {} records, seed {}\n",
        presets()
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join("+"),
        n,
        warmup(n),
        seed()
    );
}

fn env_parse<T: std::str::FromStr + Copy>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_nan() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert!(mean(&[f64::NAN]).is_nan());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[-1.0]).is_nan());
    }

    #[test]
    fn default_presets_are_two() {
        // Honour the environment if the caller set it; default otherwise.
        if std::env::var("MLC_PRESETS").is_err() {
            assert_eq!(presets().len(), 2);
        }
    }

    #[test]
    fn trace_generation_is_seeded() {
        let a = gen_trace(Preset::Mips2, 1000);
        let b = gen_trace(Preset::Mips2, 1000);
        assert_eq!(a, b);
    }
}

pub mod figures;
