//! Main-memory (DRAM) timing.
//!
//! The paper's memory model (§2) decomposes a main-memory access into a
//! read operation time (180 ns address-to-data for 8 words), a write
//! operation time (100 ns), and a minimum refresh/cycle gap (120 ns) that
//! must elapse between successive data operations. This module implements
//! exactly that: a memory that serialises operations and enforces the
//! inter-operation gap, reporting when each operation's data phase starts
//! and completes.
//!
//! All times are in abstract *ticks*; `mlc-sim` sets one tick = one CPU
//! cycle and converts the paper's nanosecond parameters.

/// The three timing parameters of the paper's main-memory model, in ticks.
///
/// # Examples
///
/// ```
/// use mlc_mem::MemoryTiming;
///
/// // The paper's base memory at a 10 ns CPU cycle (1 tick = 10 ns):
/// let timing = MemoryTiming::new(18, 10, 12);
/// assert_eq!(timing.read_ticks, 18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoryTiming {
    /// Read operation time: address available to full fetch-width data
    /// available (paper: 180 ns).
    pub read_ticks: u64,
    /// Write operation time: address and data available to write complete
    /// (paper: 100 ns).
    pub write_ticks: u64,
    /// Minimum refresh/cycle gap between the end of one data operation and
    /// the start of the next (paper: 120 ns).
    pub gap_ticks: u64,
}

impl MemoryTiming {
    /// Creates a timing specification.
    ///
    /// # Panics
    ///
    /// Panics if either operation time is zero (a zero gap is allowed and
    /// models an ideal memory).
    pub fn new(read_ticks: u64, write_ticks: u64, gap_ticks: u64) -> Self {
        assert!(read_ticks > 0, "read time must be positive");
        assert!(write_ticks > 0, "write time must be positive");
        MemoryTiming {
            read_ticks,
            write_ticks,
            gap_ticks,
        }
    }

    /// Returns this timing uniformly scaled by `factor` (used for the
    /// paper's "main memory twice as slow" experiment, Figure 4-4).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive or the scaled times overflow.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |t: u64| -> u64 {
            let v = (t as f64 * factor).round();
            assert!(v <= u64::MAX as f64, "scaled time overflows");
            v as u64
        };
        MemoryTiming::new(
            scale(self.read_ticks).max(1),
            scale(self.write_ticks).max(1),
            scale(self.gap_ticks),
        )
    }
}

/// The kind of a main-memory data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOpKind {
    /// A block fetch.
    Read,
    /// A block write (write-buffer drain).
    Write,
}

/// The scheduled timing of one memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// When the data phase began (≥ the request's arrival).
    pub start: u64,
    /// When the data phase completed.
    pub end: u64,
}

impl MemOp {
    /// Ticks the requester waited beyond the raw operation time.
    pub fn queueing_ticks(&self, arrival: u64) -> u64 {
        self.start - arrival
    }
}

/// Counters accumulated by a [`MainMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryStats {
    /// Read operations performed.
    pub reads: u64,
    /// Write operations performed.
    pub writes: u64,
    /// Total ticks operations spent waiting for the memory to become
    /// available (busy + refresh gap).
    pub wait_ticks: u64,
}

/// The paper's main-memory timing model.
///
/// Operations are strictly serialised; each operation's start is delayed
/// until `gap_ticks` after the previous operation's end. With the paper's
/// parameters this reproduces its stated L2 miss penalty range (270 ns
/// nominal, rising with memory pressure).
///
/// # Examples
///
/// ```
/// use mlc_mem::{MainMemory, MemOpKind, MemoryTiming};
///
/// let mut mem = MainMemory::new(MemoryTiming::new(18, 10, 12));
/// let first = mem.schedule(0, MemOpKind::Read);
/// assert_eq!((first.start, first.end), (0, 18));
/// // A request arriving immediately after must respect the 12-tick gap:
/// let second = mem.schedule(18, MemOpKind::Read);
/// assert_eq!(second.start, 30);
/// ```
#[derive(Debug, Clone)]
pub struct MainMemory {
    timing: MemoryTiming,
    last_end: u64,
    any_op_done: bool,
    stats: MemoryStats,
}

impl MainMemory {
    /// Creates an idle memory.
    pub fn new(timing: MemoryTiming) -> Self {
        MainMemory {
            timing,
            last_end: 0,
            any_op_done: false,
            stats: MemoryStats::default(),
        }
    }

    /// The memory's timing parameters.
    pub fn timing(&self) -> MemoryTiming {
        self.timing
    }

    /// The earliest tick at which an operation arriving at `arrival` could
    /// start its data phase, without scheduling it.
    pub fn earliest_start(&self, arrival: u64) -> u64 {
        if self.any_op_done {
            arrival.max(self.last_end + self.timing.gap_ticks)
        } else {
            arrival
        }
    }

    /// Schedules an operation whose request arrives at tick `arrival`,
    /// returning its data-phase start and end.
    pub fn schedule(&mut self, arrival: u64, kind: MemOpKind) -> MemOp {
        let start = self.earliest_start(arrival);
        let dur = match kind {
            MemOpKind::Read => {
                self.stats.reads += 1;
                self.timing.read_ticks
            }
            MemOpKind::Write => {
                self.stats.writes += 1;
                self.timing.write_ticks
            }
        };
        let end = start + dur;
        self.last_end = end;
        self.any_op_done = true;
        self.stats.wait_ticks += start - arrival;
        MemOp { start, end }
    }

    /// When the most recent operation's data phase ended (0 if none yet).
    pub fn busy_until(&self) -> u64 {
        if self.any_op_done {
            self.last_end
        } else {
            0
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// Resets counters (the busy state is preserved — used to discard
    /// warm-up statistics without perturbing timing).
    pub fn reset_stats(&mut self) {
        self.stats = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MemoryTiming {
        MemoryTiming::new(18, 10, 12)
    }

    #[test]
    fn first_op_starts_immediately() {
        let mut m = MainMemory::new(base());
        let op = m.schedule(100, MemOpKind::Read);
        assert_eq!(op.start, 100);
        assert_eq!(op.end, 118);
        assert_eq!(op.queueing_ticks(100), 0);
    }

    #[test]
    fn gap_enforced_between_ops() {
        let mut m = MainMemory::new(base());
        m.schedule(0, MemOpKind::Read); // ends 18
        let op = m.schedule(19, MemOpKind::Write);
        assert_eq!(op.start, 30); // 18 + 12
        assert_eq!(op.end, 40);
        assert_eq!(op.queueing_ticks(19), 11);
    }

    #[test]
    fn long_idle_means_no_gap_wait() {
        let mut m = MainMemory::new(base());
        m.schedule(0, MemOpKind::Read);
        let op = m.schedule(1000, MemOpKind::Read);
        assert_eq!(op.start, 1000);
    }

    #[test]
    fn write_uses_write_time() {
        let mut m = MainMemory::new(base());
        let op = m.schedule(0, MemOpKind::Write);
        assert_eq!(op.end - op.start, 10);
    }

    #[test]
    fn earliest_start_is_consistent_with_schedule() {
        let mut m = MainMemory::new(base());
        m.schedule(0, MemOpKind::Read);
        assert_eq!(m.earliest_start(5), 30);
        assert_eq!(m.earliest_start(40), 40);
        let op = m.schedule(5, MemOpKind::Read);
        assert_eq!(op.start, 30);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = MainMemory::new(base());
        m.schedule(0, MemOpKind::Read);
        m.schedule(0, MemOpKind::Write); // waits 30
        let s = m.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.wait_ticks, 30);
        m.reset_stats();
        assert_eq!(m.stats(), MemoryStats::default());
        assert_eq!(m.busy_until(), 40, "reset_stats preserves busy state");
    }

    #[test]
    fn zero_gap_serialises_back_to_back() {
        let mut m = MainMemory::new(MemoryTiming::new(18, 10, 0));
        m.schedule(0, MemOpKind::Read);
        let op = m.schedule(0, MemOpKind::Read);
        assert_eq!(op.start, 18);
    }

    #[test]
    fn scaled_doubles_everything() {
        let t = base().scaled(2.0);
        assert_eq!(t, MemoryTiming::new(36, 20, 24));
        let t = base().scaled(0.5);
        assert_eq!(t, MemoryTiming::new(9, 5, 6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_read_time() {
        MemoryTiming::new(0, 10, 12);
    }

    #[test]
    fn paper_nominal_miss_penalty() {
        // One backplane address cycle (3 ticks) + 180 ns read (18 ticks) +
        // two backplane data cycles (6 ticks) = 27 ticks = 270 ns: the
        // paper's nominal L2 miss penalty. The memory contributes the 18.
        let mut m = MainMemory::new(base());
        let op = m.schedule(3, MemOpKind::Read);
        assert_eq!(op.end + 6, 27);
    }
}
