//! Inter-level bus timing.
//!
//! The paper's buses (§2) are 4 words (16 bytes) wide and cycle at the
//! rate of the downstream cache (the CPU–L2 bus at the L2 rate; the
//! L2–memory "backplane" also at the L2 rate). A transfer costs one bus
//! cycle to transmit the address plus ⌈bytes / width⌉ cycles to move the
//! data.

/// A bus of fixed width and cycle time.
///
/// # Examples
///
/// ```
/// use mlc_mem::Bus;
///
/// // The base machine's backplane: 16 bytes wide, one bus cycle = one L2
/// // cycle = 3 CPU cycles (ticks).
/// let backplane = Bus::new(16, 3);
/// assert_eq!(backplane.address_ticks(), 3);
/// assert_eq!(backplane.data_ticks(32), 6); // 8-word L2 block: 2 cycles
/// assert_eq!(backplane.transfer_ticks(32), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bus {
    width_bytes: u64,
    cycle_ticks: u64,
}

impl Bus {
    /// Creates a bus.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero or not a power of two, or the cycle
    /// time is zero.
    pub fn new(width_bytes: u64, cycle_ticks: u64) -> Self {
        assert!(
            width_bytes > 0 && width_bytes.is_power_of_two(),
            "bus width must be a non-zero power of two, got {width_bytes}"
        );
        assert!(cycle_ticks > 0, "bus cycle time must be positive");
        Bus {
            width_bytes,
            cycle_ticks,
        }
    }

    /// The bus width in bytes.
    pub fn width_bytes(&self) -> u64 {
        self.width_bytes
    }

    /// One bus cycle, in ticks.
    pub fn cycle_ticks(&self) -> u64 {
        self.cycle_ticks
    }

    /// Ticks to transmit an address (one bus cycle).
    pub fn address_ticks(&self) -> u64 {
        self.cycle_ticks
    }

    /// Ticks to move `bytes` of data (⌈bytes / width⌉ bus cycles; zero
    /// bytes cost nothing).
    pub fn data_ticks(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.width_bytes) * self.cycle_ticks
    }

    /// Ticks for a full transfer: address plus data.
    pub fn transfer_ticks(&self, bytes: u64) -> u64 {
        self.address_ticks() + self.data_ticks(bytes)
    }

    /// Data ticks *beyond the first beat*. When a cache access time
    /// already covers delivery of the first bus-width beat (as in the
    /// paper, where an L1 miss that hits in L2 costs exactly one L2 cycle
    /// when the L1 block equals the bus width), only the remaining beats
    /// add latency.
    pub fn extra_beat_ticks(&self, bytes: u64) -> u64 {
        let beats = bytes.div_ceil(self.width_bytes);
        beats.saturating_sub(1) * self.cycle_ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cpu_l2_bus() {
        // CPU–L2 bus at the L2 rate (3 ticks), 16 bytes wide. An L1 block
        // is 16 bytes, so delivering it beyond the first beat is free —
        // making the nominal L1 miss penalty exactly the 3-tick L2 access.
        let bus = Bus::new(16, 3);
        assert_eq!(bus.extra_beat_ticks(16), 0);
        assert_eq!(bus.extra_beat_ticks(32), 3);
    }

    #[test]
    fn data_ticks_round_up() {
        let bus = Bus::new(16, 2);
        assert_eq!(bus.data_ticks(1), 2);
        assert_eq!(bus.data_ticks(16), 2);
        assert_eq!(bus.data_ticks(17), 4);
        assert_eq!(bus.data_ticks(0), 0);
    }

    #[test]
    fn transfer_includes_address() {
        let bus = Bus::new(8, 5);
        assert_eq!(bus.transfer_ticks(16), 5 + 10);
    }

    #[test]
    fn accessors() {
        let bus = Bus::new(4, 7);
        assert_eq!(bus.width_bytes(), 4);
        assert_eq!(bus.cycle_ticks(), 7);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_width() {
        Bus::new(12, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cycle() {
        Bus::new(16, 0);
    }
}
