//! Write buffers between hierarchy levels.
//!
//! The paper places a 4-entry write buffer between every pair of adjacent
//! levels, each entry one upstream-cache block wide (§2). Buffers let
//! write-backs and write-throughs drain while the processor continues,
//! which is why the paper can treat write effects as "mostly hidden
//! between the read requests".
//!
//! This type is the *container*: a bounded FIFO with occupancy statistics.
//! The drain *policy* (when entries are retired into the downstream cache)
//! lives in `mlc-sim`, because it needs downstream timing.

use std::collections::VecDeque;

use mlc_trace::Address;

/// One buffered write: a block (or write-through word) heading downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedWrite {
    /// Base address of the data.
    pub addr: Address,
    /// Width of the entry in bytes (the upstream cache's block size for
    /// write-backs; the store width for write-throughs).
    pub bytes: u64,
    /// The tick at which the entry entered the buffer; it cannot begin
    /// draining earlier.
    pub ready_at: u64,
}

/// Occupancy counters for a [`WriteBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteBufferStats {
    /// Entries accepted.
    pub enqueued: u64,
    /// Entries retired downstream.
    pub drained: u64,
    /// Times a producer found the buffer full and had to wait for a
    /// forced drain.
    pub full_events: u64,
    /// Highest occupancy observed.
    pub peak_occupancy: usize,
}

/// A bounded FIFO of writes awaiting drain to the next hierarchy level.
///
/// # Examples
///
/// ```
/// use mlc_mem::{BufferedWrite, WriteBuffer};
/// use mlc_trace::Address;
///
/// let mut buf = WriteBuffer::new(4);
/// let w = BufferedWrite { addr: Address::new(0x40), bytes: 16, ready_at: 0 };
/// assert!(buf.try_push(w));
/// assert_eq!(buf.len(), 1);
/// assert_eq!(buf.pop(), Some(w));
/// assert!(buf.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    entries: VecDeque<BufferedWrite>,
    capacity: usize,
    stats: WriteBufferStats,
}

impl WriteBuffer {
    /// Creates an empty buffer with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer capacity must be positive");
        WriteBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: WriteBufferStats::default(),
        }
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Attempts to enqueue; returns `false` (and records a full event) if
    /// the buffer is full.
    pub fn try_push(&mut self, write: BufferedWrite) -> bool {
        if self.is_full() {
            self.stats.full_events += 1;
            return false;
        }
        self.entries.push_back(write);
        self.stats.enqueued += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.entries.len());
        true
    }

    /// Retires the oldest entry.
    pub fn pop(&mut self) -> Option<BufferedWrite> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.stats.drained += 1;
        }
        e
    }

    /// Peeks at the oldest entry without retiring it.
    pub fn front(&self) -> Option<&BufferedWrite> {
        self.entries.front()
    }

    /// Iterates over queued entries, oldest first — used by the simulator
    /// to detect read-after-write hazards against buffered data.
    pub fn iter(&self) -> impl Iterator<Item = &BufferedWrite> {
        self.entries.iter()
    }

    /// Whether any queued entry's byte range overlaps `[addr, addr + bytes)`.
    pub fn overlaps(&self, addr: Address, bytes: u64) -> bool {
        let lo = addr.get();
        let hi = lo + bytes;
        self.entries.iter().any(|e| {
            let elo = e.addr.get();
            let ehi = elo + e.bytes;
            elo < hi && lo < ehi
        })
    }

    /// Accumulated counters.
    pub fn stats(&self) -> WriteBufferStats {
        self.stats
    }

    /// Resets counters; contents are preserved.
    pub fn reset_stats(&mut self) {
        self.stats = WriteBufferStats::default();
        self.stats.peak_occupancy = self.entries.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(a: u64) -> BufferedWrite {
        BufferedWrite {
            addr: Address::new(a),
            bytes: 16,
            ready_at: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut b = WriteBuffer::new(4);
        for a in [1, 2, 3] {
            assert!(b.try_push(w(a)));
        }
        assert_eq!(b.front(), Some(&w(1)));
        assert_eq!(b.pop(), Some(w(1)));
        assert_eq!(b.pop(), Some(w(2)));
        assert_eq!(b.pop(), Some(w(3)));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut b = WriteBuffer::new(2);
        assert!(b.try_push(w(1)));
        assert!(b.try_push(w(2)));
        assert!(b.is_full());
        assert!(!b.try_push(w(3)));
        assert_eq!(b.stats().full_events, 1);
        b.pop();
        assert!(b.try_push(w(3)));
    }

    #[test]
    fn stats_track_flow() {
        let mut b = WriteBuffer::new(4);
        b.try_push(w(1));
        b.try_push(w(2));
        b.pop();
        b.try_push(w(3));
        let s = b.stats();
        assert_eq!(s.enqueued, 3);
        assert_eq!(s.drained, 1);
        assert_eq!(s.peak_occupancy, 2);
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut b = WriteBuffer::new(4);
        b.try_push(w(1));
        b.reset_stats();
        assert_eq!(b.stats().enqueued, 0);
        assert_eq!(b.stats().peak_occupancy, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_capacity() {
        WriteBuffer::new(0);
    }

    #[test]
    fn iter_is_fifo_order() {
        let mut b = WriteBuffer::new(4);
        b.try_push(w(1));
        b.try_push(w(2));
        let addrs: Vec<u64> = b.iter().map(|e| e.addr.get()).collect();
        assert_eq!(addrs, vec![1, 2]);
    }

    #[test]
    fn overlap_detection() {
        let mut b = WriteBuffer::new(4);
        b.try_push(BufferedWrite {
            addr: Address::new(0x40),
            bytes: 16,
            ready_at: 0,
        });
        assert!(b.overlaps(Address::new(0x40), 16)); // exact
        assert!(b.overlaps(Address::new(0x48), 4)); // inside
        assert!(b.overlaps(Address::new(0x30), 32)); // spans start
        assert!(!b.overlaps(Address::new(0x50), 16)); // adjacent after
        assert!(!b.overlaps(Address::new(0x30), 16)); // adjacent before
        b.pop();
        assert!(!b.overlaps(Address::new(0x40), 16));
    }
}
