//! Memory-system substrates: DRAM timing, buses and write buffers.
//!
//! These are the timed components *below and between* the caches in the
//! paper's simulator:
//!
//! * [`MainMemory`] — the paper's three-parameter DRAM model (read time,
//!   write time, inter-operation refresh gap).
//! * [`Bus`] — fixed-width inter-level buses with per-cycle transfer
//!   costing.
//! * [`WriteBuffer`] — the 4-entry write buffers the paper places between
//!   every pair of adjacent levels.
//!
//! All times are abstract *ticks*; `mlc-sim` sets one tick = one CPU
//! cycle.
//!
//! # Examples
//!
//! Reproduce the paper's nominal 270 ns L2 miss penalty (27 CPU cycles at
//! 10 ns): one backplane address cycle, the 180 ns read, and the two
//! data-beat cycles beyond the one that overlaps the read's completion.
//!
//! ```
//! use mlc_mem::{Bus, MainMemory, MemOpKind, MemoryTiming};
//!
//! let backplane = Bus::new(16, 3);          // 4 words wide, L2-rate
//! let mut memory = MainMemory::new(MemoryTiming::new(18, 10, 12));
//!
//! let arrival = backplane.address_ticks();            // address out: 3
//! let op = memory.schedule(arrival, MemOpKind::Read); // 180 ns read
//! let done = op.end + backplane.data_ticks(32);       // 2 beats back
//! assert_eq!(done, 27);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bus;
mod dram;
mod write_buffer;

pub use bus::Bus;
pub use dram::{MainMemory, MemOp, MemOpKind, MemoryStats, MemoryTiming};
pub use write_buffer::{BufferedWrite, WriteBuffer, WriteBufferStats};
