//! Adversarial property tests for the `mlc-journal/1` reader: a sweep
//! journal truncated at *every* byte offset and bit-flipped at *every*
//! byte must never panic the reader, never yield a silently-wrong row,
//! and fail typed when the damage hits committed data.
//!
//! These are the crash-and-corruption cases `mlc-sweep --resume` must
//! survive: a SIGKILL mid-append (torn tail), a disk flipping a bit in
//! a committed line, a copy cutting the file short.

use std::path::PathBuf;

use mlc_obs::{read_journal, JournalError, JournalHeader, JournalRow, JournalWriter};

fn sample_header() -> JournalHeader {
    JournalHeader {
        trace_digest: "fnv1a64:00000000deadbeef".to_string(),
        engine: "onepass".to_string(),
        l1_bytes: 4096,
        warmup: 2500,
        ways: 1,
        sizes: vec![16384, 32768, 65536],
        cycles: vec![1, 2, 3],
        trace_id: None,
    }
}

fn sample_rows() -> Vec<JournalRow> {
    vec![
        JournalRow {
            row: 0,
            total: vec![100, 200, u64::MAX - 1],
            l2_local: 0.25,
            l2_global: 0.125,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
        JournalRow {
            row: 1,
            total: vec![90, 180, 270],
            l2_local: f64::NAN,
            l2_global: -0.0,
            m_l1_global: f64::INFINITY,
            cpu_cycle_ns: 10.0,
        },
        JournalRow {
            row: 2,
            total: vec![80, 160, 240],
            l2_local: 1.0e-300,
            l2_global: 0.99999999999,
            m_l1_global: 0.5,
            cpu_cycle_ns: 10.0,
        },
    ]
}

/// Renders the sample journal to bytes via the real writer.
fn journal_bytes(dir: &std::path::Path) -> Vec<u8> {
    let path = dir.join("pristine.jsonl");
    let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
    for row in sample_rows() {
        w.append_row(&row).unwrap();
    }
    drop(w);
    std::fs::read(&path).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mlc_journal_props_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rows_equal(a: &JournalRow, b: &JournalRow) -> bool {
    a.row == b.row
        && a.total == b.total
        && a.l2_local.to_bits() == b.l2_local.to_bits()
        && a.l2_global.to_bits() == b.l2_global.to_bits()
        && a.m_l1_global.to_bits() == b.m_l1_global.to_bits()
        && a.cpu_cycle_ns.to_bits() == b.cpu_cycle_ns.to_bits()
}

/// Parsed rows must always be a bit-exact prefix of what was written —
/// corruption may *drop* committed work (typed) but never alter it.
fn assert_prefix_of_sample(rows: &[JournalRow], context: &str) {
    let originals = sample_rows();
    assert!(
        rows.len() <= originals.len(),
        "{context}: extra rows appeared"
    );
    for (got, want) in rows.iter().zip(&originals) {
        assert!(
            rows_equal(got, want),
            "{context}: row {} differs from what was written",
            got.row
        );
    }
}

#[test]
fn truncation_at_every_byte_offset_is_safe() {
    let dir = temp_dir("truncate");
    let bytes = journal_bytes(&dir);
    let path = dir.join("cut.jsonl");
    for len in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..len]).unwrap();
        match read_journal(&path) {
            Ok(journal) => {
                assert_prefix_of_sample(&journal.rows, &format!("truncated to {len}"));
                assert!(
                    journal.committed_len <= len as u64,
                    "truncated to {len}: committed_len {} exceeds the file",
                    journal.committed_len
                );
                // An incomplete final line must be flagged as torn, so a
                // resuming writer knows to truncate it away.
                let clean = len == bytes.len()
                    || journal.committed_len == len as u64 && bytes[len - 1] == b'\n';
                assert_eq!(
                    journal.torn_tail, !clean,
                    "truncated to {len}: torn_tail misreported"
                );
            }
            Err(JournalError::Corrupt { .. }) => {
                // Typed rejection (e.g. the header line itself is cut):
                // acceptable, as long as it never panics.
            }
            Err(JournalError::Io(e)) => panic!("truncated to {len}: unexpected I/O error {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flips_at_every_byte_offset_are_safe() {
    let dir = temp_dir("flip");
    let bytes = journal_bytes(&dir);
    let path = dir.join("flipped.jsonl");
    for idx in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0x20] {
            let mut bad = bytes.clone();
            bad[idx] ^= mask;
            std::fs::write(&path, &bad).unwrap();
            match read_journal(&path) {
                Ok(journal) => {
                    // Only structural damage to the *final newline* may
                    // pass (it becomes a torn tail); committed rows must
                    // still be bit-exact.
                    assert_prefix_of_sample(&journal.rows, &format!("byte {idx} ^ {mask:#04x}"));
                    assert!(
                        journal.rows.len() < sample_rows().len() || journal.torn_tail,
                        "byte {idx} ^ {mask:#04x}: corruption accepted without dropping data"
                    );
                }
                Err(JournalError::Corrupt { line, .. }) => {
                    assert!(
                        line >= 1 && line <= 1 + sample_rows().len() + 1,
                        "byte {idx} ^ {mask:#04x}: implausible line number {line}"
                    );
                }
                Err(JournalError::Io(e)) => {
                    panic!("byte {idx} ^ {mask:#04x}: unexpected I/O error {e}")
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_after_torn_tail_reproduces_the_full_journal() {
    // Cut the journal mid-row (a crash mid-append), then resume and
    // rewrite the dropped rows: the result must be byte-identical to a
    // journal that was never interrupted.
    let dir = temp_dir("resume");
    let bytes = journal_bytes(&dir);
    let newlines: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i))
        .collect();
    // Cut inside the last row's line: committed = everything before it.
    let cut = newlines[newlines.len() - 2] + 5;
    let path = dir.join("killed.jsonl");
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let (mut w, journal) = JournalWriter::resume(&path).unwrap();
    assert!(journal.torn_tail);
    assert_eq!(journal.rows.len(), sample_rows().len() - 1);
    for row in &sample_rows()[journal.rows.len()..] {
        w.append_row(row).unwrap();
    }
    drop(w);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        bytes,
        "resumed journal differs from the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
