//! Crash-consistent sweep journals: the `mlc-journal/1` format.
//!
//! A design-space sweep can run for hours; a killed process must not
//! throw the completed points away. The journal is an append-only
//! JSON-lines file:
//!
//! ```text
//! {"schema":"mlc-journal/1","trace_digest":"fnv1a64:…","engine":"onepass",…,"check":"fnv1a64:…"}
//! {"row":0,"total":[81234,93456],"l2_local_bits":"3fb9…",…,"check":"fnv1a64:…"}
//! {"row":2,"total":[64321,70001],…,"check":"fnv1a64:…"}
//! ```
//!
//! * The **header** pins the run identity: the trace content digest,
//!   the engine, and the full grid definition. Resume refuses to mix
//!   journals across different runs.
//! * Each **row record** is one completed size-row of the grid, written
//!   with a single `write` and fsync'd (`File::sync_data`) before the
//!   writer reports it durable — after a crash, every record that made
//!   it to disk is complete.
//! * Every line carries a `check` field: the FNV-1a 64 digest of the
//!   line's compact rendering *without* that field. A bit-flip anywhere
//!   in a committed line is detected, not replayed.
//! * Miss ratios are `f64`s that may be `NaN`; they are stored as
//!   16-hex-digit **bit patterns** (`f64::to_bits`), so a resumed sweep
//!   reproduces the uninterrupted run bit-for-bit.
//!
//! Crash semantics on read ([`read_journal`]):
//!
//! * A final line with no terminating newline is *uncommitted crash
//!   debris*: it is dropped, reported via [`Journal::torn_tail`], and
//!   [`Journal::committed_len`] points at the end of the last committed
//!   line so a resuming writer can truncate it away before appending.
//! * Any *committed* (newline-terminated) line that fails to parse or
//!   fails its check is a typed [`JournalError::Corrupt`] — resume
//!   refuses the file rather than risk a silently-wrong grid.
//! * A committed `row` index that appears twice is benign only when the
//!   duplicate is **bit-identical** to the first occurrence (a resumed
//!   writer that lost the race with its own crash may legally replay a
//!   row); two committed payloads that *differ* for the same row are
//!   [`JournalError::Corrupt`] — there is no safe way to pick one.
//!
//! Durability: [`JournalWriter::create`] fsyncs the parent directory
//! after writing the header, so the journal's *name* survives a crash,
//! not just its bytes; [`JournalWriter::resume`] re-reads the file
//! itself, truncates any torn tail at [`Journal::committed_len`], and
//! syncs the truncation before appending.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

use crate::digest::Fnv64;
use crate::json::JsonValue;

/// The schema tag of every journal this module writes.
pub const JOURNAL_SCHEMA: &str = "mlc-journal/1";

/// The run identity and grid definition a journal is valid for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Content digest of the trace (`fnv1a64:…`), not its path.
    pub trace_digest: String,
    /// The sweep engine name (`onepass` / `exhaustive`).
    pub engine: String,
    /// L1 size in bytes per side.
    pub l1_bytes: u64,
    /// Warm-up records excluded from statistics.
    pub warmup: u64,
    /// L2 associativity of every grid point.
    pub ways: u64,
    /// Swept L2 sizes in bytes, ascending.
    pub sizes: Vec<u64>,
    /// Swept L2 cycle times in CPU cycles, ascending.
    pub cycles: Vec<u64>,
    /// Request-lifecycle trace context of the submission that created
    /// this journal (`None` for journals written before tracing, or by
    /// tools that have no request context). Identity metadata only: it
    /// never participates in content addressing, and a resumed journal
    /// keeps its original id.
    pub trace_id: Option<String>,
}

/// One committed grid row: the journal-side mirror of
/// `mlc_core::GridRow`, with floats carried as bit patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRow {
    /// Size index within the header's `sizes`.
    pub row: u64,
    /// Total execution cycles per swept cycle time.
    pub total: Vec<u64>,
    /// L2 local read miss ratio (bit-exact, may be NaN).
    pub l2_local: f64,
    /// L2 global read miss ratio.
    pub l2_global: f64,
    /// L1 global read miss ratio.
    pub m_l1_global: f64,
    /// CPU cycle time in ns.
    pub cpu_cycle_ns: f64,
}

/// Why a journal could not be used.
#[derive(Debug)]
pub enum JournalError {
    /// The file could not be read or written.
    Io(io::Error),
    /// A committed line is malformed: bad JSON, a failed integrity
    /// check, a wrong schema, or a row inconsistent with the header.
    /// `line` is 1-based.
    Corrupt {
        /// 1-based line number of the offending committed line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "corrupt journal at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// A parsed journal: the header, every committed row, and what (if
/// anything) the crash left behind.
#[derive(Debug, Clone)]
pub struct Journal {
    /// The run identity the journal was created for.
    pub header: JournalHeader,
    /// Committed rows in first-appearance file order. Bit-identical
    /// duplicates have been dropped during reading; differing
    /// duplicates are a read error, so every `row` index here is
    /// unique.
    pub rows: Vec<JournalRow>,
    /// Whether an uncommitted torn tail was dropped.
    pub torn_tail: bool,
    /// File offset just past the last committed line; a resuming
    /// writer truncates to this before appending.
    pub committed_len: u64,
}

impl Journal {
    /// The committed row for size index `idx`, if any. Row indices are
    /// unique after reading (see [`Journal::rows`]).
    pub fn row_for(&self, idx: u64) -> Option<&JournalRow> {
        self.rows.iter().find(|r| r.row == idx)
    }

    /// Size indices the journal does **not** cover, ascending — the
    /// remainder a resumed sweep must compute.
    pub fn missing_rows(&self) -> Vec<u64> {
        (0..self.header.sizes.len() as u64)
            .filter(|i| self.row_for(*i).is_none())
            .collect()
    }
}

impl JournalRow {
    /// Bit-exact equality: floats compare by bit pattern (so NaN equals
    /// itself), which is the duplicate-row benignity test.
    fn bits_eq(&self, other: &JournalRow) -> bool {
        self.row == other.row
            && self.total == other.total
            && self.l2_local.to_bits() == other.l2_local.to_bits()
            && self.l2_global.to_bits() == other.l2_global.to_bits()
            && self.m_l1_global.to_bits() == other.m_l1_global.to_bits()
            && self.cpu_cycle_ns.to_bits() == other.cpu_cycle_ns.to_bits()
    }
}

fn f64_bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn f64_from_bits_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Renders `fields` with the integrity `check` field appended: the
/// FNV-1a 64 digest of the compact rendering *without* it.
fn render_checked_line(fields: Vec<(String, JsonValue)>) -> String {
    let unchecked = JsonValue::Object(fields).to_string_compact();
    let mut h = Fnv64::new();
    h.write(unchecked.as_bytes());
    let check = format!("fnv1a64:{:016x}", h.finish());
    // Splice the check in as the last field of the same object.
    debug_assert!(unchecked.ends_with('}'));
    let mut line = unchecked;
    line.pop();
    let sep = if line.ends_with('{') { "" } else { "," };
    line.push_str(&format!("{sep}\"check\":\"{check}\"}}"));
    line
}

/// Parses one committed line and verifies its `check` field; returns
/// the object's fields without `check`.
fn parse_checked_line(line: &str) -> Result<JsonValue, String> {
    let value = JsonValue::parse(line).map_err(|e| e.to_string())?;
    let JsonValue::Object(fields) = value else {
        return Err("line is not a JSON object".to_owned());
    };
    let mut kept = Vec::with_capacity(fields.len());
    let mut check = None;
    for (k, v) in fields {
        if k == "check" {
            check = v.as_str().map(str::to_owned);
            if check.is_none() {
                return Err("check field is not a string".to_owned());
            }
        } else {
            kept.push((k, v));
        }
    }
    let Some(check) = check else {
        return Err("missing check field".to_owned());
    };
    let unchecked = JsonValue::Object(kept).to_string_compact();
    let mut h = Fnv64::new();
    h.write(unchecked.as_bytes());
    let expect = format!("fnv1a64:{:016x}", h.finish());
    if check != expect {
        return Err("integrity check mismatch".to_owned());
    }
    JsonValue::parse(&unchecked).map_err(|e| e.to_string())
}

fn header_line(header: &JournalHeader) -> String {
    let ints = |xs: &[u64]| JsonValue::Array(xs.iter().map(|&v| JsonValue::U64(v)).collect());
    let mut fields = vec![
        ("schema".into(), JOURNAL_SCHEMA.into()),
        ("trace_digest".into(), header.trace_digest.as_str().into()),
        ("engine".into(), header.engine.as_str().into()),
        ("l1_bytes".into(), header.l1_bytes.into()),
        ("warmup".into(), header.warmup.into()),
        ("ways".into(), header.ways.into()),
        ("sizes".into(), ints(&header.sizes)),
        ("cycles".into(), ints(&header.cycles)),
    ];
    if let Some(trace_id) = &header.trace_id {
        fields.push(("trace_id".into(), trace_id.as_str().into()));
    }
    render_checked_line(fields)
}

fn row_line(row: &JournalRow) -> String {
    render_checked_line(vec![
        ("row".into(), row.row.into()),
        (
            "total".into(),
            JsonValue::Array(row.total.iter().map(|&v| JsonValue::U64(v)).collect()),
        ),
        ("l2_local_bits".into(), f64_bits_hex(row.l2_local).into()),
        ("l2_global_bits".into(), f64_bits_hex(row.l2_global).into()),
        (
            "m_l1_global_bits".into(),
            f64_bits_hex(row.m_l1_global).into(),
        ),
        (
            "cpu_cycle_ns_bits".into(),
            f64_bits_hex(row.cpu_cycle_ns).into(),
        ),
    ])
}

fn parse_header(value: &JsonValue) -> Result<JournalHeader, String> {
    let str_field = |name: &str| -> Result<String, String> {
        value
            .get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing or non-string field '{name}'"))
    };
    let u64_field = |name: &str| -> Result<u64, String> {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-integer field '{name}'"))
    };
    let ints_field = |name: &str| -> Result<Vec<u64>, String> {
        value
            .get(name)
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("missing or non-array field '{name}'"))?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| format!("non-integer in '{name}'")))
            .collect()
    };
    let schema = str_field("schema")?;
    if schema != JOURNAL_SCHEMA {
        return Err(format!("unsupported schema '{schema}'"));
    }
    let header = JournalHeader {
        trace_digest: str_field("trace_digest")?,
        engine: str_field("engine")?,
        l1_bytes: u64_field("l1_bytes")?,
        warmup: u64_field("warmup")?,
        ways: u64_field("ways")?,
        sizes: ints_field("sizes")?,
        cycles: ints_field("cycles")?,
        // Absent in journals written before request tracing: optional,
        // so old journals (and journals from context-free tools) parse.
        trace_id: match value.get("trace_id") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .map(str::to_owned)
                    .ok_or("non-string field 'trace_id'")?,
            ),
        },
    };
    if header.sizes.is_empty() || header.cycles.is_empty() {
        return Err("empty grid definition".to_owned());
    }
    Ok(header)
}

fn parse_row(value: &JsonValue, header: &JournalHeader) -> Result<JournalRow, String> {
    let row = value
        .get("row")
        .and_then(JsonValue::as_u64)
        .ok_or("missing or non-integer field 'row'")?;
    if row >= header.sizes.len() as u64 {
        return Err(format!(
            "row index {row} outside the {}-size grid",
            header.sizes.len()
        ));
    }
    let total: Vec<u64> = value
        .get("total")
        .and_then(JsonValue::as_array)
        .ok_or("missing or non-array field 'total'")?
        .iter()
        .map(|v| v.as_u64().ok_or("non-integer in 'total'"))
        .collect::<Result<_, _>>()?;
    if total.len() != header.cycles.len() {
        return Err(format!(
            "row has {} totals for {} cycle times",
            total.len(),
            header.cycles.len()
        ));
    }
    let bits_field = |name: &str| -> Result<f64, String> {
        value
            .get(name)
            .and_then(JsonValue::as_str)
            .and_then(f64_from_bits_hex)
            .ok_or_else(|| format!("missing or malformed field '{name}'"))
    };
    Ok(JournalRow {
        row,
        total,
        l2_local: bits_field("l2_local_bits")?,
        l2_global: bits_field("l2_global_bits")?,
        m_l1_global: bits_field("m_l1_global_bits")?,
        cpu_cycle_ns: bits_field("cpu_cycle_ns_bits")?,
    })
}

/// Reads and fully validates a journal file. See the module docs for
/// the torn-tail semantics.
///
/// # Errors
///
/// [`JournalError::Io`] when the file cannot be read;
/// [`JournalError::Corrupt`] when any committed line (including the
/// header) is malformed or fails its integrity check.
pub fn read_journal(path: &Path) -> Result<Journal, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let corrupt = |line: usize, reason: String| JournalError::Corrupt { line, reason };

    // Split into committed (newline-terminated) lines and the torn tail.
    let mut committed_len = 0u64;
    let mut lines: Vec<(usize, &[u8])> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            lines.push((lines.len() + 1, &bytes[start..i]));
            start = i + 1;
            committed_len = start as u64;
        }
    }
    let torn_tail = start < bytes.len();

    let mut it = lines.into_iter();
    let Some((line_no, header_bytes)) = it.next() else {
        return Err(corrupt(
            1,
            if torn_tail {
                "header line is incomplete (crash before the first commit); delete the journal and restart".to_owned()
            } else {
                "journal is empty".to_owned()
            },
        ));
    };
    let header_text = std::str::from_utf8(header_bytes)
        .map_err(|_| corrupt(line_no, "header is not UTF-8".to_owned()))?;
    let header_value =
        parse_checked_line(header_text).map_err(|reason| corrupt(line_no, reason))?;
    let header = parse_header(&header_value).map_err(|reason| corrupt(line_no, reason))?;

    let mut rows: Vec<JournalRow> = Vec::new();
    for (line_no, line_bytes) in it {
        let text = std::str::from_utf8(line_bytes)
            .map_err(|_| corrupt(line_no, "line is not UTF-8".to_owned()))?;
        let value = parse_checked_line(text).map_err(|reason| corrupt(line_no, reason))?;
        let row = parse_row(&value, &header).map_err(|reason| corrupt(line_no, reason))?;
        match rows.iter().find(|r| r.row == row.row) {
            // A resumed-then-crashed-then-resumed writer can legally
            // replay a row it already committed; that is only safe to
            // accept when the payloads are bit-identical.
            Some(prev) if prev.bits_eq(&row) => {}
            Some(_) => {
                return Err(corrupt(
                    line_no,
                    format!(
                        "duplicate committed row {} with a differing payload",
                        row.row
                    ),
                ))
            }
            None => rows.push(row),
        }
    }
    Ok(Journal {
        header,
        rows,
        torn_tail,
        committed_len,
    })
}

/// Fsyncs the directory holding `path`, making a just-created (or
/// just-renamed) directory entry durable. A data fsync alone persists
/// the file's *bytes*; the *name* lives in the directory and needs its
/// own sync, or a crash right after `create` can lose the whole file.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let dir = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = path;
        Ok(())
    }
}

/// Public re-export of the directory-entry fsync used by the journal:
/// callers that rename completed journals (the result-cache commit
/// path) need the same durability for the new name.
///
/// # Errors
///
/// Any I/O error from opening or syncing the directory. On non-Unix
/// platforms this is a no-op.
pub fn sync_dir_of(path: &Path) -> io::Result<()> {
    sync_parent_dir(path)
}

/// An append-only journal writer. Every line is written with a single
/// `write` call and fsync'd before the method returns, so a record
/// either fully exists on disk or (as a droppable torn tail) does not.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating) a journal at `path`, durably writes its
    /// header line, and fsyncs the parent directory so the file itself
    /// survives a crash immediately after creation.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating, writing, or syncing the file or its
    /// directory.
    pub fn create(path: &Path, header: &JournalHeader) -> io::Result<JournalWriter> {
        let file = File::create(path)?;
        let mut w = JournalWriter { file };
        w.write_line(&header_line(header))?;
        sync_parent_dir(path)?;
        Ok(w)
    }

    /// Reopens an existing journal for appending: reads and validates
    /// it, truncates any torn tail at [`Journal::committed_len`], syncs
    /// the truncation, and returns the writer together with the parsed
    /// journal (header and committed rows) — the writer owns the
    /// truncation decision instead of trusting a caller-supplied
    /// length.
    ///
    /// # Errors
    ///
    /// [`JournalError::Corrupt`] when a committed line is malformed;
    /// [`JournalError::Io`] on read/truncate/sync failure.
    pub fn resume(path: &Path) -> Result<(JournalWriter, Journal), JournalError> {
        use std::io::Seek;
        let journal = read_journal(path)?;
        let mut file = OpenOptions::new().write(true).open(path)?;
        file.set_len(journal.committed_len)?;
        file.sync_data()?;
        file.seek(io::SeekFrom::End(0))?;
        Ok((JournalWriter { file }, journal))
    }

    /// Durably appends one completed row.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing or syncing the file.
    pub fn append_row(&mut self, row: &JournalRow) -> io::Result<()> {
        self.write_line(&row_line(row))
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mlc_journal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_header() -> JournalHeader {
        JournalHeader {
            trace_digest: "fnv1a64:0123456789abcdef".into(),
            engine: "onepass".into(),
            l1_bytes: 4096,
            warmup: 1000,
            ways: 1,
            sizes: vec![32768, 65536, 131072],
            cycles: vec![1, 4],
            trace_id: None,
        }
    }

    #[test]
    fn trace_id_round_trips_and_stays_optional() {
        // With a trace context: the id survives the round trip.
        let path = tmp("trace_id.jsonl");
        let mut header = sample_header();
        header.trace_id = Some("trc-00c0ffee00c0ffee".into());
        let w = JournalWriter::create(&path, &header).unwrap();
        drop(w);
        assert_eq!(read_journal(&path).unwrap().header, header);

        // Without one (the pre-tracing line shape): parses as None.
        let bare = tmp("trace_id_none.jsonl");
        let w = JournalWriter::create(&bare, &sample_header()).unwrap();
        drop(w);
        let j = read_journal(&bare).unwrap();
        assert_eq!(j.header.trace_id, None);
        let line = std::fs::read_to_string(&bare).unwrap();
        assert!(
            !line.contains("trace_id"),
            "a context-free header must not grow a field: {line}"
        );
    }

    fn sample_row(i: u64) -> JournalRow {
        JournalRow {
            row: i,
            total: vec![100 + i, 200 + i],
            l2_local: 0.25,
            l2_global: f64::NAN,
            m_l1_global: 0.1,
            cpu_cycle_ns: 10.0,
        }
    }

    #[test]
    fn round_trips_header_and_rows() {
        let path = tmp("round_trip.jsonl");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append_row(&sample_row(0)).unwrap();
        w.append_row(&sample_row(2)).unwrap();
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.header, sample_header());
        assert_eq!(j.rows.len(), 2);
        let (got, want) = (&j.rows[0], sample_row(0));
        assert_eq!((got.row, &got.total), (want.row, &want.total));
        assert_eq!(got.l2_local.to_bits(), want.l2_local.to_bits());
        assert_eq!(got.cpu_cycle_ns.to_bits(), want.cpu_cycle_ns.to_bits());
        // NaN round-trips bit-exactly through the hex encoding.
        assert!(j.rows[1].l2_global.is_nan());
        assert_eq!(
            j.rows[1].l2_global.to_bits(),
            sample_row(2).l2_global.to_bits()
        );
        assert!(!j.torn_tail);
        assert_eq!(j.committed_len, std::fs::metadata(&path).unwrap().len());
        assert_eq!(j.missing_rows(), vec![1]);
        assert!(j.row_for(2).is_some() && j.row_for(1).is_none());
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn.jsonl");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append_row(&sample_row(0)).unwrap();
        drop(w);
        let committed = std::fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: half a line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"row\":1,\"tot").unwrap();
        drop(f);
        let j = read_journal(&path).unwrap();
        assert!(j.torn_tail);
        assert_eq!(j.committed_len, committed);
        assert_eq!(j.rows.len(), 1);
        // Resume reads the journal itself, truncates the debris, and
        // appends cleanly.
        let (mut w, resumed) = JournalWriter::resume(&path).unwrap();
        assert!(resumed.torn_tail);
        assert_eq!(resumed.rows.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        w.append_row(&sample_row(1)).unwrap();
        drop(w);
        let j = read_journal(&path).unwrap();
        assert!(!j.torn_tail);
        assert_eq!(j.rows.len(), 2);
        assert!(j.missing_rows().contains(&2));
    }

    #[test]
    fn committed_corruption_is_typed() {
        let path = tmp("corrupt.jsonl");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append_row(&sample_row(0)).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the committed row line.
        let flip = bytes.len() - 10;
        bytes[flip] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match read_journal(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_and_bad_rows_are_typed() {
        let path = tmp("schema.jsonl");
        let mut fields = sample_header();
        fields.trace_digest = "fnv1a64:ffffffffffffffff".into();
        let mut w = JournalWriter::create(&path, &fields).unwrap();
        // A row outside the grid is corrupt even with a valid check.
        w.append_row(&sample_row(9)).unwrap();
        drop(w);
        match read_journal(&path) {
            Err(JournalError::Corrupt { line, reason }) => {
                assert_eq!(line, 2);
                assert!(reason.contains("outside"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        std::fs::write(&path, "{\"schema\":\"mlc-journal/9\",\"check\":\"x\"}\n").unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(JournalError::Corrupt { line: 1, .. })
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("does_not_exist.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(read_journal(&path), Err(JournalError::Io(_))));
    }

    #[test]
    fn bit_identical_duplicate_rows_are_benign() {
        // A resumed writer replaying a row it already committed (the
        // resume-crash-resume scenario) produces an exact duplicate;
        // reading must dedup it, not fail.
        let path = tmp("dup_benign.jsonl");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append_row(&sample_row(1)).unwrap();
        w.append_row(&sample_row(1)).unwrap();
        w.append_row(&sample_row(0)).unwrap();
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.rows.len(), 2);
        assert_eq!(j.row_for(1).unwrap().total, sample_row(1).total);
        assert_eq!(j.missing_rows(), vec![2]);
        // NaN payloads still count as bit-identical.
        assert!(j.row_for(1).unwrap().l2_global.is_nan());
    }

    #[test]
    fn differing_duplicate_rows_are_corrupt() {
        let path = tmp("dup_corrupt.jsonl");
        let mut w = JournalWriter::create(&path, &sample_header()).unwrap();
        w.append_row(&sample_row(1)).unwrap();
        let mut newer = sample_row(1);
        newer.total = vec![7, 8];
        w.append_row(&newer).unwrap();
        drop(w);
        match read_journal(&path) {
            Err(JournalError::Corrupt { line, reason }) => {
                assert_eq!(line, 3);
                assert!(reason.contains("duplicate committed row 1"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn create_survives_missing_parent_dir_error() {
        // A nonexistent parent directory is an I/O error from create,
        // not a panic from the directory fsync.
        let path = std::env::temp_dir()
            .join("mlc_journal_unit_missing")
            .join("nested")
            .join("j.jsonl");
        assert!(JournalWriter::create(&path, &sample_header()).is_err());
    }
}
