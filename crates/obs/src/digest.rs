//! Content digests for trace provenance.
//!
//! A manifest that names a trace only by path is an audit trail with a
//! hole in it — the file can be regenerated with a different seed and
//! every downstream number silently changes. The 64-bit FNV-1a digest
//! here hashes the *records* (kind label + address), not the file
//! bytes, so the same trace stored as `.din`, fixed-width binary, or
//! delta-compressed binary digests identically.

use mlc_trace::TraceRecord;

/// Streaming 64-bit FNV-1a hasher.
///
/// # Examples
///
/// ```
/// use mlc_obs::Fnv64;
///
/// let mut h = Fnv64::new();
/// h.write(b"hello");
/// assert_eq!(h.finish(), 0xa430d84680aabd0b);
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x100_0000_01b3;

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: OFFSET_BASIS,
        }
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// Digests a record sequence: per record, the din kind label byte
/// followed by the address in little-endian order.
///
/// # Examples
///
/// ```
/// use mlc_obs::digest_records;
/// use mlc_trace::TraceRecord;
///
/// let a = [TraceRecord::ifetch(0x4), TraceRecord::read(0x100)];
/// let b = [TraceRecord::ifetch(0x4), TraceRecord::read(0x101)];
/// assert_ne!(digest_records(&a), digest_records(&b));
/// assert_eq!(digest_records(&a), digest_records(&a));
/// ```
pub fn digest_records(records: &[TraceRecord]) -> u64 {
    let mut h = Fnv64::new();
    for r in records {
        h.write(&[r.kind.din_label()]);
        h.write(&r.addr.get().to_le_bytes());
    }
    h.finish()
}

/// [`digest_records`] rendered as the manifest's digest string, e.g.
/// `"fnv1a64:a1b2c3d4e5f60718"`.
pub fn digest_records_hex(records: &[TraceRecord]) -> String {
    format!("fnv1a64:{:016x}", digest_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        let mut h = Fnv64::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325); // empty
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_order_and_kind_sensitive() {
        let a = [TraceRecord::read(1), TraceRecord::write(2)];
        let b = [TraceRecord::write(2), TraceRecord::read(1)];
        let c = [TraceRecord::write(1), TraceRecord::read(2)];
        assert_ne!(digest_records(&a), digest_records(&b));
        assert_ne!(digest_records(&a), digest_records(&c));
        assert_ne!(digest_records(&a), digest_records(&a[..1]));
    }

    #[test]
    fn hex_format_is_fixed_width() {
        let d = digest_records_hex(&[]);
        assert!(d.starts_with("fnv1a64:"));
        assert_eq!(d.len(), "fnv1a64:".len() + 16);
    }
}
