//! The structured metrics core: counters, gauges, and phase timers
//! behind a near-zero-cost handle.
//!
//! Design constraints, in order:
//!
//! 1. **No global state.** A [`Metrics`] is an explicit handle threaded
//!    through APIs; two sweeps in one process cannot contaminate each
//!    other.
//! 2. **Disabled means free.** [`Metrics::disabled`] carries no
//!    allocation, and every operation on it is a single `Option` check —
//!    simulation drivers feed metrics unconditionally at phase
//!    boundaries without a feature gate. Nothing is ever recorded from
//!    per-access hot loops.
//! 3. **Deterministic export order.** Names are kept in sorted maps, so
//!    two runs of the same workload emit the same event *keys* in the
//!    same order even when parallel workers record in different
//!    interleavings; only the timing values differ.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::histogram::Log2Histogram;
use crate::json::JsonValue;

/// Accumulated wall-clock time of one named phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStat {
    /// How many times the phase was recorded.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub total_ns: u128,
}

impl PhaseStat {
    /// Total wall-clock milliseconds across all calls.
    pub fn wall_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

#[derive(Debug, Default)]
struct MetricsState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    phases: BTreeMap<String, PhaseStat>,
    hists: BTreeMap<String, Log2Histogram>,
}

/// A cheap, cloneable metrics handle; see the module docs.
///
/// # Examples
///
/// ```
/// use mlc_obs::Metrics;
///
/// let m = Metrics::enabled();
/// m.add("sim.instructions", 1000);
/// m.add("sim.instructions", 500);
/// m.gauge("sim.cpi", 1.62);
/// let snap = m.snapshot();
/// assert_eq!(snap.counters, vec![("sim.instructions".into(), 1500)]);
///
/// // A disabled handle accepts the same calls and records nothing.
/// let off = Metrics::disabled();
/// off.add("sim.instructions", 1000);
/// assert!(off.snapshot().counters.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsState>>>,
}

/// A point-in-time copy of everything a [`Metrics`] has recorded, with
/// every section sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Phase timers, sorted by name.
    pub phases: Vec<(String, PhaseStat)>,
    /// Log2-bucketed histograms, sorted by name.
    pub hists: Vec<(String, Log2Histogram)>,
}

impl Metrics {
    /// A recording handle.
    pub fn enabled() -> Self {
        Metrics {
            inner: Some(Arc::new(Mutex::new(MetricsState::default()))),
        }
    }

    /// A no-op handle: every operation returns after one `Option` check.
    pub fn disabled() -> Self {
        Metrics { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the counter `name` (created at zero).
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("metrics lock is never poisoned");
            *state.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("metrics lock is never poisoned");
            state.gauges.insert(name.to_owned(), value);
        }
    }

    /// Merges `hist` into the histogram `name` (created empty). The
    /// intended pattern is phase-boundary export: hot loops record into
    /// a local [`Log2Histogram`] (two increments, no lock), and the
    /// finished histogram is merged here once per phase.
    pub fn observe_hist(&self, name: &str, hist: &Log2Histogram) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("metrics lock is never poisoned");
            state.hists.entry(name.to_owned()).or_default().merge(hist);
        }
    }

    /// Records one completed call of phase `name` taking `wall`.
    pub fn record_phase(&self, name: &str, wall: Duration) {
        if let Some(inner) = &self.inner {
            let mut state = inner.lock().expect("metrics lock is never poisoned");
            let stat = state.phases.entry(name.to_owned()).or_default();
            stat.calls += 1;
            stat.total_ns += wall.as_nanos();
        }
    }

    /// Starts a monotonic timer for phase `name`; the elapsed time is
    /// recorded when the returned guard is dropped (or [`PhaseTimer::stop`]
    /// is called). On a disabled handle this allocates nothing and does
    /// not read the clock.
    #[must_use = "the phase is timed until the returned guard drops"]
    pub fn time_phase(&self, name: &str) -> PhaseTimer {
        PhaseTimer {
            pending: self
                .inner
                .is_some()
                .then(|| (self.clone(), name.to_owned(), Instant::now())),
        }
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let state = inner.lock().expect("metrics lock is never poisoned");
                MetricsSnapshot {
                    counters: state
                        .counters
                        .iter()
                        .map(|(k, v)| (k.clone(), *v))
                        .collect(),
                    gauges: state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    phases: state.phases.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                    hists: state
                        .hists
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect(),
                }
            }
        }
    }

    /// Writes everything recorded so far as JSON-lines events:
    ///
    /// ```text
    /// {"event":"meta","schema":"mlc-metrics/1","tool":"mlc-sweep","version":"0.1.0"}
    /// {"event":"counter","name":"sim.instructions","value":45000}
    /// {"event":"gauge","name":"sim.cpi","value":1.62}
    /// {"event":"phase","name":"read_trace","calls":1,"wall_ms":12.345}
    /// {"event":"hist","name":"sim.L1.read_miss_latency","count":9,"mean":4.2,"max":31,"buckets":[[4,7,6],[16,31,3]]}
    /// ```
    ///
    /// Histogram buckets are `[lo, hi, count]` triples over inclusive
    /// log2 value ranges; only non-empty buckets appear.
    ///
    /// Events are ordered meta, counters, gauges, phases, hists, each
    /// section sorted by name.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write_jsonl<W: Write>(&self, w: W, tool: &str, version: &str) -> io::Result<()> {
        let mut w = io::BufWriter::new(w);
        let snap = self.snapshot();
        let line = |fields: Vec<(String, JsonValue)>| JsonValue::Object(fields).to_string_compact();
        writeln!(
            w,
            "{}",
            line(vec![
                ("event".into(), "meta".into()),
                ("schema".into(), "mlc-metrics/1".into()),
                ("tool".into(), tool.into()),
                ("version".into(), version.into()),
            ])
        )?;
        for (name, value) in &snap.counters {
            writeln!(
                w,
                "{}",
                line(vec![
                    ("event".into(), "counter".into()),
                    ("name".into(), name.as_str().into()),
                    ("value".into(), (*value).into()),
                ])
            )?;
        }
        for (name, value) in &snap.gauges {
            writeln!(
                w,
                "{}",
                line(vec![
                    ("event".into(), "gauge".into()),
                    ("name".into(), name.as_str().into()),
                    ("value".into(), (*value).into()),
                ])
            )?;
        }
        for (name, stat) in &snap.phases {
            writeln!(
                w,
                "{}",
                line(vec![
                    ("event".into(), "phase".into()),
                    ("name".into(), name.as_str().into()),
                    ("calls".into(), stat.calls.into()),
                    ("wall_ms".into(), stat.wall_ms().into()),
                ])
            )?;
        }
        for (name, hist) in &snap.hists {
            let mut fields = vec![
                ("event".into(), "hist".into()),
                ("name".into(), name.as_str().into()),
            ];
            if let JsonValue::Object(body) = hist.to_json() {
                fields.extend(body);
            }
            writeln!(w, "{}", line(fields))?;
        }
        w.flush()
    }
}

/// Guard returned by [`Metrics::time_phase`]; records the elapsed wall
/// time into the owning handle when dropped.
#[derive(Debug)]
pub struct PhaseTimer {
    pending: Option<(Metrics, String, Instant)>,
}

impl PhaseTimer {
    /// Stops the timer now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some((metrics, name, start)) = self.pending.take() {
            metrics.record_phase(&name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let m = Metrics::enabled();
        m.add("b", 2);
        m.add("a", 1);
        m.add("b", 3);
        let snap = m.snapshot();
        assert_eq!(snap.counters, vec![("a".into(), 1), ("b".into(), 5)]);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = Metrics::enabled();
        m.gauge("x", 1.0);
        m.gauge("x", 2.5);
        assert_eq!(m.snapshot().gauges, vec![("x".into(), 2.5)]);
    }

    #[test]
    fn phase_timer_records_on_drop() {
        let m = Metrics::enabled();
        {
            let _t = m.time_phase("p");
            std::thread::sleep(Duration::from_millis(2));
        }
        m.record_phase("p", Duration::from_millis(1));
        let snap = m.snapshot();
        assert_eq!(snap.phases.len(), 1);
        let (name, stat) = &snap.phases[0];
        assert_eq!(name, "p");
        assert_eq!(stat.calls, 2);
        assert!(stat.total_ns >= 3_000_000, "{}", stat.total_ns);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.add("c", 1);
        m.gauge("g", 1.0);
        m.time_phase("p").stop();
        let mut h = Log2Histogram::new();
        h.record(3);
        m.observe_hist("h", &h);
        let snap = m.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.phases.is_empty());
        assert!(snap.hists.is_empty());
        assert!(!m.is_enabled());
    }

    #[test]
    fn hists_merge_and_export() {
        let m = Metrics::enabled();
        let mut a = Log2Histogram::new();
        a.record(4);
        a.record(5);
        let mut b = Log2Histogram::new();
        b.record(100);
        m.observe_hist("lat", &a);
        m.observe_hist("lat", &b);
        let snap = m.snapshot();
        assert_eq!(snap.hists.len(), 1);
        assert_eq!(snap.hists[0].1.count(), 3);
        let mut buf = Vec::new();
        m.write_jsonl(&mut buf, "t", "0").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let hist_line = text.lines().last().unwrap();
        assert!(hist_line.contains(r#""event":"hist""#), "{text}");
        assert!(hist_line.contains(r#""name":"lat""#));
        assert!(hist_line.contains(r#""count":3"#));
        assert!(hist_line.contains(r#"[4,7,2]"#));
        assert!(hist_line.contains(r#"[64,127,1]"#));
    }

    #[test]
    fn clones_share_state() {
        let m = Metrics::enabled();
        let m2 = m.clone();
        m2.add("shared", 7);
        assert_eq!(m.snapshot().counters, vec![("shared".into(), 7)]);
    }

    #[test]
    fn threads_can_record_concurrently() {
        let m = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counters, vec![("n".into(), 4000)]);
    }

    #[test]
    fn jsonl_export_shape() {
        let m = Metrics::enabled();
        m.add("refs", 10);
        m.gauge("cpi", 1.5);
        m.record_phase("run", Duration::from_millis(3));
        let mut buf = Vec::new();
        m.write_jsonl(&mut buf, "test-tool", "9.9.9").unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""schema":"mlc-metrics/1""#), "{text}");
        assert!(lines[0].contains(r#""tool":"test-tool""#));
        assert!(lines[1].contains(r#""event":"counter""#) && lines[1].contains(r#""value":10"#));
        assert!(lines[2].contains(r#""event":"gauge""#));
        assert!(lines[3].contains(r#""event":"phase""#) && lines[3].contains(r#""calls":1"#));
    }
}
