//! A minimal JSON document model.
//!
//! The workspace has no external dependencies, so manifests, metrics
//! events, and bench artifacts render through this ~150-line model
//! instead of serde. Two renderers cover every need:
//!
//! * [`JsonValue::to_string_compact`] — one line, for JSON-lines events;
//! * [`JsonValue::to_string_pretty`] — objects expand to one field per
//!   line (arrays stay inline), so manifests diff line-by-line.

use std::fmt::Write as _;

/// A JSON value with insertion-ordered object fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, keeping order.
    pub fn object<I>(fields: I) -> JsonValue
    where
        I: IntoIterator<Item = (String, JsonValue)>,
    {
        JsonValue::Object(fields.into_iter().collect())
    }

    /// Renders on a single line with no whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation: one object field per line,
    /// arrays inline. A trailing newline is included so the output is a
    /// well-formed text file on its own.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(if indent.is_some() { ", " } else { "," });
                    }
                    // Arrays render inline even in pretty mode so each
                    // object field stays on a single diffable line.
                    item.render(out, None, depth);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(step) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(step * (depth + 1)));
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth + 1);
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * depth));
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::object([
            ("a".into(), JsonValue::U64(1)),
            ("b".into(), JsonValue::Array(vec![1u64.into(), 2u64.into()])),
            ("c".into(), "x\"y".into()),
        ]);
        assert_eq!(v.to_string_compact(), r#"{"a":1,"b":[1,2],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_puts_one_field_per_line_with_inline_arrays() {
        let v = JsonValue::object([
            ("a".into(), JsonValue::U64(1)),
            (
                "nested".into(),
                JsonValue::object([("b".into(), JsonValue::Array(vec![1u64.into(), 2u64.into()]))]),
            ),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"nested\": {\n    \"b\": [1, 2]\n  }\n}\n"
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v: JsonValue = "a\n\tb\u{1}".into();
        assert_eq!(v.to_string_compact(), "\"a\\n\\tb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(JsonValue::F64(1.5).to_string_compact(), "1.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Object(vec![]).to_string_compact(), "{}");
        assert_eq!(JsonValue::Array(vec![]).to_string_compact(), "[]");
    }
}
