//! A minimal JSON document model.
//!
//! The workspace has no external dependencies, so manifests, metrics
//! events, and bench artifacts render through this model instead of
//! serde. Two renderers and one parser cover every need:
//!
//! * [`JsonValue::to_string_compact`] — one line, for JSON-lines events;
//! * [`JsonValue::to_string_pretty`] — objects expand to one field per
//!   line (arrays stay inline), so manifests diff line-by-line.
//! * [`JsonValue::parse`] — a strict parser, used to read sweep
//!   journals back. Integral numbers become [`JsonValue::U64`] /
//!   [`JsonValue::I64`], so values this crate writes round-trip
//!   byte-identically through parse → compact render (the property the
//!   journal's per-line integrity checks rely on).

use std::fmt::{self, Write as _};

/// A JSON value with insertion-ordered object fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null` (JSON has no NaN).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; fields keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure from [`JsonValue::parse`]: what went wrong and the
/// byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, keeping order.
    pub fn object<I>(fields: I) -> JsonValue
    where
        I: IntoIterator<Item = (String, JsonValue)>,
    {
        JsonValue::Object(fields.into_iter().collect())
    }

    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error. Object field order is preserved; duplicate keys are kept.
    ///
    /// Non-negative integrals parse as [`JsonValue::U64`], negative
    /// integrals as [`JsonValue::I64`], everything else numeric as
    /// [`JsonValue::F64`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] locating the first malformed byte.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlc_obs::json::JsonValue;
    ///
    /// let v = JsonValue::parse(r#"{"a":1,"b":[true,null,"x"]}"#).unwrap();
    /// assert_eq!(v.get("a"), Some(&JsonValue::U64(1)));
    /// assert_eq!(v.to_string_compact(), r#"{"a":1,"b":[true,null,"x"]}"#);
    /// assert!(JsonValue::parse("{oops").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(v)
    }

    /// Looks up a field of an object; `None` for missing fields and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value's array items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders on a single line with no whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation: one object field per line,
    /// arrays inline. A trailing newline is included so the output is a
    /// well-formed text file on its own.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(if indent.is_some() { ", " } else { "," });
                    }
                    // Arrays render inline even in pretty mode so each
                    // object field stays on a single diffable line.
                    item.render(out, None, depth);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if let Some(step) = indent {
                        out.push('\n');
                        out.push_str(&" ".repeat(step * (depth + 1)));
                    }
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, depth + 1);
                }
                if let Some(step) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(step * depth));
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

/// Nesting depth bound for the parser: journals and manifests nest two
/// or three levels, so anything deeper is hostile input, not data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                if self.peek().is_some_and(|b| b < 0x20) {
                    return Err(self.err("unescaped control character in string"));
                }
                self.pos += 1;
            }
            if start < self.pos {
                // The input is a &str, so any slice between ASCII
                // delimiters is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("input came from a &str"),
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => unreachable!("loop above stops only at delimiters"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if integral {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(JsonValue::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| self.err("number out of range"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = JsonValue::object([
            ("a".into(), JsonValue::U64(1)),
            ("b".into(), JsonValue::Array(vec![1u64.into(), 2u64.into()])),
            ("c".into(), "x\"y".into()),
        ]);
        assert_eq!(v.to_string_compact(), r#"{"a":1,"b":[1,2],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_puts_one_field_per_line_with_inline_arrays() {
        let v = JsonValue::object([
            ("a".into(), JsonValue::U64(1)),
            (
                "nested".into(),
                JsonValue::object([("b".into(), JsonValue::Array(vec![1u64.into(), 2u64.into()]))]),
            ),
        ]);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"a\": 1,\n  \"nested\": {\n    \"b\": [1, 2]\n  }\n}\n"
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v: JsonValue = "a\n\tb\u{1}".into();
        assert_eq!(v.to_string_compact(), "\"a\\n\\tb\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_string_compact(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_string_compact(), "null");
        assert_eq!(JsonValue::F64(1.5).to_string_compact(), "1.5");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::Object(vec![]).to_string_compact(), "{}");
        assert_eq!(JsonValue::Array(vec![]).to_string_compact(), "[]");
    }

    #[test]
    fn parse_round_trips_compact_documents() {
        let docs = [
            r#"{"a":1,"b":[1,2],"c":"x\"y"}"#,
            r#"{"schema":"mlc-journal/1","row":3,"total":[18446744073709551615,0]}"#,
            r#"[null,true,false,-7,1.5,"s"]"#,
            "{}",
            "[]",
            r#""plain""#,
            "0",
            "-0.5",
        ];
        for doc in docs {
            let v = JsonValue::parse(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
            assert_eq!(v.to_string_compact(), doc, "round trip of {doc}");
        }
    }

    #[test]
    fn parse_number_types() {
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::U64(42));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::U64(u64::MAX)
        );
        assert_eq!(JsonValue::parse("-42").unwrap(), JsonValue::I64(-42));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::F64(1000.0));
        assert_eq!(JsonValue::parse("0.25").unwrap(), JsonValue::F64(0.25));
    }

    #[test]
    fn parse_decodes_escapes() {
        let v = JsonValue::parse(r#""a\n\tA😀""#).unwrap();
        assert_eq!(v, JsonValue::Str("a\n\tA\u{1f600}".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "01",
            "1.",
            "1e",
            "tru",
            r#""unterminated"#,
            r#""bad \q escape""#,
            r#""\ud800""#,
            "[1] trailing",
            "nullx",
            "\u{1}",
        ] {
            let e = JsonValue::parse(bad);
            assert!(e.is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"s":"x","n":3,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }
}
