//! Request-lifecycle trace context and server spans.
//!
//! The paper's framing — performance is governed by *where time is
//! spent across tiers* — applies to the serving layer itself: a sweep
//! request is answered from a memory tier, a disk tier, or a fresh
//! simulation, and each answer crosses a fixed set of lifecycle
//! stages. This module names those stages ([`Stage`]), mints the
//! process-unique trace ids that follow one request across them
//! ([`mint_trace_id`]), and exports recorded spans as Chrome
//! trace-event JSON ([`write_span_chrome_trace`]) so a served
//! request's wall-clock anatomy loads straight into Perfetto, exactly
//! like a simulated access's cycle anatomy does via
//! [`crate::write_chrome_trace`].
//!
//! The module holds the *vocabulary* only; the lock-free sharded
//! recorder lives with the server (`mlc-serve`), keeping this crate's
//! dependency arrow pointing the usual way.

use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::digest::Fnv64;
use crate::json::JsonValue;

/// The schema tag stamped into `otherData` of a span Chrome trace.
pub const SPAN_TRACE_SCHEMA: &str = "mlc-serve-spans/1";

/// Longest accepted trace id (generous for caller-supplied ids, small
/// enough to keep protocol lines and journal headers compact).
pub const TRACE_ID_MAX_LEN: usize = 64;

/// One lifecycle stage of a served request, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Connection accepted and greeted.
    Accept,
    /// A request line parsed (or rejected) into a typed request.
    Parse,
    /// Admission control: request validation and the job-slot check.
    Admission,
    /// Content addressing: trace load, digest, and key derivation.
    Key,
    /// Memory-tier cache probe.
    MemLookup,
    /// Disk-tier cache probe (only on a memory miss).
    DiskLookup,
    /// The sweep simulation itself, all rows.
    Simulate,
    /// Durable commit: the journal's rename into the cache tier.
    JournalCommit,
    /// Post-commit disk-budget enforcement (LRU eviction pass).
    Evict,
    /// Writing a terminal response event to the peer.
    Reply,
}

impl Stage {
    /// Every stage, in request order.
    pub const ALL: [Stage; 10] = [
        Stage::Accept,
        Stage::Parse,
        Stage::Admission,
        Stage::Key,
        Stage::MemLookup,
        Stage::DiskLookup,
        Stage::Simulate,
        Stage::JournalCommit,
        Stage::Evict,
        Stage::Reply,
    ];

    /// Number of stages.
    pub const COUNT: usize = Stage::ALL.len();

    /// The stage's wire name, as it appears in `mlc-stats/1` documents
    /// and Perfetto track names.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::Admission => "admission",
            Stage::Key => "key",
            Stage::MemLookup => "mem-lookup",
            Stage::DiskLookup => "disk-lookup",
            Stage::Simulate => "simulate",
            Stage::JournalCommit => "journal-commit",
            Stage::Evict => "evict",
            Stage::Reply => "reply",
        }
    }

    /// The stage's position in [`Stage::ALL`] (a stable dense index for
    /// per-stage storage).
    pub fn index(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("in ALL")
    }
}

/// One recorded begin/end span: a stage crossing of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request's trace context (empty for spans recorded before a
    /// request acquires one, e.g. `accept`).
    pub trace_id: String,
    /// Process-unique span id, minted per recording.
    pub span_id: u64,
    /// The lifecycle stage.
    pub stage: Stage,
    /// Start offset, microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Mints a process-unique trace id of the form `trc-<16 hex>`: an
/// FNV-1a-64 mix of pid, wall clock, and a process-wide sequence
/// number, so concurrent minters in one process — and independent
/// clients on one machine — do not collide in practice.
pub fn mint_trace_id() -> String {
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id() as u64;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut h = Fnv64::new();
    h.write(&pid.to_le_bytes());
    h.write(&nanos.to_le_bytes());
    h.write(&seq.to_le_bytes());
    format!("trc-{:016x}", h.finish())
}

/// Whether `id` is acceptable as a caller-supplied trace id: 1 to
/// [`TRACE_ID_MAX_LEN`] characters from `[A-Za-z0-9._:-]` — safe to
/// embed in protocol lines, JSON documents, and log output verbatim.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= TRACE_ID_MAX_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

/// Writes spans as Chrome trace-event JSON (Perfetto-loadable): one
/// track per [`Stage`], one `X` duration slice per span, with the
/// span's `trace_id` in the slice args so a single request can be
/// followed across tracks. `otherData.schema` is
/// [`SPAN_TRACE_SCHEMA`].
///
/// # Errors
///
/// Any I/O error from `w`.
pub fn write_span_chrome_trace<W: Write>(w: W, spans: &[SpanRecord]) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    let mut trace_events = Vec::new();
    for stage in Stage::ALL {
        trace_events.push(JsonValue::object([
            ("name".into(), "thread_name".into()),
            ("ph".into(), "M".into()),
            ("pid".into(), 1u64.into()),
            ("tid".into(), (stage.index() as u64).into()),
            (
                "args".into(),
                JsonValue::object([("name".into(), stage.as_str().into())]),
            ),
        ]));
    }
    for span in spans {
        trace_events.push(JsonValue::object([
            ("name".into(), span.stage.as_str().into()),
            ("cat".into(), "request".into()),
            ("ph".into(), "X".into()),
            ("ts".into(), (span.start_us as f64).into()),
            // Sub-microsecond spans still get a minimal visible slice.
            ("dur".into(), (span.dur_us.max(1) as f64).into()),
            ("pid".into(), 1u64.into()),
            ("tid".into(), (span.stage.index() as u64).into()),
            (
                "args".into(),
                JsonValue::object([
                    ("trace_id".into(), span.trace_id.as_str().into()),
                    ("span_id".into(), span.span_id.into()),
                ]),
            ),
        ]));
    }
    let doc = JsonValue::object([
        ("traceEvents".into(), JsonValue::Array(trace_events)),
        ("displayTimeUnit".into(), "ns".into()),
        (
            "otherData".into(),
            JsonValue::object([
                ("schema".into(), SPAN_TRACE_SCHEMA.into()),
                ("spans".into(), (spans.len() as u64).into()),
            ]),
        ),
    ]);
    w.write_all(doc.to_string_pretty().as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_and_indices_are_stable() {
        assert_eq!(Stage::COUNT, 10);
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::MemLookup.as_str(), "mem-lookup");
        assert_eq!(Stage::JournalCommit.as_str(), "journal-commit");
        // Wire names are unique (they key the mlc-stats/1 stages map).
        let names: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn minted_trace_ids_are_unique_and_valid() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = mint_trace_id();
            assert!(valid_trace_id(&id), "{id}");
            assert!(id.starts_with("trc-"));
            assert!(seen.insert(id), "duplicate id minted");
        }
    }

    #[test]
    fn trace_id_validation_rejects_hostile_input() {
        assert!(valid_trace_id("trc-00c0ffee00c0ffee"));
        assert!(valid_trace_id("build_42:retry.1"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id(&"x".repeat(TRACE_ID_MAX_LEN + 1)));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id("quote\"break"));
        assert!(!valid_trace_id("new\nline"));
        assert!(!valid_trace_id("../escape"));
    }

    #[test]
    fn span_chrome_trace_has_perfetto_shape() {
        let spans = vec![
            SpanRecord {
                trace_id: "trc-1".into(),
                span_id: 7,
                stage: Stage::Simulate,
                start_us: 100,
                dur_us: 2500,
            },
            SpanRecord {
                trace_id: "trc-1".into(),
                span_id: 8,
                stage: Stage::JournalCommit,
                start_us: 2600,
                dur_us: 0,
            },
        ];
        let mut buf = Vec::new();
        write_span_chrome_trace(&mut buf, &spans).unwrap();
        let doc = JsonValue::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            doc.get("otherData").unwrap().get("schema").unwrap(),
            &JsonValue::from(SPAN_TRACE_SCHEMA)
        );
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // One metadata event per stage track plus one slice per span.
        assert_eq!(events.len(), Stage::COUNT + spans.len());
        for ev in events {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
        }
        let slice = &events[Stage::COUNT];
        assert_eq!(slice.get("name").unwrap().as_str(), Some("simulate"));
        assert_eq!(
            slice.get("args").unwrap().get("trace_id").unwrap().as_str(),
            Some("trc-1")
        );
        // Zero-duration spans stay visible. (An integral F64 renders as
        // a bare integer, so it reads back as U64 — compare the value.)
        assert_eq!(
            events[Stage::COUNT + 1].get("dur").unwrap().as_u64(),
            Some(1)
        );
    }
}
