//! Sampled structured event tracing (`mlc-events/1`) and the Chrome
//! trace-event export.
//!
//! Full per-access tracing of a multi-million-reference simulation would
//! dwarf the simulation itself, so the tracer samples: every N-th trace
//! record (N chosen by the caller, off by default everywhere) emits one
//! [`SimEvent`] describing where that access went and how long it took.
//! Sampling is deterministic — record indices `0, N, 2N, …` are sampled
//! — so two runs of the same trace produce identical event streams.
//!
//! Two exports cover the two consumers:
//!
//! * [`write_events_jsonl`] — the `mlc-events/1` JSON-lines schema, one
//!   self-describing meta line followed by one line per event, for
//!   scripted analysis (`jq`, pandas);
//! * [`write_chrome_trace`] — the Chrome trace-event JSON format, which
//!   loads directly into Perfetto (ui.perfetto.dev) or
//!   `chrome://tracing`: each hierarchy element becomes a track, each
//!   sampled access a duration slice. One simulated CPU cycle is
//!   exported as one nanosecond of trace time, scaled by the machine's
//!   cycle time.
//!
//! This module deliberately knows nothing about `mlc-sim` types — the
//! simulator fills plain [`SimEvent`] fields, keeping the dependency
//! arrow pointing from `mlc-sim` to `mlc-obs`.

use std::io::{self, Write};

use crate::json::JsonValue;

/// The reference kind of a sampled access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instruction fetch.
    Ifetch,
    /// A data load.
    Read,
    /// A data store.
    Write,
}

impl EventKind {
    /// The schema's string form: `"ifetch"`, `"read"`, or `"write"`.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Ifetch => "ifetch",
            EventKind::Read => "read",
            EventKind::Write => "write",
        }
    }
}

/// One sampled access: when it issued, how long it held the CPU, and the
/// deepest hierarchy element its critical path reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// Index of the trace record (0-based, over the whole run).
    pub index: u64,
    /// Reference kind.
    pub kind: EventKind,
    /// Referenced byte address.
    pub addr: u64,
    /// CPU cycle the access issued at.
    pub start_cycle: u64,
    /// Cycles from issue until the CPU could proceed (≥ 0; 0 for an
    /// access folded entirely into an already-open cycle).
    pub cycles: u64,
    /// Cycles of `cycles` that were stall (beyond the base execute
    /// cycle).
    pub stall_cycles: u64,
    /// Deepest hierarchy element on the critical path: a 0-based cache
    /// level index, or the level count for main memory. A level-0 hit
    /// reports 0.
    pub serviced: u32,
}

/// The default cap on retained events (bounds tracer memory: one event
/// is 56 bytes, so the cap is ~60 MB of worst-case retention).
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

/// An every-Nth-record sampling tracer accumulating [`SimEvent`]s.
///
/// # Examples
///
/// ```
/// use mlc_obs::{EventKind, EventTracer, SimEvent};
///
/// let mut tracer = EventTracer::new(2);
/// for index in 0..5u64 {
///     if tracer.wants(index) {
///         tracer.push(SimEvent {
///             index,
///             kind: EventKind::Read,
///             addr: 0x1000,
///             start_cycle: index,
///             cycles: 1,
///             stall_cycles: 0,
///             serviced: 0,
///         });
///     }
/// }
/// // Records 0, 2 and 4 were sampled.
/// assert_eq!(tracer.events().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EventTracer {
    every: u64,
    cap: usize,
    events: Vec<SimEvent>,
    truncated: bool,
}

impl EventTracer {
    /// A tracer sampling every `every`-th record (1 = every record),
    /// retaining at most [`DEFAULT_EVENT_CAP`] events.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> Self {
        EventTracer::with_cap(every, DEFAULT_EVENT_CAP)
    }

    /// A tracer with an explicit retention cap; once `cap` events are
    /// held, further pushes are dropped and [`EventTracer::truncated`]
    /// reports it.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn with_cap(every: u64, cap: usize) -> Self {
        assert!(every > 0, "sampling period must be positive");
        EventTracer {
            every,
            cap,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// The sampling period.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether record `index` should be sampled.
    #[inline]
    pub fn wants(&self, index: u64) -> bool {
        index.is_multiple_of(self.every)
    }

    /// Retains `event` (dropped once the cap is reached).
    pub fn push(&mut self, event: SimEvent) {
        if self.events.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.events.push(event);
    }

    /// The sampled events, in record order.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Whether any events were dropped at the retention cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// The name of the hierarchy element `serviced` refers to: a level name,
/// or `"memory"` past the last level.
fn serviced_name(serviced: u32, level_names: &[&str]) -> String {
    level_names
        .get(serviced as usize)
        .map(|n| (*n).to_owned())
        .unwrap_or_else(|| "memory".to_owned())
}

/// Writes the `mlc-events/1` JSON-lines file: one meta line, then one
/// `access` line per sampled event.
///
/// ```text
/// {"event":"meta","schema":"mlc-events/1","tool":"mlc-run","version":"0.1.0","every":1024,"levels":["L1","L2"],"count":59,"truncated":false}
/// {"event":"access","index":0,"kind":"ifetch","addr":"0x0","start":0,"cycles":31,"stall":30,"serviced":"memory"}
/// ```
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_events_jsonl<W: Write>(
    w: W,
    tool: &str,
    version: &str,
    level_names: &[&str],
    tracer: &EventTracer,
) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    let meta = JsonValue::object([
        ("event".into(), "meta".into()),
        ("schema".into(), "mlc-events/1".into()),
        ("tool".into(), tool.into()),
        ("version".into(), version.into()),
        ("every".into(), tracer.every().into()),
        (
            "levels".into(),
            JsonValue::Array(level_names.iter().map(|&n| n.into()).collect()),
        ),
        ("count".into(), (tracer.events().len() as u64).into()),
        ("truncated".into(), tracer.truncated().into()),
    ]);
    writeln!(w, "{}", meta.to_string_compact())?;
    for ev in tracer.events() {
        let line = JsonValue::object([
            ("event".into(), "access".into()),
            ("index".into(), ev.index.into()),
            ("kind".into(), ev.kind.as_str().into()),
            ("addr".into(), format!("{:#x}", ev.addr).into()),
            ("start".into(), ev.start_cycle.into()),
            ("cycles".into(), ev.cycles.into()),
            ("stall".into(), ev.stall_cycles.into()),
            (
                "serviced".into(),
                serviced_name(ev.serviced, level_names).into(),
            ),
        ]);
        writeln!(w, "{}", line.to_string_compact())?;
    }
    w.flush()
}

/// Writes a Chrome trace-event JSON document loadable by Perfetto and
/// `chrome://tracing`.
///
/// Each hierarchy element (plus main memory) becomes one named track
/// (`tid`); each sampled access becomes a complete (`"ph":"X"`) slice on
/// the track of the deepest element it reached. Trace timestamps are in
/// microseconds per the format; one CPU cycle maps to
/// `cpu_cycle_ns / 1000` µs so the timeline reads in real machine time.
///
/// # Errors
///
/// Returns any I/O error from the underlying writer.
pub fn write_chrome_trace<W: Write>(
    w: W,
    cpu_cycle_ns: f64,
    level_names: &[&str],
    tracer: &EventTracer,
) -> io::Result<()> {
    let mut w = io::BufWriter::new(w);
    let us_per_cycle = cpu_cycle_ns / 1000.0;
    let mut trace_events = Vec::new();
    // Track-name metadata: one track per level plus main memory.
    for tid in 0..=level_names.len() {
        trace_events.push(JsonValue::object([
            ("name".into(), "thread_name".into()),
            ("ph".into(), "M".into()),
            ("pid".into(), 1u64.into()),
            ("tid".into(), (tid as u64).into()),
            (
                "args".into(),
                JsonValue::object([("name".into(), serviced_name(tid as u32, level_names).into())]),
            ),
        ]));
    }
    for ev in tracer.events() {
        trace_events.push(JsonValue::object([
            (
                "name".into(),
                format!(
                    "{} {}",
                    ev.kind.as_str(),
                    serviced_name(ev.serviced, level_names)
                )
                .into(),
            ),
            ("cat".into(), "access".into()),
            ("ph".into(), "X".into()),
            ("ts".into(), (ev.start_cycle as f64 * us_per_cycle).into()),
            // Zero-cycle accesses (folded into an open cycle) still get
            // a minimal visible slice.
            (
                "dur".into(),
                (ev.cycles.max(1) as f64 * us_per_cycle).into(),
            ),
            ("pid".into(), 1u64.into()),
            ("tid".into(), u64::from(ev.serviced).into()),
            (
                "args".into(),
                JsonValue::object([
                    ("index".into(), ev.index.into()),
                    ("addr".into(), format!("{:#x}", ev.addr).into()),
                    ("stall_cycles".into(), ev.stall_cycles.into()),
                ]),
            ),
        ]));
    }
    let doc = JsonValue::object([
        ("traceEvents".into(), JsonValue::Array(trace_events)),
        ("displayTimeUnit".into(), "ns".into()),
        (
            "otherData".into(),
            JsonValue::object([
                ("schema".into(), "mlc-chrome-trace/1".into()),
                ("cpu_cycle_ns".into(), cpu_cycle_ns.into()),
                ("sample_every".into(), tracer.every().into()),
                ("truncated".into(), tracer.truncated().into()),
            ]),
        ),
    ]);
    writeln!(w, "{}", doc.to_string_compact())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> EventTracer {
        let mut t = EventTracer::new(4);
        t.push(SimEvent {
            index: 0,
            kind: EventKind::Ifetch,
            addr: 0x40,
            start_cycle: 0,
            cycles: 31,
            stall_cycles: 30,
            serviced: 2,
        });
        t.push(SimEvent {
            index: 4,
            kind: EventKind::Write,
            addr: 0x5000,
            start_cycle: 40,
            cycles: 2,
            stall_cycles: 1,
            serviced: 0,
        });
        t
    }

    #[test]
    fn sampling_is_every_nth_index() {
        let t = EventTracer::new(3);
        let sampled: Vec<u64> = (0..10).filter(|&i| t.wants(i)).collect();
        assert_eq!(sampled, vec![0, 3, 6, 9]);
        let every_record = EventTracer::new(1);
        assert!((0..10).all(|i| every_record.wants(i)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        EventTracer::new(0);
    }

    #[test]
    fn cap_truncates_instead_of_growing() {
        let mut t = EventTracer::with_cap(1, 2);
        for i in 0..5 {
            t.push(SimEvent {
                index: i,
                kind: EventKind::Read,
                addr: 0,
                start_cycle: i,
                cycles: 1,
                stall_cycles: 0,
                serviced: 0,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
    }

    #[test]
    fn jsonl_schema_shape() {
        let t = sample_events();
        let mut buf = Vec::new();
        write_events_jsonl(&mut buf, "mlc-run", "0.1.0", &["L1", "L2"], &t).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""schema":"mlc-events/1""#), "{text}");
        assert!(lines[0].contains(r#""every":4"#));
        assert!(lines[0].contains(r#""levels":["L1","L2"]"#));
        assert!(lines[0].contains(r#""count":2"#));
        assert!(lines[1].contains(r#""kind":"ifetch""#));
        assert!(lines[1].contains(r#""serviced":"memory""#));
        assert!(lines[1].contains(r#""addr":"0x40""#));
        assert!(lines[2].contains(r#""kind":"write""#));
        assert!(lines[2].contains(r#""serviced":"L1""#));
        // Every line parses as a standalone JSON document.
        for line in lines {
            JsonValue::parse(line).unwrap();
        }
    }

    #[test]
    fn chrome_trace_is_perfetto_shaped() {
        let t = sample_events();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, 10.0, &["L1", "L2"], &t).unwrap();
        let doc = JsonValue::parse(std::str::from_utf8(&buf).unwrap().trim()).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        // 3 track-name metadata events (L1, L2, memory) + 2 slices.
        assert_eq!(events.len(), 5);
        let slices: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 2);
        for s in &slices {
            assert!(s.get("ts").is_some() && s.get("dur").is_some());
            assert_eq!(s.get("pid").and_then(JsonValue::as_u64), Some(1));
        }
        // 31 cycles at 10 ns/cycle = 310 ns = 0.31 µs.
        assert_eq!(slices[0].get("dur"), Some(&JsonValue::F64(0.31)));
        assert_eq!(
            doc.get("otherData").and_then(|o| o.get("schema")),
            Some(&JsonValue::Str("mlc-chrome-trace/1".into()))
        );
    }

    #[test]
    fn unknown_level_maps_to_memory() {
        assert_eq!(serviced_name(0, &["L1"]), "L1");
        assert_eq!(serviced_name(1, &["L1"]), "memory");
        assert_eq!(serviced_name(9, &["L1"]), "memory");
    }
}
