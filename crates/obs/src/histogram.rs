//! Log2-bucketed histograms for latency and occupancy distributions.
//!
//! A [`Log2Histogram`] summarises a stream of `u64` samples into 65
//! fixed buckets: bucket 0 holds the value `0` exactly, and bucket `i`
//! (for `i ≥ 1`) holds the half-open power-of-two range
//! `[2^(i-1), 2^i)`. Bucket 64 therefore covers `[2^63, u64::MAX]` —
//! every `u64` lands in exactly one bucket, so recording never loses a
//! sample.
//!
//! The representation is a plain fixed array: recording is two
//! increments and an add (no allocation, no locking), cheap enough for
//! the simulator to record per-miss latencies without a feature gate.
//! Merging two histograms is bucket-wise addition, which is associative
//! and commutative — the property the sweep engine relies on when
//! combining per-chunk histograms.

use crate::json::JsonValue;

/// Number of buckets: one for zero plus one per bit position.
pub const LOG2_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use mlc_obs::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// h.record(0); // bucket 0: exactly zero
/// h.record(1); // bucket 1: [1, 2)
/// h.record(4); // bucket 3: [4, 8)
/// h.record(7); // bucket 3: [4, 8)
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket_count(3), 2);
/// assert_eq!(Log2Histogram::bucket_bounds(3), (4, 7));
/// assert!((h.mean().unwrap() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

/// The bucket index a value lands in: 0 for zero, `floor(log2(v)) + 1`
/// otherwise.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.max = self.max.max(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Samples in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LOG2_BUCKETS`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// The bucket index `value` lands in: 0 for zero, `floor(log2 v) + 1`
    /// otherwise. External recorders (e.g. sharded atomic bucket arrays)
    /// use this so [`Log2Histogram::from_raw`] reassembles exactly.
    pub fn bucket_index(value: u64) -> usize {
        bucket_of(value)
    }

    /// The inclusive `[lo, hi]` value range of bucket `i`: bucket 0 is
    /// `[0, 0]`, bucket `i ≥ 1` is `[2^(i-1), 2^i - 1]` (bucket 64 ends
    /// at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= LOG2_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < LOG2_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (i - 1);
            let hi = if i == 64 { u64::MAX } else { (1u64 << i) - 1 };
            (lo, hi)
        }
    }

    /// Iterates the non-empty buckets as `(lo, hi, count)` triples in
    /// ascending value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = Log2Histogram::bucket_bounds(i);
                (lo, hi, n)
            })
    }

    /// Adds every bucket of `other` into `self`. Merging is associative
    /// and commutative, so per-worker histograms can be combined in any
    /// order.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// An upper bound on the `q`-quantile (0 ≤ q ≤ 1): the inclusive
    /// high edge of the first bucket at which the cumulative count
    /// reaches `q · count`. `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(Log2Histogram::bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Upper bound on the median (see [`Log2Histogram::quantile_upper_bound`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_upper_bound(0.50)
    }

    /// Upper bound on the 90th percentile.
    pub fn p90(&self) -> Option<u64> {
        self.quantile_upper_bound(0.90)
    }

    /// Upper bound on the 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile_upper_bound(0.99)
    }

    /// Reassembles a histogram from raw parts — the inverse of reading
    /// `counts`/`count`/`sum`/`max` out of a sharded atomic recorder.
    /// The parts are trusted: `count` should equal the bucket total and
    /// `max` the largest recorded sample, or quantile clamping is off.
    pub fn from_raw(counts: [u64; LOG2_BUCKETS], count: u64, sum: u128, max: u64) -> Self {
        Log2Histogram {
            counts,
            count,
            sum,
            max,
        }
    }

    /// Rebuilds a histogram from the JSON shape [`Log2Histogram::to_json`]
    /// emits. The per-bucket counts and `max` round-trip exactly (they are
    /// all quantile bounds need); the `sum` is reconstructed from the mean
    /// and is exact only up to f64 rounding. `None` if the document is not
    /// histogram-shaped.
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        let count = value.get("count")?.as_u64()?;
        let max = value.get("max")?.as_u64()?;
        let mut counts = [0u64; LOG2_BUCKETS];
        let mut total = 0u64;
        for bucket in value.get("buckets")?.as_array()? {
            let [lo, _hi, n] = bucket.as_array()? else {
                return None;
            };
            let (lo, n) = (lo.as_u64()?, n.as_u64()?);
            counts[bucket_of(lo)] = counts[bucket_of(lo)].checked_add(n)?;
            total = total.checked_add(n)?;
        }
        if total != count {
            return None;
        }
        let sum = match value.get("mean") {
            Some(JsonValue::F64(mean)) if mean.is_finite() && *mean >= 0.0 => {
                (mean * count as f64).round() as u128
            }
            _ => 0,
        };
        Some(Log2Histogram::from_raw(counts, count, sum, max))
    }

    /// Renders the histogram as a JSON object:
    /// `{"count":N,"mean":F,"max":M,"buckets":[[lo,hi,n],...]}` with only
    /// non-empty buckets listed.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("count".into(), self.count.into()),
            (
                "mean".into(),
                self.mean().map(JsonValue::F64).unwrap_or(JsonValue::Null),
            ),
            ("max".into(), self.max.into()),
            (
                "buckets".into(),
                JsonValue::Array(
                    self.nonzero_buckets()
                        .map(|(lo, hi, n)| JsonValue::Array(vec![lo.into(), hi.into(), n.into()]))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_goes_to_bucket_zero() {
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), Some(0.0));
        assert_eq!(Log2Histogram::bucket_bounds(0), (0, 0));
    }

    #[test]
    fn powers_of_two_open_new_buckets() {
        // 2^k is the *low* edge of bucket k+1; 2^k - 1 is the high edge
        // of bucket k.
        let mut h = Log2Histogram::new();
        for k in 0..64u32 {
            h.record(1u64 << k);
        }
        for k in 0..64usize {
            assert_eq!(h.bucket_count(k + 1), 1, "bucket {}", k + 1);
            let (lo, hi) = Log2Histogram::bucket_bounds(k + 1);
            assert_eq!(lo, 1u64 << k);
            if k + 1 < 64 {
                assert_eq!(hi, (1u64 << (k + 1)) - 1);
            }
        }
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn bucket_edges_are_exact() {
        for k in 1..64usize {
            let (lo, hi) = Log2Histogram::bucket_bounds(k);
            assert_eq!(bucket_of(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_of(hi), k, "high edge of bucket {k}");
            if k < 64 {
                assert_eq!(bucket_of(hi + 1), k + 1, "past high edge of {k}");
            }
            assert_eq!(bucket_of(lo - 1), k - 1, "below low edge of {k}");
        }
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_count(64), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(Log2Histogram::bucket_bounds(64), (1u64 << 63, u64::MAX));
        assert_eq!(h.sum(), u64::MAX as u128);
    }

    #[test]
    fn record_n_is_n_records() {
        let mut a = Log2Histogram::new();
        a.record_n(5, 3);
        a.record_n(7, 0); // no-op
        let mut b = Log2Histogram::new();
        for _ in 0..3 {
            b.record(5);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[u64]| {
            let mut h = Log2Histogram::new();
            for &v in values {
                h.record(v);
            }
            h
        };
        let a = mk(&[0, 1, 2, 1000, u64::MAX]);
        let b = mk(&[3, 3, 3, 1 << 40]);
        let c = mk(&[17, 0]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Merged equals recording the union stream.
        let union = mk(&[0, 1, 2, 1000, u64::MAX, 3, 3, 3, 1 << 40]);
        assert_eq!(ab, union);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Log2Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Log2Histogram::new());
        assert_eq!(h, before);
    }

    #[test]
    fn quantile_upper_bound_brackets_the_distribution() {
        let mut h = Log2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(Log2Histogram::new().quantile_upper_bound(0.5), None);
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!((50..=63).contains(&p50), "p50 bound {p50}");
        let p100 = h.quantile_upper_bound(1.0).unwrap();
        assert_eq!(p100, 100, "p100 is clamped to the observed max");
    }

    #[test]
    fn quantile_helpers_on_empty_are_none() {
        let h = Log2Histogram::new();
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_helpers_on_single_bucket_clamp_to_max() {
        // All mass in one bucket: every quantile is bounded by the
        // observed max, not the bucket's high edge.
        let mut h = Log2Histogram::new();
        h.record_n(5, 1000); // bucket [4, 7]
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p90(), Some(5));
        assert_eq!(h.p99(), Some(5));

        let mut zero = Log2Histogram::new();
        zero.record_n(0, 3);
        assert_eq!(zero.p99(), Some(0));
    }

    #[test]
    fn quantile_helpers_handle_u64_max() {
        let mut h = Log2Histogram::new();
        h.record(1);
        h.record(u64::MAX);
        // p50 target is sample 1 → bucket [1,1]; p99 reaches the last
        // bucket, whose high edge is u64::MAX itself.
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.p99(), Some(u64::MAX));
    }

    #[test]
    fn quantile_helpers_order_on_merged_histograms() {
        let mut low = Log2Histogram::new();
        for _ in 0..90 {
            low.record(10);
        }
        let mut high = Log2Histogram::new();
        for _ in 0..10 {
            high.record(1 << 20);
        }
        let mut merged = low.clone();
        merged.merge(&high);
        let (p50, p90, p99) = (
            merged.p50().unwrap(),
            merged.p90().unwrap(),
            merged.p99().unwrap(),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert_eq!(p50, 15, "median sits in the low bucket [8,15]");
        assert_eq!(p90, 15, "90 of 100 samples are low");
        assert_eq!(p99, 1 << 20, "tail clamps to the observed max");
    }

    #[test]
    fn from_raw_round_trips_accessors() {
        let mut counts = [0u64; LOG2_BUCKETS];
        counts[0] = 2;
        counts[3] = 1;
        let h = Log2Histogram::from_raw(counts, 3, 6, 6);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 6);
        assert_eq!(h.max(), 6);
        assert_eq!(h.bucket_count(3), 1);
        assert_eq!(h.p99(), Some(6));
    }

    #[test]
    fn from_json_round_trips_buckets_and_quantiles() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        h.record(u64::MAX);
        let back = Log2Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.max(), h.max());
        for i in 0..LOG2_BUCKETS {
            assert_eq!(back.bucket_count(i), h.bucket_count(i), "bucket {i}");
        }
        assert_eq!(back.p50(), h.p50());
        assert_eq!(back.p99(), h.p99());

        let empty = Log2Histogram::from_json(&Log2Histogram::new().to_json()).unwrap();
        assert!(empty.is_empty());
        assert_eq!(Log2Histogram::from_json(&JsonValue::Null), None);
        assert_eq!(
            Log2Histogram::from_json(&JsonValue::object([("count".into(), 1u64.into())])),
            None,
            "missing buckets reject"
        );
    }

    #[test]
    fn json_lists_only_nonzero_buckets() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let json = h.to_json().to_string_compact();
        assert_eq!(
            json,
            r#"{"count":3,"mean":3.3333333333333335,"max":5,"buckets":[[0,0,1],[4,7,2]]}"#
        );
    }

    #[test]
    fn empty_histogram_renders_cleanly() {
        let h = Log2Histogram::new();
        assert!(h.is_empty());
        assert_eq!(
            h.to_json().to_string_compact(),
            r#"{"count":0,"mean":null,"max":0,"buckets":[]}"#
        );
    }
}
