//! Observability for the `mlc` workspace: run provenance, structured
//! metrics, and progress reporting.
//!
//! The paper's methodology is "sweep the design space, then trust the
//! numbers" — which only holds if every number can be audited against
//! the exact trace and configuration that produced it. This crate is
//! that audit trail:
//!
//! * [`RunManifest`] — a JSON sidecar capturing tool version, resolved
//!   configuration, trace digest, engine choice, and per-phase wall-clock
//!   timings. Two runs on the same inputs produce manifests that differ
//!   *only* in timing fields (every timing key ends in `_ms`, so CI can
//!   strip and diff them).
//! * [`Metrics`] — a near-zero-cost handle for counters, gauges, and
//!   monotonic phase timers. No global state: a disabled handle
//!   ([`Metrics::disabled`]) makes every operation a no-op branch, so
//!   simulation code can feed metrics unconditionally at phase
//!   boundaries without a feature gate. Exported as JSON-lines events
//!   via [`Metrics::write_jsonl`].
//! * [`Progress`] — throttled stderr progress lines (done / total / ETA)
//!   for long sweeps, safe to tick from parallel workers.
//! * [`Log2Histogram`] — 65-bucket log2 histograms for latency and
//!   occupancy distributions; recorded lock-free in simulator-local
//!   storage, merged into [`Metrics`] at phase boundaries, exported as
//!   `hist` events in the `mlc-metrics/1` JSONL stream.
//! * [`EventTracer`] / [`SimEvent`] — every-Nth-access sampled event
//!   tracing (off by default), exported as `mlc-events/1` JSONL via
//!   [`write_events_jsonl`] and as Perfetto-loadable Chrome trace-event
//!   JSON via [`write_chrome_trace`].
//! * [`digest_records`] / [`digest_records_hex`] — an FNV-1a 64 content
//!   digest over trace records, the provenance anchor of a manifest.
//! * [`span`] — request-lifecycle trace context for the serving layer:
//!   process-unique trace ids ([`mint_trace_id`]), the server span
//!   taxonomy ([`Stage`]), and Perfetto export of recorded spans
//!   ([`write_span_chrome_trace`]).
//! * [`journal`] — crash-consistent `mlc-journal/1` sweep checkpoints:
//!   an fsync'd JSON-lines file of completed grid rows that lets an
//!   interrupted sweep resume bit-identically.
//! * [`json`] — the minimal JSON document model the above are built on
//!   (the workspace deliberately has no external dependencies), now
//!   with a strict parser for reading journals back.
//!
//! # Examples
//!
//! ```
//! use mlc_obs::{Metrics, RunManifest};
//!
//! let metrics = Metrics::enabled();
//! let timer = metrics.time_phase("read_trace");
//! // ... read the trace ...
//! timer.stop();
//! metrics.add("trace.records", 60_000);
//!
//! let mut manifest = RunManifest::new("mlc-run", "0.1.0");
//! manifest.trace("t.din", 60_000, 15_000, "fnv1a64:0123456789abcdef");
//! manifest.set_timings(&metrics.snapshot());
//! assert!(manifest.to_json().contains("\"read_trace_ms\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod digest;
pub mod events;
mod histogram;
pub mod journal;
pub mod json;
mod manifest;
mod metrics;
mod progress;
pub mod span;

pub use digest::{digest_records, digest_records_hex, Fnv64};
pub use events::{
    write_chrome_trace, write_events_jsonl, EventKind, EventTracer, SimEvent, DEFAULT_EVENT_CAP,
};
pub use histogram::{Log2Histogram, LOG2_BUCKETS};
pub use journal::{
    read_journal, sync_dir_of, Journal, JournalError, JournalHeader, JournalRow, JournalWriter,
    JOURNAL_SCHEMA,
};
pub use manifest::RunManifest;
pub use metrics::{Metrics, MetricsSnapshot, PhaseStat, PhaseTimer};
pub use progress::Progress;
pub use span::{
    mint_trace_id, valid_trace_id, write_span_chrome_trace, SpanRecord, Stage, SPAN_TRACE_SCHEMA,
    TRACE_ID_MAX_LEN,
};
